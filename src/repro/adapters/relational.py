"""Relational substrate and adapter.

Stands in for the Sybase/Oracle sources the paper's trials connected to via
Kleisli (Section 5): a minimal in-memory relational database — named tables
of flat rows with primary and foreign keys — plus a bidirectional adapter
to the WOL data model:

* :func:`import_database` maps each table to a class; rows become keyed
  objects (Skolem on the primary key) and foreign-key columns become object
  references;
* :func:`export_instance` maps a (flat enough) instance back to tables,
  deriving foreign-key columns from references.

This is what "complex relational databases" look like on the WOL side, and
it is the target substrate of the genome-warehouse experiment (E7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..model.instance import Instance, InstanceBuilder
from ..model.keys import KeySpec, KeyedSchema, attribute_key, attributes_key
from ..model.schema import Schema
from ..model.types import (BOOL, FLOAT, INT, STR, BaseType, ClassType,
                           RecordType, Type)
from ..model.values import Oid, Record, Value, format_value

RowValue = Union[int, str, bool, float]
Row = Dict[str, RowValue]


class RelationalError(Exception):
    """Raised for schema violations in the relational substrate."""


_COLUMN_TYPES = {"int": INT, "str": STR, "bool": BOOL, "float": FLOAT}


@dataclass(frozen=True)
class Column:
    """A column: name, base type name, optional foreign key target."""

    name: str
    type_name: str
    references: Optional[str] = None  # referenced table

    def __post_init__(self) -> None:
        if self.type_name not in _COLUMN_TYPES:
            raise RelationalError(
                f"column {self.name}: unknown type {self.type_name!r}")

    @property
    def base_type(self) -> BaseType:
        return _COLUMN_TYPES[self.type_name]


@dataclass(frozen=True)
class TableSchema:
    """A table: columns and a primary key (subset of the columns)."""

    name: str
    columns: Tuple[Column, ...]
    primary_key: Tuple[str, ...]

    def __post_init__(self) -> None:
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise RelationalError(f"table {self.name}: duplicate columns")
        for key_col in self.primary_key:
            if key_col not in names:
                raise RelationalError(
                    f"table {self.name}: primary key column "
                    f"{key_col!r} does not exist")
        if not self.primary_key:
            raise RelationalError(
                f"table {self.name}: a primary key is required")
        for column in self.columns:
            if column.references is not None and column.name in self.primary_key:
                # Allowed, but the referenced table's key must be single
                # column — checked at database level.
                pass

    def column(self, name: str) -> Column:
        for column in self.columns:
            if column.name == name:
                return column
        raise RelationalError(
            f"table {self.name}: no column {name!r}")


class Table:
    """A mutable table of rows."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self.rows: List[Row] = []
        self._keys: Dict[Tuple[RowValue, ...], int] = {}

    def insert(self, **values: RowValue) -> Row:
        expected = {column.name for column in self.schema.columns}
        given = set(values)
        if given != expected:
            raise RelationalError(
                f"table {self.schema.name}: row columns {sorted(given)} "
                f"do not match schema columns {sorted(expected)}")
        for column in self.schema.columns:
            value = values[column.name]
            expected_type = {"int": int, "str": str, "bool": bool,
                             "float": float}[column.type_name]
            if expected_type is int and isinstance(value, bool):
                raise RelationalError(
                    f"table {self.schema.name}: column {column.name} "
                    f"expects int, got bool")
            if not isinstance(value, expected_type):
                raise RelationalError(
                    f"table {self.schema.name}: column {column.name} "
                    f"expects {column.type_name}, got {value!r}")
        key = tuple(values[c] for c in self.schema.primary_key)
        if key in self._keys:
            raise RelationalError(
                f"table {self.schema.name}: duplicate primary key {key}")
        self._keys[key] = len(self.rows)
        row = dict(values)
        self.rows.append(row)
        return row

    def lookup(self, *key: RowValue) -> Row:
        index = self._keys.get(tuple(key))
        if index is None:
            raise RelationalError(
                f"table {self.schema.name}: no row with key {key}")
        return self.rows[index]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


class RelationalDatabase:
    """A named collection of tables with foreign-key checking."""

    def __init__(self, name: str, tables: Sequence[TableSchema]) -> None:
        self.name = name
        self.tables: Dict[str, Table] = {}
        for table_schema in tables:
            if table_schema.name in self.tables:
                raise RelationalError(
                    f"duplicate table {table_schema.name}")
            self.tables[table_schema.name] = Table(table_schema)
        # Validate foreign keys point at existing single-column keys.
        for table_schema in tables:
            for column in table_schema.columns:
                if column.references is None:
                    continue
                target = self.tables.get(column.references)
                if target is None:
                    raise RelationalError(
                        f"table {table_schema.name}: column "
                        f"{column.name} references unknown table "
                        f"{column.references}")
                if len(target.schema.primary_key) != 1:
                    raise RelationalError(
                        f"table {table_schema.name}: column "
                        f"{column.name} references composite-key table "
                        f"{column.references}")

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise RelationalError(f"no table {name!r}") from None

    def insert(self, table_name: str, **values: RowValue) -> Row:
        return self.table(table_name).insert(**values)

    def check_foreign_keys(self) -> List[str]:
        """All dangling foreign-key references (empty = consistent)."""
        problems: List[str] = []
        for table in self.tables.values():
            for column in table.schema.columns:
                if column.references is None:
                    continue
                target = self.tables[column.references]
                for row in table:
                    try:
                        target.lookup(row[column.name])
                    except RelationalError:
                        problems.append(
                            f"{table.schema.name}.{column.name} = "
                            f"{row[column.name]!r} dangles")
        return problems


# ----------------------------------------------------------------------
# Import: relational -> WOL
# ----------------------------------------------------------------------

def schema_of_database(database: RelationalDatabase) -> KeyedSchema:
    """The WOL keyed schema induced by a relational database.

    Each table becomes a class; foreign-key columns become class-typed
    attributes; the primary key becomes the surrogate key (foreign-key
    columns in the primary key contribute ``<col>.<referenced key>``
    paths, keeping key types class-free).
    """
    classes: List[Tuple[str, Type]] = []
    for table in database.tables.values():
        fields: List[Tuple[str, Type]] = []
        for column in table.schema.columns:
            if column.references is not None:
                fields.append((column.name, ClassType(column.references)))
            else:
                fields.append((column.name, column.base_type))
        classes.append((table.schema.name, RecordType(tuple(fields))))
    schema = Schema(database.name, tuple(classes))

    functions = {}
    for table in database.tables.values():
        paths = []
        for key_col in table.schema.primary_key:
            column = table.schema.column(key_col)
            if column.references is not None:
                referenced = database.table(column.references)
                (ref_key,) = referenced.schema.primary_key
                paths.append(f"{key_col}.{ref_key}")
            else:
                paths.append(key_col)
        if len(paths) == 1:
            functions[table.schema.name] = attribute_key(
                schema, table.schema.name, paths[0])
        else:
            functions[table.schema.name] = attributes_key(
                schema, table.schema.name, tuple(paths))
    return KeyedSchema(schema, KeySpec(functions))


def import_database(database: RelationalDatabase) -> Instance:
    """Import all rows as a WOL instance (keyed oids on primary keys)."""
    problems = database.check_foreign_keys()
    if problems:
        raise RelationalError(
            "cannot import database with dangling foreign keys: "
            + "; ".join(problems[:5]))
    keyed = schema_of_database(database)
    builder = InstanceBuilder(keyed.schema)

    def oid_for(table_name: str, key_value: RowValue) -> Oid:
        return Oid.keyed(table_name, key_value)

    for table in database.tables.values():
        for row in table:
            fields: List[Tuple[str, Value]] = []
            for column in table.schema.columns:
                value = row[column.name]
                if column.references is not None:
                    fields.append((column.name,
                                   oid_for(column.references, value)))
                else:
                    fields.append((column.name, value))
            key = tuple(row[c] for c in table.schema.primary_key)
            oid = Oid.keyed(table.schema.name,
                            key[0] if len(key) == 1 else
                            Record(tuple(zip(table.schema.primary_key,
                                             key, strict=True))))
            builder.put(oid, Record(tuple(fields)))
    return builder.freeze()


# ----------------------------------------------------------------------
# Export: WOL -> relational
# ----------------------------------------------------------------------

def export_instance(instance: Instance,
                    database_schema: Sequence[TableSchema]
                    ) -> RelationalDatabase:
    """Export a flat instance into tables.

    Classes must match table names; attributes must be base-typed or
    references to keyed objects of the referenced table, whose primary key
    is recovered from the oid key (objects must carry keyed oids, as
    produced by :func:`import_database` or by transformations).
    """
    database = RelationalDatabase(instance.schema.name,
                                  list(database_schema))
    for table_schema in database_schema:
        if not instance.schema.has_class(table_schema.name):
            raise RelationalError(
                f"instance has no class for table {table_schema.name}")
        for oid in sorted(instance.objects_of(table_schema.name), key=str):
            value = instance.value_of(oid)
            if not isinstance(value, Record):
                raise RelationalError(
                    f"object {oid} is not a record; cannot export")
            row: Dict[str, RowValue] = {}
            for column in table_schema.columns:
                if not value.has(column.name):
                    raise RelationalError(
                        f"object {oid} lacks column {column.name}")
                field_value = value.get(column.name)
                if column.references is not None:
                    if not (isinstance(field_value, Oid)
                            and field_value.is_keyed):
                        raise RelationalError(
                            f"object {oid}: column {column.name} is not "
                            f"a keyed reference")
                    key = field_value.key
                    if isinstance(key, Record):
                        raise RelationalError(
                            f"object {oid}: composite-key references are "
                            f"not exportable to column {column.name}")
                    row[column.name] = key  # type: ignore[assignment]
                else:
                    if not isinstance(field_value, (int, str, bool, float)):
                        raise RelationalError(
                            f"object {oid}: column {column.name} has "
                            f"non-scalar value "
                            f"{format_value(field_value)}")
                    row[column.name] = field_value
            database.insert(table_schema.name, **row)
    return database
