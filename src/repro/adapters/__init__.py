"""Heterogeneous database substrates: relational and ACeDB-style."""

from .relational import (Column, RelationalDatabase, RelationalError, Row,
                         Table, TableSchema, export_instance,
                         import_database, schema_of_database)
from .acedb import (AceClass, AceDatabase, AceError, AceObject, TagSpec,
                    import_acedb, schema_of_acedb)

__all__ = [
    "Column", "RelationalDatabase", "RelationalError", "Row", "Table",
    "TableSchema", "export_instance", "import_database",
    "schema_of_database",
    "AceClass", "AceDatabase", "AceError", "AceObject", "TagSpec",
    "import_acedb", "schema_of_acedb",
]
