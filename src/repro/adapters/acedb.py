"""ACeDB-style tree-database substrate and adapter (paper Section 6).

ACeDB "represents data in tree-like structures with object identities, and
is well suited for representing sparsely populated data".  The paper's
genome trials imported data from ACe22DB (an ACeDB database at the Sanger
Centre) into the relational Chr22DB — incompatible data models bridged
through the common WOL model.

This substrate models the essentials:

* an :class:`AceClass` declares *tags*; each tag holds zero or more values
  (sparseness: most objects fill few tags);
* tag values are scalars or references to other ACeDB objects (class +
  name identity);
* :func:`import_acedb` maps each ACeDB class to a WOL class whose
  attributes are *set-valued* (absent tag = empty set), preserving
  sparseness, with objects keyed by their ACeDB name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..model.instance import Instance, InstanceBuilder
from ..model.keys import KeySpec, KeyedSchema, attribute_key
from ..model.schema import Schema
from ..model.types import (
    BOOL, FLOAT, INT, STR, ClassType, RecordType, SetType, Type)
from ..model.values import Oid, Record, Value, WolSet

ScalarTag = Union[int, str, bool, float]


class AceError(Exception):
    """Raised for malformed ACeDB declarations or data."""


_TAG_TYPES = {"int": INT, "str": STR, "bool": BOOL, "float": FLOAT}


@dataclass(frozen=True)
class TagSpec:
    """One tag: a name and either a scalar type or a referenced class."""

    name: str
    type_name: str  # "int" | "str" | "bool" | "float" | "ref"
    references: Optional[str] = None

    def __post_init__(self) -> None:
        if self.type_name == "ref":
            if not self.references:
                raise AceError(
                    f"tag {self.name}: 'ref' tags need a target class")
        elif self.type_name not in _TAG_TYPES:
            raise AceError(
                f"tag {self.name}: unknown type {self.type_name!r}")
        elif self.references is not None:
            raise AceError(
                f"tag {self.name}: scalar tags cannot reference classes")


@dataclass(frozen=True)
class AceClass:
    """An ACeDB class model: a name and its tag specifications."""

    name: str
    tags: Tuple[TagSpec, ...]

    def __post_init__(self) -> None:
        names = [tag.name for tag in self.tags]
        if len(set(names)) != len(names):
            raise AceError(f"class {self.name}: duplicate tags")
        if "name" in names:
            raise AceError(
                f"class {self.name}: 'name' is reserved for the object "
                f"identity")

    def tag(self, name: str) -> TagSpec:
        for tag in self.tags:
            if tag.name == name:
                return tag
        raise AceError(f"class {self.name}: no tag {name!r}")


@dataclass
class AceObject:
    """An ACeDB object: identified by (class, name), carrying tag values."""

    class_name: str
    name: str
    tags: Dict[str, List[ScalarTag]] = field(default_factory=dict)
    refs: Dict[str, List[Tuple[str, str]]] = field(default_factory=dict)

    def add(self, tag: str, value: ScalarTag) -> "AceObject":
        self.tags.setdefault(tag, []).append(value)
        return self

    def add_ref(self, tag: str, class_name: str, name: str) -> "AceObject":
        self.refs.setdefault(tag, []).append((class_name, name))
        return self


class AceDatabase:
    """A store of ACeDB objects grouped by class."""

    def __init__(self, name: str, classes: Sequence[AceClass]) -> None:
        self.name = name
        self.classes: Dict[str, AceClass] = {}
        for ace_class in classes:
            if ace_class.name in self.classes:
                raise AceError(f"duplicate class {ace_class.name}")
            self.classes[ace_class.name] = ace_class
        self.objects: Dict[Tuple[str, str], AceObject] = {}

    def ace_class(self, name: str) -> AceClass:
        try:
            return self.classes[name]
        except KeyError:
            raise AceError(f"no ACeDB class {name!r}") from None

    def new_object(self, class_name: str, name: str) -> AceObject:
        self.ace_class(class_name)
        key = (class_name, name)
        if key in self.objects:
            raise AceError(f"duplicate object {class_name}:{name}")
        obj = AceObject(class_name, name)
        self.objects[key] = obj
        return obj

    def objects_of(self, class_name: str) -> List[AceObject]:
        return [obj for (cname, _), obj in sorted(self.objects.items())
                if cname == class_name]

    def validate(self) -> List[str]:
        """Tag-type and reference checks; returns problems (empty = ok)."""
        problems: List[str] = []
        for obj in self.objects.values():
            ace_class = self.ace_class(obj.class_name)
            for tag_name, values in obj.tags.items():
                try:
                    spec = ace_class.tag(tag_name)
                except AceError as exc:
                    problems.append(str(exc))
                    continue
                if spec.type_name == "ref":
                    problems.append(
                        f"{obj.class_name}:{obj.name}: tag {tag_name} is "
                        f"a reference tag but holds scalars")
                    continue
                expected = {"int": int, "str": str, "bool": bool,
                            "float": float}[spec.type_name]
                for value in values:
                    if isinstance(value, bool) and expected is int:
                        problems.append(
                            f"{obj.class_name}:{obj.name}: tag "
                            f"{tag_name} bool where int expected")
                    elif not isinstance(value, expected):
                        problems.append(
                            f"{obj.class_name}:{obj.name}: tag "
                            f"{tag_name} has {value!r}, expected "
                            f"{spec.type_name}")
            for tag_name, targets in obj.refs.items():
                try:
                    spec = ace_class.tag(tag_name)
                except AceError as exc:
                    problems.append(str(exc))
                    continue
                if spec.type_name != "ref":
                    problems.append(
                        f"{obj.class_name}:{obj.name}: scalar tag "
                        f"{tag_name} holds references")
                    continue
                for target_class, target_name in targets:
                    if target_class != spec.references:
                        problems.append(
                            f"{obj.class_name}:{obj.name}: tag "
                            f"{tag_name} references {target_class}, "
                            f"expected {spec.references}")
                    elif (target_class, target_name) not in self.objects:
                        problems.append(
                            f"{obj.class_name}:{obj.name}: dangling "
                            f"reference {target_class}:{target_name}")
        return problems


# ----------------------------------------------------------------------
# Import: ACeDB -> WOL
# ----------------------------------------------------------------------

def schema_of_acedb(database: AceDatabase) -> KeyedSchema:
    """The WOL keyed schema induced by an ACeDB database.

    Every tag becomes a *set-valued* attribute (absent = empty set), which
    is how the WOL model captures ACeDB's sparseness; ``name`` carries the
    object identity and keys the class.
    """
    classes: List[Tuple[str, Type]] = []
    for ace_class in database.classes.values():
        fields: List[Tuple[str, Type]] = [("name", STR)]
        for tag in ace_class.tags:
            if tag.type_name == "ref":
                element: Type = ClassType(tag.references)  # type: ignore[arg-type]
            else:
                element = _TAG_TYPES[tag.type_name]
            fields.append((tag.name, SetType(element)))
        classes.append((ace_class.name, RecordType(tuple(fields))))
    schema = Schema(database.name, tuple(classes))
    functions = {cname: attribute_key(schema, cname, "name")
                 for cname in database.classes}
    return KeyedSchema(schema, KeySpec(functions))


def import_acedb(database: AceDatabase) -> Instance:
    """Import an ACeDB database as a WOL instance."""
    problems = database.validate()
    if problems:
        raise AceError("cannot import invalid ACeDB data: "
                       + "; ".join(problems[:5]))
    keyed = schema_of_acedb(database)
    builder = InstanceBuilder(keyed.schema)
    for (class_name, name), obj in sorted(database.objects.items()):
        ace_class = database.ace_class(class_name)
        fields: List[Tuple[str, Value]] = [("name", name)]
        for tag in ace_class.tags:
            if tag.type_name == "ref":
                targets = obj.refs.get(tag.name, [])
                fields.append((tag.name, WolSet(frozenset(
                    Oid.keyed(tc, tn) for tc, tn in targets))))
            else:
                values = obj.tags.get(tag.name, [])
                fields.append((tag.name, WolSet(frozenset(values))))
        builder.put(Oid.keyed(class_name, name), Record(tuple(fields)))
    return builder.freeze()
