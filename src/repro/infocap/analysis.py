"""Information-capacity analysis of transformations (paper Section 4.3).

A transformation is *information preserving* when it is injective: distinct
source instances map to distinct target instances (Hull's information
dominance, adapted to object identities by comparing instances up to oid
renaming).  The paper's key observation is that transformations often fail
to preserve information **not** because they are wrong, but because
constraints that hold on the source are not expressed in its schema: the
(T6)-(T8) schema evolution loses information on arbitrary sources but is
injective on sources satisfying (C9)-(C11).

This module provides an *empirical* checker over instance families (exact
injectivity is undecidable): pairwise transformation plus isomorphism
comparison, reporting witnesses for non-injectivity; and helpers that
filter a family by constraint satisfaction to reproduce the paper's
argument quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from ..lang.ast import Clause
from ..model.instance import Instance
from ..model.isomorphism import isomorphic
from ..semantics.satisfaction import satisfies_program

#: A transformation under analysis: source instance -> target instance.
Transform = Callable[[Instance], Instance]


@dataclass
class NonInjectiveWitness:
    """Two non-isomorphic sources with isomorphic images."""

    first: Instance
    second: Instance
    image: Instance

    def __str__(self) -> str:
        return ("non-injective: two distinct sources share the image "
                f"with classes {self.image.class_sizes()}")


@dataclass
class InjectivityReport:
    """Result of an empirical injectivity check."""

    instances_checked: int
    failures: List[NonInjectiveWitness] = field(default_factory=list)
    errors: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def injective(self) -> bool:
        return not self.failures

    @property
    def total(self) -> bool:
        """Did the transformation succeed on every instance?"""
        return not self.errors


def check_injectivity(transform: Transform,
                      instances: Sequence[Instance],
                      stop_at_first: bool = False) -> InjectivityReport:
    """Empirically test injectivity of ``transform`` on ``instances``.

    Pairwise: sources that are themselves isomorphic are skipped (they
    *should* map to isomorphic images); non-isomorphic sources with
    isomorphic images are counterexamples.
    """
    report = InjectivityReport(instances_checked=len(instances))
    images: List[Optional[Instance]] = []
    for index, instance in enumerate(instances):
        try:
            images.append(transform(instance))
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            report.errors.append((index, str(exc)))
            images.append(None)

    for i in range(len(instances)):
        if images[i] is None:
            continue
        for j in range(i + 1, len(instances)):
            if images[j] is None:
                continue
            if not isomorphic(images[i], images[j]):
                continue
            if isomorphic(instances[i], instances[j]):
                continue
            report.failures.append(NonInjectiveWitness(
                instances[i], instances[j], images[i]))
            if stop_at_first:
                return report
    return report


def filter_by_constraints(instances: Iterable[Instance],
                          constraints: Sequence[Clause]
                          ) -> List[Instance]:
    """The sub-family satisfying all ``constraints``.

    Used to reproduce Section 4.3: a transformation non-injective on the
    full family becomes injective on the constrained sub-family.

    The naive path is deliberate: the family members are tiny and the
    check short-circuits on the first violation, so per-instance audit
    planning (and eager index prebuilds) would cost more than it saves.
    """
    return [instance for instance in instances
            if satisfies_program(instance, constraints,
                                 use_planner=False)]


@dataclass
class PreservationReport:
    """Side-by-side injectivity with and without source constraints."""

    unconstrained: InjectivityReport
    constrained: InjectivityReport
    constrained_count: int
    total_count: int

    def summary(self) -> str:
        lines = [
            f"instances: {self.total_count} total, "
            f"{self.constrained_count} satisfy the constraints",
            f"unconstrained family: "
            f"{'injective' if self.unconstrained.injective else 'NOT injective'}"
            f" ({len(self.unconstrained.failures)} witnesses)",
            f"constrained family:   "
            f"{'injective' if self.constrained.injective else 'NOT injective'}"
            f" ({len(self.constrained.failures)} witnesses)",
        ]
        return "\n".join(lines)


def check_preservation(transform: Transform,
                       instances: Sequence[Instance],
                       constraints: Sequence[Clause]
                       ) -> PreservationReport:
    """The paper's Section 4.3 experiment in one call."""
    constrained = filter_by_constraints(instances, constraints)
    return PreservationReport(
        unconstrained=check_injectivity(transform, list(instances)),
        constrained=check_injectivity(transform, constrained),
        constrained_count=len(constrained),
        total_count=len(instances))
