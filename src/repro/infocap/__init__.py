"""Information-capacity analysis (paper Section 4.3)."""

from .analysis import (InjectivityReport, NonInjectiveWitness,
                       PreservationReport, check_injectivity,
                       check_preservation, filter_by_constraints)

__all__ = [
    "InjectivityReport", "NonInjectiveWitness", "PreservationReport",
    "check_injectivity", "check_preservation", "filter_by_constraints",
]
