"""repro-wol: a reproduction of "WOL: A Language for Database
Transformations and Constraints" (Davidson & Kosky, ICDE 1997).

Public entry points:

* :class:`repro.morphase.Morphase` — compile and run WOL programs.
* :mod:`repro.model` — schemas, keys, instances.
* :mod:`repro.lang` — the WOL language (parser, checks).
* :mod:`repro.workloads` — the paper's examples and generators.
"""

from .morphase.system import Morphase, MorphaseError, MorphaseResult

__version__ = "1.0.0"

__all__ = ["Morphase", "MorphaseError", "MorphaseResult", "__version__"]
