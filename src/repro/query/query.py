"""Querying instances with WOL clause bodies.

The paper contrasts transformation languages with query languages
(Section 1) — but a WOL body *is* a conjunctive query, and being able to
run one interactively is invaluable when developing transformations.  This
module wraps the matcher in a small query API::

    q = Query.parse("N, C | X in CityE, N = X.name, C = X.country.name",
                    classes=schema.class_names())
    for row in q.run(instance):
        print(row["N"], row["C"])

The text before ``|`` lists the *projection* — variables (or ``*`` for
all) — and the text after it is a WOL atom list, exactly the syntax of a
clause body.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..lang.ast import Atom, Clause
from ..lang.parser import ParseError, parse_clause
from ..lang.range_restriction import check_range_restriction
from ..model.instance import Instance
from ..model.values import Value, format_value
from ..semantics.match import Matcher


class QueryError(Exception):
    """Raised for malformed queries."""


Row = Dict[str, Value]


@dataclass(frozen=True)
class Query:
    """A conjunctive query: projection variables over a WOL body."""

    projection: Tuple[str, ...]   # empty = all variables
    body: Tuple[Atom, ...]

    @staticmethod
    def parse(text: str,
              classes: Optional[Iterable[str]] = None) -> "Query":
        """Parse ``"X, Y | atoms"`` (or just ``"atoms"`` for all vars)."""
        if "|" in text:
            head_text, _, body_text = text.partition("|")
            names = tuple(part.strip() for part in head_text.split(",")
                          if part.strip())
            if names == ("*",):
                names = ()
        else:
            names = ()
            body_text = text
        body_text = body_text.strip().rstrip(";")
        if not body_text:
            raise QueryError("empty query body")
        try:
            clause = parse_clause(f"_q = _q <= {body_text};",
                                  classes=classes)
        except ParseError as exc:
            raise QueryError(f"cannot parse query body: {exc}") from exc
        query = Query(names, clause.body)
        query.validate()
        return query

    def variables(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for atom in self.body:
            for name in sorted(atom.variables()):
                if name not in seen:
                    seen.append(name)
        return tuple(seen)

    def validate(self) -> None:
        """Check projection names exist and the body is safe."""
        known = set(self.variables())
        for name in self.projection:
            if name not in known:
                raise QueryError(
                    f"projection variable {name!r} does not occur in "
                    f"the body (known: {sorted(known)})")
        probe = Clause(self.body or (), self.body)
        try:
            check_range_restriction(probe)
        except Exception as exc:
            raise QueryError(f"query is not range-restricted: {exc}") \
                from exc

    # ------------------------------------------------------------------
    def run(self, instance: Instance) -> Iterator[Row]:
        """All result rows (projected bindings), lazily."""
        columns = self.projection or self.variables()
        matcher = Matcher(instance)
        for binding in matcher.solutions(self.body):
            yield {name: binding[name] for name in columns
                   if name in binding}

    def run_planned(self, instance: Instance, pool=None,
                    columnar: bool = True) -> Iterator[Row]:
        """Result rows via the static planner (the service hot path).

        Plans the body once (:func:`repro.engine.planner.plan_clause`),
        prebuilds the plan's indexes on ``pool`` (a warm session passes
        its shared :class:`~repro.semantics.match.IndexPool`; by
        default a private one is built) and executes vectorized
        (:meth:`~repro.semantics.match.Matcher.run_plan_columnar`) or
        scalar.  Bodies the planner cannot order statically fall back
        to the dynamic matcher — identical rows, no speedup.
        """
        from ..engine.planner import PlanError, plan_clause
        from ..semantics.match import IndexPool
        if pool is None:
            pool = IndexPool(instance)
        matcher = Matcher(instance, index_pool=pool)
        columns = self.projection or self.variables()
        probe = Clause(self.body, self.body)
        try:
            plan = plan_clause(probe, instance.class_sizes())
        except PlanError:
            bindings: Iterator[Dict[str, Value]] = \
                matcher.solutions(self.body)
        else:
            pool.prebuild(plan.index_paths)
            bindings = (matcher.run_plan_columnar(plan.steps)
                        if columnar else matcher.run_plan(plan.steps))
        for binding in bindings:
            yield {name: binding[name] for name in columns
                   if name in binding}

    def rows(self, instance: Instance) -> List[Row]:
        """All result rows as a list."""
        return list(self.run(instance))

    def distinct(self, instance: Instance) -> List[Row]:
        """Rows with duplicates (after projection) removed, stable order."""
        seen = set()
        out: List[Row] = []
        for row in self.run(instance):
            key = tuple(sorted(row.items(), key=lambda item: item[0]))
            if key not in seen:
                seen.add(key)
                out.append(row)
        return out

    def count(self, instance: Instance) -> int:
        return sum(1 for _ in self.run(instance))

    def exists(self, instance: Instance) -> bool:
        for _ in self.run(instance):
            return True
        return False

    def table(self, instance: Instance, limit: Optional[int] = None) -> str:
        """A printable table of the results."""
        columns = list(self.projection or self.variables())
        rows: List[List[str]] = []
        for index, row in enumerate(self.run(instance)):
            if limit is not None and index >= limit:
                rows.append(["..."] * len(columns))
                break
            rows.append([format_value(row[c]) if c in row else ""
                         for c in columns])
        widths = [max(len(c), *(len(r[i]) for r in rows))
                  if rows else len(c)
                  for i, c in enumerate(columns)]
        lines = ["  ".join(c.ljust(widths[i])
                           for i, c in enumerate(columns))]
        lines.append("-" * len(lines[0]))
        for row in rows:
            lines.append("  ".join(cell.ljust(widths[i])
                                   for i, cell in enumerate(row)))
        return "\n".join(lines)


def query(instance: Instance, text: str) -> List[Row]:
    """One-shot convenience: parse against the instance's schema and run."""
    parsed = Query.parse(text, classes=instance.schema.class_names())
    return parsed.rows(instance)
