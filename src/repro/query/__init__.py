"""Conjunctive queries over instances using WOL bodies."""

from .query import Query, QueryError, Row, query

__all__ = ["Query", "QueryError", "Row", "query"]
