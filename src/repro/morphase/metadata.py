"""Automatic constraint generation from meta-data (paper Section 5).

"A large number of constraints, such as keys and other dependencies, can be
automatically generated from the meta-data associated with the source and
target databases, in order to complete a transformation program.  Such
constraints are time consuming and tedious to program by hand."

Given a :class:`~repro.model.keys.KeyedSchema` this module generates:

* **target key clauses** ``X = Mk_C(...) <= X in C, ...`` — the Skolem
  identity clauses the normaliser uses to identify created objects;
* **source key clauses** ``X = Y <= X in C, Y in C, X.p = Y.p, ...`` —
  (C8)-style functional dependencies the optimiser uses to collapse
  self-joins (Example 4.1).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..lang.ast import (Clause, EqAtom, KIND_CONSTRAINT, MemberAtom, Proj,
                        SkolemTerm, Var)
from ..model.keys import KeyFunction, KeyedSchema


def _path_definitions(object_var: str, path: Tuple[str, ...],
                      result_var: str, counter: List[int]
                      ) -> List[EqAtom]:
    """SNF definition atoms tracing ``object_var.<path>`` into ``result_var``."""
    atoms: List[EqAtom] = []
    subject = Var(object_var)
    for attr in path[:-1]:
        counter[0] += 1
        step = Var(f"_k{counter[0]}")
        atoms.append(EqAtom(step, Proj(subject, attr)))
        subject = step
    atoms.append(EqAtom(Var(result_var), Proj(subject, path[-1])))
    return atoms


def key_clause_for(fn: KeyFunction, name: Optional[str] = None) -> Clause:
    """The target key clause induced by one key function.

    For ``K^CityE(c) = (name = c.name, country_name = c.country.name)`` the
    generated clause is::

        X = Mk_CityE(country_name = K2, name = K1)
          <= X in CityE, K1 = X.name, _k1 = X.country, K2 = _k1.name;
    """
    counter = [0]
    body: List = [MemberAtom(Var("X"), fn.class_name)]
    args: List[Tuple[Optional[str], Var]] = []
    for index, (label, path) in enumerate(fn.components):
        result = f"K{index + 1}"
        body.extend(_path_definitions("X", path, result, counter))
        args.append((label, Var(result)))
    skolem = SkolemTerm(fn.class_name, tuple(args))
    return Clause((EqAtom(Var("X"), skolem),), tuple(body),
                  name=name or f"key_{fn.class_name}",
                  kind=KIND_CONSTRAINT)


def source_key_clause_for(fn: KeyFunction,
                          name: Optional[str] = None) -> Clause:
    """The (C8)-style merging clause induced by one key function:
    two members of the class with equal key paths are the same object."""
    counter = [0]
    body: List = [MemberAtom(Var("X"), fn.class_name),
                  MemberAtom(Var("Y"), fn.class_name)]
    for index, (_, path) in enumerate(fn.components):
        shared = f"K{index + 1}"
        body.extend(_path_definitions("X", path, shared, counter))
        body.extend(_path_definitions("Y", path, shared, counter))
    return Clause((EqAtom(Var("X"), Var("Y")),), tuple(body),
                  name=name or f"srckey_{fn.class_name}",
                  kind=KIND_CONSTRAINT)


def generate_target_key_clauses(keyed: KeyedSchema,
                                skip: Iterable[str] = ()) -> List[Clause]:
    """Key clauses for every keyed class not in ``skip``.

    ``skip`` lists classes whose key clause the programmer already wrote
    (hand-written clauses take precedence — they may key on structure the
    schema-level specification cannot express, such as variant values).
    """
    skipped = set(skip)
    return [key_clause_for(keyed.keys.key_for(cname))
            for cname in keyed.keys.classes() if cname not in skipped]


def generate_source_key_clauses(keyed: KeyedSchema,
                                skip: Iterable[str] = ()) -> List[Clause]:
    """(C8)-style clauses for every keyed class not in ``skip``."""
    skipped = set(skip)
    return [source_key_clause_for(keyed.keys.key_for(cname))
            for cname in keyed.keys.classes() if cname not in skipped]
