"""The Morphase system: compile WOL programs and run transformations."""

from .metadata import (generate_source_key_clauses,
                       generate_target_key_clauses, key_clause_for,
                       source_key_clause_for)
from .system import Morphase, MorphaseError, MorphaseResult

__all__ = [
    "generate_source_key_clauses", "generate_target_key_clauses",
    "key_clause_for", "source_key_clause_for",
    "Morphase", "MorphaseError", "MorphaseResult",
]
