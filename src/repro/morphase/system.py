"""The Morphase system façade (paper Section 5, Figure 6).

Morphase wires the whole pipeline together::

    WOL transformation program + constraints        (user)
        + auto-generated key clauses                (meta-data)
      -> semi-normal form -> normal form            (normaliser)
      -> execution                                  (direct or via CPL)
      -> target database instance

Usage::

    morphase = Morphase([us_schema(), euro_schema()], target_schema(),
                        PROGRAM_TEXT)
    result = morphase.transform([us_instance, euro_instance])
    result.target            # the integrated instance
    result.normalized.report # compile statistics
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..engine.executor import ExecutionStats, execute
from ..engine.planner import ProgramPlan, plan_program
from ..lang.ast import Clause, Program
from ..lang.parser import parse_program
from ..lang.range_restriction import check_range_restriction
from ..lang.typecheck import check_clause
from ..model.instance import Instance
from ..model.keys import KeySpec, KeyedSchema, key_violations
from ..model.schema import Schema, merge_schemas
from ..normalization.keyclauses import recognise_key_clause
from ..normalization.normalize import (
    NormalizationOptions, NormalizedProgram, normalize)
from ..normalization.snf import snf_clause
from ..obs.trace import span
from ..semantics.satisfaction import (Violation, merge_instances,
                                      program_violations)
from .metadata import generate_target_key_clauses

AnySchema = Union[Schema, KeyedSchema]


class MorphaseError(Exception):
    """Raised for configuration or source-validation failures."""


@dataclass
class MorphaseResult:
    """Outcome of one transformation run."""

    target: Instance
    normalized: NormalizedProgram
    stats: ExecutionStats
    source_violations: Tuple[Violation, ...] = ()
    cpl_source: Optional[str] = None
    plan: Optional[ProgramPlan] = None


def _plain_schema(schema: AnySchema) -> Schema:
    return schema.schema if isinstance(schema, KeyedSchema) else schema


def _keys_of(schema: AnySchema) -> Optional[KeySpec]:
    return schema.keys if isinstance(schema, KeyedSchema) else None


class Morphase:
    """Compile once, transform many times (the paper's trade-off)."""

    def __init__(self, source_schemas: Sequence[AnySchema],
                 target_schema: AnySchema,
                 program: Union[Program, str],
                 options: Optional[NormalizationOptions] = None,
                 auto_keys: bool = True,
                 typecheck: bool = True,
                 preflight: bool = True) -> None:
        self.source_schemas = list(source_schemas)
        self.target_schema = target_schema
        self.options = options or NormalizationOptions()
        self.auto_keys = auto_keys
        self.preflight = preflight
        self._program_text = program if isinstance(program, str) else None
        self._preflight_report = None

        self.source_schema = merge_schemas(
            "__source__", [_plain_schema(s) for s in self.source_schemas])
        self.target_plain = _plain_schema(target_schema)
        self.all_classes = (self.source_schema.class_names()
                            + self.target_plain.class_names())
        self.merged_schema = merge_schemas(
            "__all__",
            [self.source_schema, self.target_plain])

        if isinstance(program, str):
            program = parse_program(program, classes=self.all_classes)
        self.program = program

        if typecheck:
            for clause in self.program:
                check_clause(self.merged_schema, clause)
                check_range_restriction(clause)

        self.source_keys = self._merge_source_keys()
        self._normalized: Optional[NormalizedProgram] = None

    # ------------------------------------------------------------------
    def _merge_source_keys(self) -> Optional[KeySpec]:
        functions = {}
        for schema in self.source_schemas:
            keys = _keys_of(schema)
            if keys is None:
                continue
            for cname in keys.classes():
                functions[cname] = keys.key_for(cname)
        return KeySpec(functions) if functions else None

    def _program_with_auto_keys(self) -> Program:
        if not self.auto_keys or not isinstance(self.target_schema,
                                                KeyedSchema):
            return self.program
        written = set()
        for clause in self.program:
            recognised = recognise_key_clause(snf_clause(clause))
            if recognised is not None:
                written.add(recognised.class_name)
        generated = generate_target_key_clauses(self.target_schema,
                                                skip=written)
        if not generated:
            return self.program
        return Program(self.program.clauses + tuple(generated))

    # ------------------------------------------------------------------
    def preflight_report(self):
        """The static analyzer's report over this program (cached).

        Runs the full :mod:`repro.analysis` pass pipeline — safety,
        dead clauses, interference, schema/key lint — with the key
        knowledge this system compiled (schema keys plus recognised key
        constraints).  Inline ``-- lint: disable=...`` directives in
        the program text are honoured.
        """
        if self._preflight_report is None:
            from ..analysis import analyze_program, parse_suppressions
            suppressions = (parse_suppressions(self._program_text)
                            if self._program_text else frozenset())
            self._preflight_report = analyze_program(
                self.program, self.source_schema, self.target_plain,
                target_keys=_keys_of(self.target_schema),
                source_keys=self.source_keys,
                suppressions=suppressions)
        return self._preflight_report

    def _ensure_preflight(self) -> None:
        """Refuse to run a program the analyzer rejects.

        One aggregated :class:`MorphaseError` lists every error-severity
        diagnostic.  Disable with ``Morphase(..., preflight=False)`` or
        suppress individual findings in the program text.
        """
        if not self.preflight:
            return
        errors = self.preflight_report().errors()
        if not errors:
            return
        detail = "; ".join(
            f"{d.code} [{d.clause or '<program>'}] {d.message}"
            for d in errors[:5])
        more = f" (+{len(errors) - 5} more)" if len(errors) > 5 else ""
        raise MorphaseError(
            f"preflight analysis found {len(errors)} error(s): "
            f"{detail}{more}; fix them, suppress with "
            f"'-- lint: disable=CODE', or pass preflight=False")

    # ------------------------------------------------------------------
    def compile(self, force: bool = False) -> NormalizedProgram:
        """Normalise the program (cached)."""
        if self._normalized is None or force:
            self._normalized = normalize(
                self._program_with_auto_keys(),
                self.source_schema, self.target_plain,
                source_keys=self.source_keys, options=self.options)
        return self._normalized

    # ------------------------------------------------------------------
    def check_source(self, source: Instance,
                     use_planner: bool = True,
                     parallel: Optional[int] = None,
                     columnar: bool = True) -> List[Violation]:
        """Audit the merged source instance against source constraints.

        Includes schema-level key specifications: a key violation is
        reported as a violation of the corresponding identity clause.
        The audit is planned by default (one shared prebuilt index pool
        across all constraint clauses); ``use_planner=False`` runs the
        naive per-clause matchers, kept as the differential oracle.
        ``parallel=N`` fans the audit out across ``N`` worker processes
        with hash-sharded body enumerations (violation sets union).
        """
        self._ensure_preflight()
        normalized = self.compile()
        violations = list(program_violations(
            source, normalized.source_constraints, limit_per_clause=5,
            use_planner=use_planner, parallel=parallel,
            columnar=columnar))
        if self.source_keys is not None:
            for bad in key_violations(source, self.source_keys):
                violations.append(Violation(_key_violation_clause(bad), {}))
        return violations

    def plan(self, sources: Union[Instance, Sequence[Instance]]
             ) -> ProgramPlan:
        """Plan the compiled normal form against the source instance(s).

        Exposes the execution planner's choices (fixed atom orders,
        shared indexes) without running the transformation — the CLI's
        ``plan`` subcommand prints this.  Indexes are *not* prebuilt:
        explaining a plan should not pay an execution cost.
        """
        merged = self._merge_sources(sources)
        return plan_program(self.compile().program(), merged,
                            prebuild=False)

    def _merge_sources(self, sources: Union[Instance, Sequence[Instance]]
                       ) -> Instance:
        if isinstance(sources, Instance):
            return (sources if sources.schema.classes
                    == self.source_schema.classes
                    else merge_instances("__source__", [sources]))
        return merge_instances("__source__", list(sources))

    def transform(self, sources: Union[Instance, Sequence[Instance]],
                  validate: bool = True,
                  check_source_constraints: bool = False,
                  backend: str = "direct",
                  defaults=None,
                  use_planner: bool = True,
                  parallel: Optional[int] = None,
                  columnar: bool = True) -> MorphaseResult:
        """Run the compiled program over the source instance(s).

        ``backend`` is ``"direct"`` (the one-pass executor) or ``"cpl"``
        (translate to CPL and interpret — the paper's production path).
        ``defaults`` maps ``(class, attribute)`` to fill-in values for
        attributes no clause derived (direct backend only); see
        :meth:`repro.engine.executor.Executor.freeze`.

        The direct backend plans the program once per run by default
        (fixed atom orders plus a shared prebuilt index pool);
        ``use_planner=False`` forces the naive per-clause path, kept as
        the differential oracle.

        ``parallel=N`` shards the planned direct path across ``N``
        worker processes (:func:`repro.engine.parallel.execute_parallel`)
        — every clause's driving generator is hash-partitioned and the
        shards merge into a target byte-identical to the sequential
        result.  Parallel execution *is* planned execution, so it
        cannot be combined with ``use_planner=False`` or the CPL
        backend.
        """
        with span("preflight"):
            self._ensure_preflight()
            merged = self._merge_sources(sources)
        with span("compile", clauses=len(self.program.clauses)):
            normalized = self.compile()
        source_violations: Tuple[Violation, ...] = ()
        if check_source_constraints:
            found = self.check_source(merged)
            source_violations = tuple(found)
            if found:
                raise MorphaseError(
                    "source constraints violated: "
                    + "; ".join(str(v) for v in found[:5]))

        if parallel is not None:
            if backend != "direct":
                raise MorphaseError(
                    "parallel execution supports only the direct "
                    "backend")
            if not use_planner:
                raise MorphaseError(
                    "parallel execution shards join plans; it cannot "
                    "run with use_planner=False (drop --no-planner)")
            if parallel < 1:
                raise MorphaseError("parallel worker count must be >= 1")

        program_plan: Optional[ProgramPlan] = None
        if backend == "direct":
            if parallel is not None:
                from ..engine.parallel import execute_parallel
                with span("plan") as plan_span:
                    program_plan = plan_program(normalized.program(),
                                                merged)
                    plan_span.set(indexes=program_plan.prebuilt_indexes)
                target, stats = execute_parallel(
                    normalized.program(), merged, self.target_plain,
                    parallel, validate=validate, defaults=defaults,
                    plan=program_plan, columnar=columnar)
                return MorphaseResult(target=target,
                                      normalized=normalized,
                                      stats=stats,
                                      source_violations=source_violations,
                                      plan=program_plan)
            if use_planner:
                with span("plan") as plan_span:
                    program_plan = plan_program(normalized.program(),
                                                merged)
                    plan_span.set(indexes=program_plan.prebuilt_indexes)
            with span("execute"):
                target, stats = execute(
                    normalized.program(), merged, self.target_plain,
                    validate=validate, defaults=defaults,
                    plan=program_plan, columnar=columnar)
            cpl_source = None
        elif backend == "cpl":
            if defaults:
                raise MorphaseError(
                    "defaults are only supported by the direct backend")
            from ..cpl.translate import translate_program
            from ..cpl.interp import run_cpl
            cpl_program = translate_program(normalized.program(),
                                            self.target_plain)
            start = time.perf_counter()
            target = run_cpl(cpl_program, merged, self.target_plain,
                             validate=validate)
            stats = ExecutionStats(
                clauses_run=len(normalized.clauses),
                elapsed_seconds=time.perf_counter() - start)
            cpl_source = cpl_program.source()
        else:
            raise MorphaseError(f"unknown backend {backend!r}")

        return MorphaseResult(target=target, normalized=normalized,
                              stats=stats,
                              source_violations=source_violations,
                              cpl_source=cpl_source, plan=program_plan)

    # ------------------------------------------------------------------
    # Incremental execution (delta-driven change propagation)
    # ------------------------------------------------------------------
    def begin_incremental(self, sources: Union[Instance,
                                               Sequence[Instance]],
                          defaults=None, columnar: bool = True):
        """Start an incremental transformation session.

        Runs the compiled program once (planned, recording per-clause
        effect counts) and returns an
        :class:`~repro.engine.incremental.IncrementalTransform` whose
        ``target`` tracks the source under :meth:`apply_delta` — the
        change-propagation mode the paper's Section 6 envisions for
        transformations in front of evolving databases.
        """
        from ..engine.incremental import IncrementalTransform
        self._ensure_preflight()
        merged = self._merge_sources(sources)
        normalized = self.compile()
        return IncrementalTransform(normalized.program(), merged,
                                    self.target_plain, defaults=defaults,
                                    columnar=columnar)

    def apply_delta(self, state, delta):
        """Advance an incremental session by one source delta.

        ``state`` is the session from :meth:`begin_incremental`; the
        returned :class:`~repro.engine.incremental.DeltaResult` carries
        the updated target instance and the propagation statistics.
        The result is identical to re-running :meth:`transform` on the
        updated source (the full recompute stays on as the differential
        oracle).
        """
        return state.apply_delta(delta)

    def begin_incremental_audit(self, sources: Union[Instance,
                                                     Sequence[Instance]],
                                constraints=None,
                                columnar: bool = True):
        """Start an incremental source-constraint audit session.

        Audits the merged source against ``constraints`` (default: the
        compiled program's source constraints, as :meth:`check_source`
        uses) and returns an
        :class:`~repro.engine.incremental.IncrementalAudit` maintaining
        the complete violation set under :meth:`audit_delta`.
        """
        from ..engine.incremental import IncrementalAudit
        merged = self._merge_sources(sources)
        if constraints is None:
            constraints = list(self.compile().source_constraints)
        return IncrementalAudit(merged, constraints, columnar=columnar)

    def audit_delta(self, state, delta):
        """Advance an incremental audit session by one source delta.

        Returns an
        :class:`~repro.engine.incremental.AuditDeltaResult`: the newly
        raised violations (from inserts and updates), the retracted
        ones (from deletes and updates), and the full surviving set —
        identical to a fresh audit of the updated instance.
        """
        return state.apply_delta(delta)

    # ------------------------------------------------------------------
    # Durable store + service (snapshot/WAL persistence, warm sessions)
    # ------------------------------------------------------------------
    def open_store(self, path: str,
                   sources: Union[Instance, Sequence[Instance], None]
                   = None,
                   fsync: bool = False):
        """Open (or create) a durable warehouse store for this system.

        An existing store at ``path`` is recovered — latest snapshot
        plus WAL tail, torn final record tolerated.  Otherwise
        ``sources`` must be given and the store is initialised with
        their merged instance as snapshot zero.  The store persists
        the *merged source*; transformed targets are derived state a
        :meth:`serve` session keeps warm.
        """
        from ..store.store import StoreError, WarehouseStore
        if WarehouseStore.exists(path):
            store = WarehouseStore.open(path, fsync=fsync)
            if (store.instance.schema.class_names()
                    != self.source_schema.class_names()):
                raise MorphaseError(
                    f"store at {path} holds classes "
                    f"{store.instance.schema.class_names()}, but this "
                    f"system's merged source schema has "
                    f"{self.source_schema.class_names()}")
            return store
        if sources is None:
            raise MorphaseError(
                f"no store at {path} and no sources to initialise one")
        try:
            return WarehouseStore.create(
                path, self._merge_sources(sources), fsync=fsync)
        except StoreError as exc:
            raise MorphaseError(str(exc)) from exc

    def serve(self, store, defaults=None):
        """A warm, thread-safe serving session over an open store.

        Returns a :class:`~repro.service.session.WarehouseSession`:
        the compiled plan, shared index pool and incremental
        transform/audit state stay hot across requests, writers
        group-commit delta bursts, readers run concurrently.  Hand it
        to :func:`repro.service.server.make_server` for the HTTP
        front end.
        """
        from ..service.session import WarehouseSession
        return WarehouseSession(self, store, defaults=defaults)

    # ------------------------------------------------------------------
    def audit(self, sources: Union[Instance, Sequence[Instance]],
              target: Instance,
              use_planner: bool = True,
              parallel: Optional[int] = None,
              columnar: bool = True) -> List[Violation]:
        """Check the original program (transformations + constraints)
        against source and target together — the definition of a
        Tr-transformation (Section 3.2).

        The whole audit is planned once by default: every clause body
        and head-satisfiability probe is compiled into a fixed join
        order and executed over one shared, prebuilt index pool.
        ``use_planner=False`` is the naive per-clause oracle.
        ``parallel=N`` shards every clause's body enumeration across
        ``N`` worker processes and unions the violation sets.
        """
        self._ensure_preflight()
        if isinstance(sources, Instance):
            sources = [sources]
        combined = merge_instances("__audit__", list(sources) + [target])
        return list(program_violations(combined, self.program,
                                       limit_per_clause=5,
                                       use_planner=use_planner,
                                       parallel=parallel,
                                       columnar=columnar))


def _key_violation_clause(violation) -> Clause:
    """A placeholder clause naming the violated key (for reporting)."""
    from ..lang.ast import Const, EqAtom
    return Clause(
        (EqAtom(Const(str(violation)), Const(str(violation))),),
        (),
        name=f"key_{violation.class_name}")
