"""Interpreter for the miniature CPL (paper Section 5).

Evaluates a :class:`~repro.cpl.ast.CplProgram` against a source instance,
accumulating inserts into a target instance with the same merge semantics
as the direct executor: keyed identities are idempotent, attribute
conflicts are errors, set-valued attributes accumulate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Set

from ..model.instance import Instance, InstanceBuilder, InstanceError
from ..model.schema import Schema
from ..model.types import RecordType, SetType
from ..model.values import (Oid, Record, Value, Variant, WolList, WolSet,
                            format_value)
from .ast import (
    CplProgram, EBinOp, EConst, EExtent, EField, EIsVariant, EMkOid, ERecord,
    EVar, EVariant, EVariantPayload, Expr, Filter, Generator, LetBind,
    Qualifier)


class CplRuntimeError(Exception):
    """Raised on evaluation failures or conflicting inserts."""


Env = Dict[str, Value]


def eval_expr(expr: Expr, env: Env, source: Instance) -> Value:
    """Evaluate one CPL expression."""
    if isinstance(expr, EVar):
        try:
            return env[expr.name]
        except KeyError:
            raise CplRuntimeError(
                f"unbound CPL variable {expr.name}") from None
    if isinstance(expr, EConst):
        return expr.value  # type: ignore[return-value]
    if isinstance(expr, ERecord):
        return Record(tuple(
            (label, eval_expr(sub, env, source))
            for label, sub in expr.fields))
    if isinstance(expr, EVariant):
        return Variant(expr.label, eval_expr(expr.payload, env, source))
    if isinstance(expr, EField):
        subject = eval_expr(expr.subject, env, source)
        if isinstance(subject, Oid):
            try:
                subject = source.value_of(subject)
            except InstanceError as exc:
                raise CplRuntimeError(str(exc)) from exc
        if not isinstance(subject, Record):
            raise CplRuntimeError(
                f"cannot project .{expr.label} from "
                f"{format_value(subject)}")
        if not subject.has(expr.label):
            raise CplRuntimeError(f"no field {expr.label!r}")
        return subject.get(expr.label)
    if isinstance(expr, EMkOid):
        return Oid.keyed(expr.class_name, eval_expr(expr.key, env, source))
    if isinstance(expr, EExtent):
        if not source.schema.has_class(expr.class_name):
            raise CplRuntimeError(
                f"extent of unknown class {expr.class_name}")
        return WolList(tuple(sorted(source.objects_of(expr.class_name),
                                    key=str)))
    if isinstance(expr, EIsVariant):
        subject = eval_expr(expr.subject, env, source)
        return isinstance(subject, Variant) and subject.label == expr.label
    if isinstance(expr, EVariantPayload):
        subject = eval_expr(expr.subject, env, source)
        if not (isinstance(subject, Variant)
                and subject.label == expr.label):
            raise CplRuntimeError(
                f"payload<{expr.label}> of {format_value(subject)}")
        return subject.value
    if isinstance(expr, EBinOp):
        left = eval_expr(expr.left, env, source)
        right = eval_expr(expr.right, env, source)
        if expr.op == "==":
            return left == right
        if expr.op == "<>":
            return left != right
        if expr.op == "in":
            if not isinstance(right, (WolSet, WolList)):
                raise CplRuntimeError("'in' needs a collection")
            return any(left == element for element in right)
        try:
            if expr.op == "<":
                return left < right  # type: ignore[operator]
            return left <= right  # type: ignore[operator]
        except TypeError as exc:
            raise CplRuntimeError(f"incomparable values in {expr}") from exc
    raise CplRuntimeError(f"unknown CPL expression {expr!r}")


def solutions(qualifiers: Sequence[Qualifier], env: Env,
              source: Instance) -> Iterator[Env]:
    """Enumerate environments satisfying the qualifier list."""
    if not qualifiers:
        yield env
        return
    head, rest = qualifiers[0], qualifiers[1:]
    if isinstance(head, Generator):
        collection = eval_expr(head.source, env, source)
        if not isinstance(collection, (WolSet, WolList)):
            raise CplRuntimeError(
                f"generator source is not a collection: {head.source}")
        elements = (list(collection) if isinstance(collection, WolList)
                    else sorted(collection, key=str))
        for element in elements:
            extended = dict(env)
            extended[head.var] = element
            yield from solutions(rest, extended, source)
        return
    if isinstance(head, LetBind):
        extended = dict(env)
        extended[head.var] = eval_expr(head.value, env, source)
        yield from solutions(rest, extended, source)
        return
    if isinstance(head, Filter):
        value = eval_expr(head.condition, env, source)
        if value is True:
            yield from solutions(rest, env, source)
        return
    raise CplRuntimeError(f"unknown qualifier {head!r}")


@dataclass
class _Accumulated:
    class_name: str
    attributes: Dict[str, Value] = field(default_factory=dict)
    set_attributes: Dict[str, Set[Value]] = field(default_factory=dict)


def run_cpl(program: CplProgram, source: Instance, target_schema: Schema,
            validate: bool = True) -> Instance:
    """Execute a CPL program, producing the target instance."""
    pending: Dict[Oid, _Accumulated] = {}

    for insert in program.inserts:
        for env in solutions(insert.qualifiers, {}, source):
            oid = eval_expr(insert.identity, env, source)
            if not isinstance(oid, Oid):
                raise CplRuntimeError(
                    f"insert identity is not an oid: {insert.identity}")
            if oid.class_name != insert.class_name:
                raise CplRuntimeError(
                    f"identity {oid} inserted into class "
                    f"{insert.class_name}")
            accumulated = pending.setdefault(
                oid, _Accumulated(insert.class_name))
            for label, expr in insert.attributes:
                value = eval_expr(expr, env, source)
                existing = accumulated.attributes.get(label)
                if existing is not None and existing != value:
                    raise CplRuntimeError(
                        f"conflict on {oid}.{label}: "
                        f"{format_value(existing)} vs "
                        f"{format_value(value)}")
                accumulated.attributes[label] = value
            for label, expr in insert.set_inserts:
                accumulated.set_attributes.setdefault(label, set()).add(
                    eval_expr(expr, env, source))

    builder = InstanceBuilder(target_schema)
    problems: List[str] = []
    for oid, accumulated in sorted(pending.items(), key=lambda i: str(i[0])):
        ctype = target_schema.class_type(accumulated.class_name)
        if not isinstance(ctype, RecordType):
            raise CplRuntimeError(
                f"target class {accumulated.class_name} is not "
                f"record-typed")
        fields = dict(accumulated.attributes)
        for label, elements in accumulated.set_attributes.items():
            fields[label] = WolSet(frozenset(elements))
        for label, fty in ctype.fields:
            if label not in fields and isinstance(fty, SetType):
                fields[label] = WolSet(frozenset())
        missing = [label for label in ctype.labels() if label not in fields]
        if missing:
            problems.append(f"{oid}: missing {missing}")
            continue
        builder.put(oid, Record(tuple(fields.items())))
    if problems and validate:
        raise CplRuntimeError("incomplete inserts: " + "; ".join(problems))
    instance = builder.freeze(validate=False)
    if validate:
        try:
            instance.validate()
        except InstanceError as exc:
            raise CplRuntimeError(str(exc)) from exc
    return instance
