"""Miniature CPL: Morphase's execution backend (paper Section 5)."""

from .ast import (CplProgram, EBinOp, EConst, EExtent, EField, EIsVariant,
                  EMkOid, ERecord, EVar, EVariant, EVariantPayload, Expr,
                  Filter, Generator, Insert, LetBind, Qualifier)
from .interp import CplRuntimeError, eval_expr, run_cpl, solutions
from .translate import (CplTranslationError, translate_body,
                        translate_clause, translate_program)

__all__ = [
    "CplProgram", "EBinOp", "EConst", "EExtent", "EField", "EIsVariant",
    "EMkOid", "ERecord", "EVar", "EVariant", "EVariantPayload", "Expr",
    "Filter", "Generator", "Insert", "LetBind", "Qualifier",
    "CplRuntimeError", "eval_expr", "run_cpl", "solutions",
    "CplTranslationError", "translate_body", "translate_clause",
    "translate_program",
]
