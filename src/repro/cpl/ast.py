"""A miniature CPL: the Collection Programming Language target of Morphase.

The real CPL (Buneman et al., the Kleisli system) is a comprehension-based
language over complex values.  Morphase compiles normal-form WOL programs
into CPL for execution (paper Section 5, Figure 6).  This module implements
the fragment that translated normal-form WOL needs:

* expressions: variables, constants, record/variant construction, field
  projection (with implicit oid dereference), Skolem oid construction,
  equality/order primitives, class extents;
* comprehension qualifiers: generators ``X <- e``, bindings ``let X = e``,
  filters;
* insert statements: for each solution of a qualifier list, insert an
  object with a given identity and attribute values into a target class.

Programs pretty-print to a readable CPL-ish source form (:meth:`Program
.source`), mirroring how Morphase emitted CPL text for Kleisli.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class Expr:
    """Base class of CPL expressions."""


@dataclass(frozen=True)
class EVar(Expr):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class EConst(Expr):
    value: object

    def __str__(self) -> str:
        from ..model.values import format_value
        return format_value(self.value)  # type: ignore[arg-type]


@dataclass(frozen=True)
class ERecord(Expr):
    fields: Tuple[Tuple[str, Expr], ...]

    def __str__(self) -> str:
        inner = ", ".join(f"{label} = {expr}" for label, expr in self.fields)
        return f"({inner})"


@dataclass(frozen=True)
class EVariant(Expr):
    label: str
    payload: Expr

    def __str__(self) -> str:
        return f"<{self.label}: {self.payload}>"


@dataclass(frozen=True)
class EField(Expr):
    """Projection; dereferences object identities like WOL's ``x.a``."""

    subject: Expr
    label: str

    def __str__(self) -> str:
        return f"{self.subject}.{self.label}"


@dataclass(frozen=True)
class EMkOid(Expr):
    """Skolem object construction: ``mk[Class](key)``."""

    class_name: str
    key: Expr

    def __str__(self) -> str:
        return f"mk[{self.class_name}]({self.key})"


@dataclass(frozen=True)
class EExtent(Expr):
    """The extent (set of object identities) of a source class."""

    class_name: str

    def __str__(self) -> str:
        return f"extent({self.class_name})"


@dataclass(frozen=True)
class EIsVariant(Expr):
    subject: Expr
    label: str

    def __str__(self) -> str:
        return f"is<{self.label}>({self.subject})"


@dataclass(frozen=True)
class EVariantPayload(Expr):
    subject: Expr
    label: str

    def __str__(self) -> str:
        return f"payload<{self.label}>({self.subject})"


@dataclass(frozen=True)
class EBinOp(Expr):
    """Primitive comparisons: ``==``, ``<>``, ``<``, ``<=``, ``in``."""

    op: str
    left: Expr
    right: Expr

    _OPS = ("==", "<>", "<", "<=", "in")

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ValueError(f"unknown CPL operator {self.op!r}")

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


# ----------------------------------------------------------------------
# Qualifiers
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Qualifier:
    """Base class of comprehension qualifiers."""


@dataclass(frozen=True)
class Generator(Qualifier):
    var: str
    source: Expr

    def __str__(self) -> str:
        return f"{self.var} <- {self.source}"


@dataclass(frozen=True)
class LetBind(Qualifier):
    var: str
    value: Expr

    def __str__(self) -> str:
        return f"let {self.var} = {self.value}"


@dataclass(frozen=True)
class Filter(Qualifier):
    condition: Expr

    def __str__(self) -> str:
        return str(self.condition)


# ----------------------------------------------------------------------
# Statements and programs
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Insert:
    """Insert one object (and/or attribute values) per qualifier solution.

    ``identity`` evaluates to the object identity; ``attributes`` map
    attribute names to value expressions; ``set_inserts`` accumulate
    elements into set-valued attributes.
    """

    class_name: str
    identity: Expr
    attributes: Tuple[Tuple[str, Expr], ...]
    qualifiers: Tuple[Qualifier, ...]
    set_inserts: Tuple[Tuple[str, Expr], ...] = ()
    comment: Optional[str] = None

    def source(self) -> str:
        lines: List[str] = []
        if self.comment:
            lines.append(f"-- {self.comment}")
        lines.append(f"insert {self.class_name}")
        parts = [f"identity = {self.identity}"]
        parts += [f"{label} = {expr}" for label, expr in self.attributes]
        parts += [f"{label} += {expr}" for label, expr in self.set_inserts]
        lines.append("  { " + ",\n    ".join(parts))
        if self.qualifiers:
            quals = ",\n    ".join(str(q) for q in self.qualifiers)
            lines.append("  | " + quals)
        lines.append("  };")
        return "\n".join(lines)


@dataclass(frozen=True)
class CplProgram:
    """A sequence of insert statements (one or more per WOL clause)."""

    inserts: Tuple[Insert, ...]

    def source(self) -> str:
        return "\n\n".join(insert.source() for insert in self.inserts)

    def __len__(self) -> int:
        return len(self.inserts)
