"""Translation of normal-form WOL into CPL (paper Section 5, Figure 6).

"Once translated into normal-form, a WOL program can be executed against
the source databases to produce the target database.  Complete, normal-form
WOL programs are compiled into CPL."

Each normal-form clause becomes one insert statement per created object:
the clause body translates to comprehension qualifiers (class extents as
generators, definitions as ``let``, conditions as filters) and the head's
Skolem identity plus attribute assignments become the insert payload.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..engine.executor import ExecutionError, _HeadPlan
from ..lang.ast import (Atom, Clause, Const, EqAtom, InAtom, LeqAtom, LtAtom,
                        MemberAtom, NeqAtom, Program, Proj, RecordTerm,
                        SkolemTerm, Term, Var, VariantTerm)
from ..model.schema import Schema
from .ast import (CplProgram, EBinOp, EConst, EExtent, EField, EIsVariant,
                  EMkOid, ERecord, EVar, EVariant, EVariantPayload, Expr,
                  Filter, Generator, Insert, LetBind, Qualifier)


class CplTranslationError(Exception):
    """Raised when a clause is not in translatable normal form."""


def _skolem_key_expr(skolem: SkolemTerm, bound: Set[str]) -> Expr:
    """The key expression packed into a Skolem oid (mirrors
    :func:`repro.semantics.eval.skolem_key`)."""
    args = list(skolem.args)
    if not args:
        return ERecord(())
    if args[0][0] is None:
        if len(args) == 1:
            return _expr(args[0][1], bound)
        return ERecord(tuple(
            (f"arg{index}", _expr(term, bound))
            for index, (_, term) in enumerate(args)))
    return ERecord(tuple(
        (label, _expr(term, bound)) for label, term in args))


def _expr(term: Term, bound: Set[str]) -> Expr:
    """Translate a term whose variables are all bound."""
    if isinstance(term, Var):
        if term.name not in bound:
            raise CplTranslationError(f"unbound variable {term.name}")
        return EVar(term.name)
    if isinstance(term, Const):
        return EConst(term.value)
    if isinstance(term, Proj):
        return EField(_expr(term.subject, bound), term.attr)
    if isinstance(term, VariantTerm):
        return EVariant(term.label, _expr(term.payload, bound))
    if isinstance(term, RecordTerm):
        return ERecord(tuple(
            (label, _expr(value, bound)) for label, value in term.fields))
    if isinstance(term, SkolemTerm):
        return EMkOid(term.class_name, _skolem_key_expr(term, bound))
    raise CplTranslationError(f"cannot translate term {term!r}")


def _is_translatable(term: Term, bound: Set[str]) -> bool:
    return all(name in bound for name in term.variables())


def translate_body(body: Sequence[Atom],
                   source_classes: Set[str]) -> Tuple[Qualifier, ...]:
    """Order body atoms into comprehension qualifiers."""
    pending: List[Atom] = list(body)
    bound: Set[str] = set()
    qualifiers: List[Qualifier] = []

    def try_translate(atom: Atom) -> bool:
        if isinstance(atom, MemberAtom):
            if not isinstance(atom.element, Var):
                return False
            if atom.class_name not in source_classes:
                raise CplTranslationError(
                    f"body mentions non-source class {atom.class_name}")
            if atom.element.name in bound:
                qualifiers.append(Filter(EBinOp(
                    "in", EVar(atom.element.name),
                    EExtent(atom.class_name))))
            else:
                qualifiers.append(Generator(atom.element.name,
                                            EExtent(atom.class_name)))
                bound.add(atom.element.name)
            return True
        if isinstance(atom, EqAtom):
            left, right = atom.left, atom.right
            left_ok = _is_translatable(left, bound)
            right_ok = _is_translatable(right, bound)
            if left_ok and right_ok:
                qualifiers.append(Filter(EBinOp(
                    "==", _expr(left, bound), _expr(right, bound))))
                return True
            if (isinstance(left, Var) and left.name not in bound
                    and right_ok):
                qualifiers.append(LetBind(left.name, _expr(right, bound)))
                bound.add(left.name)
                return True
            if left_ok and isinstance(right, VariantTerm) \
                    and isinstance(right.payload, Var) \
                    and right.payload.name not in bound:
                subject = _expr(left, bound)
                qualifiers.append(Filter(EIsVariant(subject, right.label)))
                qualifiers.append(LetBind(
                    right.payload.name,
                    EVariantPayload(subject, right.label)))
                bound.add(right.payload.name)
                return True
            if left_ok and isinstance(right, RecordTerm):
                subject = _expr(left, bound)
                for label, value in right.fields:
                    if isinstance(value, Var) and value.name not in bound:
                        qualifiers.append(LetBind(
                            value.name, EField(subject, label)))
                        bound.add(value.name)
                    else:
                        qualifiers.append(Filter(EBinOp(
                            "==", _expr(value, bound),
                            EField(subject, label))))
                return True
            return False
        if isinstance(atom, InAtom):
            if not _is_translatable(atom.collection, bound):
                return False
            collection = _expr(atom.collection, bound)
            if (isinstance(atom.element, Var)
                    and atom.element.name not in bound):
                qualifiers.append(Generator(atom.element.name, collection))
                bound.add(atom.element.name)
                return True
            if _is_translatable(atom.element, bound):
                qualifiers.append(Filter(EBinOp(
                    "in", _expr(atom.element, bound), collection)))
                return True
            return False
        if isinstance(atom, (NeqAtom, LtAtom, LeqAtom)):
            if not (_is_translatable(atom.left, bound)
                    and _is_translatable(atom.right, bound)):
                return False
            op = {"NeqAtom": "<>", "LtAtom": "<",
                  "LeqAtom": "<="}[type(atom).__name__]
            qualifiers.append(Filter(EBinOp(
                op, _expr(atom.left, bound), _expr(atom.right, bound))))
            return True
        raise CplTranslationError(f"unknown atom kind {atom!r}")

    while pending:
        progressed = False
        for index, atom in enumerate(pending):
            if try_translate(atom):
                del pending[index]
                progressed = True
                break
        if not progressed:
            raise CplTranslationError(
                "cannot order body atoms for translation: "
                + ", ".join(str(a) for a in pending))
    return tuple(qualifiers)


def translate_clause(clause: Clause, target_schema: Schema,
                     source_classes: Set[str]) -> List[Insert]:
    """Translate one normal-form clause into insert statements."""
    try:
        plan = _HeadPlan(clause, target_schema)
    except ExecutionError as exc:
        raise CplTranslationError(str(exc)) from exc
    if plan.checks:
        raise CplTranslationError(
            f"clause {clause.name or clause}: residual head checks "
            f"{[str(c) for c in plan.checks]} are not translatable")

    qualifiers = list(translate_body(clause.body, source_classes))
    bound: Set[str] = set()
    for qualifier in qualifiers:
        if isinstance(qualifier, (Generator, LetBind)):
            bound.add(qualifier.var)

    for var, skolem in plan.identity_order:
        if var in bound:
            qualifiers.append(Filter(EBinOp(
                "==", EVar(var),
                EMkOid(skolem.class_name,
                       _skolem_key_expr(skolem, bound)))))
        else:
            qualifiers.append(LetBind(var, EMkOid(
                skolem.class_name, _skolem_key_expr(skolem, bound))))
            bound.add(var)

    inserts: List[Insert] = []
    for var, class_name in sorted(plan.created.items()):
        if var not in bound:
            raise CplTranslationError(
                f"clause {clause.name or clause}: created object {var} "
                f"has no Skolem identity; not in normal form")
        attributes = tuple(
            (attr, _expr(value, bound))
            for subject, attr, value in plan.assignments
            if subject == var)
        set_inserts = tuple(
            (attr, _expr(element, bound))
            for subject, attr, element in plan.insertions
            if subject == var)
        inserts.append(Insert(
            class_name=class_name,
            identity=EVar(var),
            attributes=attributes,
            qualifiers=tuple(qualifiers),
            set_inserts=set_inserts,
            comment=f"from clause {clause.name}" if clause.name else None))

    orphan_assignments = [
        (subject, attr) for subject, attr, _ in plan.assignments
        if subject not in plan.created]
    if orphan_assignments:
        raise CplTranslationError(
            f"clause {clause.name or clause}: assignments to objects not "
            f"created here: {orphan_assignments}")

    # Set insertions into objects *not* created by this clause (their
    # identity comes from a body Skolem definition) become their own
    # accumulation inserts.
    orphan_inserts: Dict[str, List[Tuple[str, Expr]]] = {}
    for subject, attr, element in plan.insertions:
        if subject in plan.created:
            continue
        orphan_inserts.setdefault(subject, []).append(
            (attr, _expr(element, bound)))
    for subject, set_entries in sorted(orphan_inserts.items()):
        class_name = _subject_class(clause, subject)
        if class_name is None:
            raise CplTranslationError(
                f"clause {clause.name or clause}: cannot determine the "
                f"class of insertion subject {subject}")
        inserts.append(Insert(
            class_name=class_name,
            identity=EVar(subject),
            attributes=(),
            qualifiers=tuple(qualifiers),
            set_inserts=tuple(set_entries),
            comment=(f"accumulation from clause {clause.name}"
                     if clause.name else None)))
    return inserts


def _subject_class(clause: Clause, subject: str) -> Optional[str]:
    """The class of a variable bound by a body Skolem definition."""
    for atom in clause.body:
        if (isinstance(atom, EqAtom) and isinstance(atom.left, Var)
                and atom.left.name == subject
                and isinstance(atom.right, SkolemTerm)):
            return atom.right.class_name
    return None


def translate_program(program: Program,
                      target_schema: Schema,
                      source_classes: Optional[Set[str]] = None
                      ) -> CplProgram:
    """Translate a whole normal-form program."""
    if source_classes is None:
        # Everything mentioned in bodies that is not a target class.
        source_classes = set()
        for clause in program:
            for atom in clause.body:
                if isinstance(atom, MemberAtom):
                    source_classes.add(atom.class_name)
        source_classes -= set(target_schema.class_names())
    inserts: List[Insert] = []
    for clause in program:
        inserts.extend(
            translate_clause(clause, target_schema, set(source_classes)))
    return CplProgram(tuple(inserts))
