"""Parallel sharded execution: transforms and audits across processes.

Every execution path grown so far — naive, planned, incremental — is
single-process, so throughput caps at one core.  This module adds the
fourth engine: the source instance's *driving* class extents are
partitioned into shards by a stable hash of each object identity
(:func:`repro.semantics.match.shard_of`), every worker process runs the
whole program over the full instance but with each clause's driving
membership generator restricted to its shard
(:func:`repro.engine.planner.shard_join_plan`), and the per-shard
results merge back into one target through the very same accumulation
rules sequential execution uses.

Why this is correct:

* every clause solution binds the driving atom to exactly one oid, and
  every oid belongs to exactly one shard, so the per-shard solution
  sets *partition* the sequential solution set — no solution is lost,
  none is found twice;
* head effects are idempotent or accumulative (object creation is
  keyed, attribute assignments must agree, set insertions union), so
  replaying the shards' pending stores through
  :meth:`~repro.engine.executor.Executor.absorb` rebuilds the exact
  sequential pending store, and
  :meth:`~repro.engine.executor.Executor.freeze` assembles a
  byte-identical target instance;
* a clause with no driving generator (or no static plan) runs whole on
  shard 0, exactly once globally;
* conflicts (the program not being functional) surface either inside a
  worker or at merge time — both raise
  :class:`~repro.engine.executor.ExecutionError`, as sequential
  execution would.

Constraint audits shard the same way: each worker enumerates its shard
of every constraint's *body* solutions (the head-satisfiability probe
always sees the whole instance) and the violation sets union.

Workers are plain :class:`concurrent.futures.ProcessPoolExecutor`
processes fed pickle-safe envelopes (clauses + instance + shard
coordinates); each worker re-plans deterministically and builds its own
index pool, so nothing unpicklable ever crosses a process boundary.
``use_processes=False`` runs the same shard pipeline sequentially
in-process — the differential fuzz harness uses it to exercise shard
compilation and merging without per-example process-pool cost.
"""

from __future__ import annotations

import time
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import (Dict, Iterable, List, Mapping, Optional, Sequence,
                    Tuple)

from ..lang.ast import Clause
from ..model.instance import Instance
from ..model.schema import Schema
from ..model.values import Value
from ..semantics.match import Matcher
from ..semantics.satisfaction import Violation, clause_violations
from .executor import ExecutionStats, Executor
from .planner import (AuditPlan, ProgramPlan, plan_audit, plan_program,
                      shard_constraint_plan)


@dataclass(frozen=True)
class TransformEnvelope:
    """Everything one transform worker needs, all of it picklable.

    ``plan`` optionally carries the parent's compiled
    :class:`~repro.engine.planner.ProgramPlan` *including its prebuilt
    index pool*: the whole envelope pickles as one object graph, so the
    plan's pool still references the envelope's ``source`` after the
    round-trip, and a worker starts joining immediately instead of
    re-planning and re-building every index over the full instance.
    Without a plan the worker re-plans itself (planning is
    deterministic for a given program/instance pair, so the result is
    the same either way).
    """

    clauses: Tuple[Clause, ...]
    source: Instance
    target_schema: Schema
    shard_index: int
    shard_count: int
    plan: Optional[ProgramPlan] = None
    columnar: bool = True


@dataclass(frozen=True)
class AuditEnvelope:
    """One audit worker's share of a constraint family.

    ``plan`` optionally ships the parent's compiled
    :class:`~repro.engine.planner.AuditPlan` (with its prebuilt pool),
    exactly as :class:`TransformEnvelope` does for transforms.
    """

    constraints: Tuple[Clause, ...]
    instance: Instance
    shard_index: int
    shard_count: int
    limit_per_clause: Optional[int]
    plan: Optional[AuditPlan] = None
    columnar: bool = True


#: Per-process payload installed by the pool initializer: the clauses,
#: instance and target schema every shard of one run shares.  Shipping
#: them once per worker process (for free under ``fork``, one pickle
#: under ``spawn``) instead of once per task keeps the parent's serial
#: submission cost independent of the instance size.
_WORKER_PAYLOAD: Optional[Tuple] = None


def _install_payload(*payload) -> None:
    global _WORKER_PAYLOAD
    _WORKER_PAYLOAD = payload


def _run_transform_shard(clauses: Tuple[Clause, ...], source: Instance,
                         target_schema: Schema, shard_index: int,
                         shard_count: int,
                         plan: Optional[ProgramPlan] = None,
                         columnar: bool = True
                         ) -> Tuple[Dict, ExecutionStats]:
    executor = Executor(source, target_schema, use_planner=True,
                        shard=(shard_index, shard_count),
                        columnar=columnar)
    executor.run_program(clauses, plan=plan)
    executor.stats.shards_run = 1
    return executor.pending_export(), executor.stats


def _transform_shard(envelope: TransformEnvelope
                     ) -> Tuple[Dict, ExecutionStats]:
    """Run one shard of a transformation (self-contained envelope)."""
    return _run_transform_shard(envelope.clauses, envelope.source,
                                envelope.target_schema,
                                envelope.shard_index,
                                envelope.shard_count,
                                plan=envelope.plan,
                                columnar=envelope.columnar)


def _transform_shard_from_payload(coordinates: Tuple[int, int]
                                  ) -> Tuple[Dict, ExecutionStats]:
    """Run one shard against the process-wide installed payload."""
    clauses, source, target_schema, plan, columnar = _WORKER_PAYLOAD
    return _run_transform_shard(clauses, source, target_schema,
                                *coordinates, plan=plan,
                                columnar=columnar)


def execute_parallel(program: Iterable[Clause], source: Instance,
                     target_schema: Schema, workers: int,
                     validate: bool = True,
                     defaults: Optional[Mapping[Tuple[str, str],
                                                Value]] = None,
                     use_processes: bool = True,
                     plan: Optional[ProgramPlan] = None,
                     columnar: bool = True
                     ) -> Tuple[Instance, ExecutionStats]:
    """Run a normal-form program across ``workers`` shards.

    The counterpart of :func:`repro.engine.executor.execute`: same
    arguments, same result — the target instance is byte-identical to
    the sequential one (the differential fuzz suite holds all four
    engines to that).  ``workers`` is both the shard count and the
    process-pool size; ``workers=1`` (or ``use_processes=False``) runs
    the shard pipeline in-process, which the degenerate-parallelism
    tests use to pin ``parallel=1 == sequential``.

    Merged stats sum the per-shard counters (``bindings_found`` adds up
    to the sequential count; ``clauses_run`` counts per-shard clause
    executions) while ``elapsed_seconds`` is wall-clock for the whole
    fan-out including the merge.  ``plan`` injects a precomputed
    :class:`~repro.engine.planner.ProgramPlan` for this program over
    this source (its prebuilt pool ships to the workers); without one
    the program is planned here.
    """
    clauses = tuple(program)
    if workers < 1:
        raise ValueError("parallel worker count must be >= 1")
    if plan is not None and plan.pool.instance is not source:
        raise ValueError(
            "injected program plan was built for a different instance; "
            "its indexes would silently produce a wrong target "
            "(re-plan with plan_program against this source)")
    shard_count = int(workers)
    start = time.perf_counter()
    # Plan once in the parent: the compiled plan and its prebuilt index
    # pool ship to every worker inside the payload, so no worker pays
    # the O(instance) planning and index-build cost again.
    program_plan = plan if plan is not None \
        else plan_program(clauses, source)
    in_process = shard_count == 1 or not use_processes
    if in_process:
        shard_results = [
            _transform_shard(TransformEnvelope(
                clauses, source, target_schema, index, shard_count,
                plan=program_plan, columnar=columnar))
            for index in range(shard_count)]
    else:
        with ProcessPoolExecutor(
                max_workers=shard_count,
                initializer=_install_payload,
                initargs=(clauses, source, target_schema,
                          program_plan, columnar)) as pool:
            shard_results = list(pool.map(
                _transform_shard_from_payload,
                [(index, shard_count) for index in range(shard_count)]))
    merger = Executor(source, target_schema)
    stats = ExecutionStats()
    contributors = Counter()
    for pending, _ in shard_results:
        contributors.update(pending.keys())
    for pending, shard_stats in shard_results:
        # Objects derived by exactly one shard adopt wholesale; only
        # objects with cross-shard contributions replay attribute by
        # attribute (with conflict detection) through absorb().
        shared = {oid: obj for oid, obj in pending.items()
                  if contributors[oid] > 1}
        merger.adopt({oid: obj for oid, obj in pending.items()
                      if contributors[oid] == 1})
        merger.absorb(shared)
        stats.add(shard_stats)
        stats.shards_run += shard_stats.shards_run
    # Shards each count their own first touch of a cross-shard object,
    # so the summed objects_created over-counts; the merger saw every
    # distinct object exactly once and has the sequential-parity count.
    stats.objects_created = merger.stats.objects_created
    stats.parallel_workers = 0 if in_process else shard_count
    target = merger.freeze(validate=validate, defaults=defaults)
    stats.elapsed_seconds = time.perf_counter() - start
    return target, stats


# ----------------------------------------------------------------------
# Constraint audits
# ----------------------------------------------------------------------

@dataclass
class ParallelAuditResult:
    """Union of the shards' violation sets plus merged audit counters.

    ``violations_by_clause`` is keyed by the constraint's position in
    the audited sequence; within a clause the merged violations are
    sorted by their textual form, so the result is deterministic
    whatever order the workers finish in.  The planner counters mirror
    :class:`~repro.constraints.audit.ConstraintReport`; per-shard index
    activity is summed.
    """

    violations_by_clause: Dict[int, List[Violation]]
    shards_run: int = 0
    planned_bodies: int = 0
    planned_heads: int = 0
    prebuilt_indexes: int = 0
    indexes_built: int = 0
    index_lookups: int = 0
    index_hits: int = 0
    index_misses: int = 0

    def violations(self, constraints: Sequence[Clause]
                   ) -> List[Violation]:
        """Flatten to the sequential reporting order (clause order)."""
        flat: List[Violation] = []
        for index in range(len(constraints)):
            flat.extend(self.violations_by_clause.get(index, []))
        return flat


def _run_audit_shard(constraints: Tuple[Clause, ...],
                     instance: Instance, shard_index: int,
                     shard_count: int,
                     limit_per_clause: Optional[int],
                     audit_plan: Optional[AuditPlan] = None,
                     columnar: bool = True
                     ) -> Tuple[List[Tuple[int, Violation]],
                                Tuple[int, int, int, int, int, int, int]]:
    """Audit one shard of a constraint family.

    Returns ``(violations, counters)`` where each violation is tagged
    with its constraint's position and ``counters`` packs the planner
    and index-pool numbers for this shard's run.
    """
    if audit_plan is None:
        audit_plan = plan_audit(constraints, instance)
    matcher = Matcher(instance, index_pool=audit_plan.pool)
    pool = audit_plan.pool
    baseline = (pool.builds, pool.lookups, pool.hits, pool.misses)
    found: List[Tuple[int, Violation]] = []
    for index, clause in enumerate(constraints):
        constraint_plan = audit_plan.plans[index]
        sharded = shard_constraint_plan(constraint_plan, shard_index,
                                        shard_count)
        if sharded is None:
            # No shardable body enumeration: shard 0 audits it whole.
            if shard_index != 0:
                continue
            sharded = constraint_plan
        # A sharded clause collects *all* its shard's violations even
        # under a cap: capping per shard would make the merged,
        # sorted, re-truncated set depend on the worker count.  The
        # cap still applies to clauses one shard audits whole.
        limit = limit_per_clause if sharded is constraint_plan else None
        for violation in clause_violations(
                instance, clause, limit,
                matcher=matcher, plan=sharded, columnar=columnar):
            found.append((index, violation))
    counters = (audit_plan.planned_bodies, audit_plan.planned_heads,
                audit_plan.prebuilt_indexes,
                pool.builds - baseline[0], pool.lookups - baseline[1],
                pool.hits - baseline[2], pool.misses - baseline[3])
    return found, counters


def _audit_shard(envelope: AuditEnvelope):
    """Audit one shard (self-contained envelope)."""
    return _run_audit_shard(envelope.constraints, envelope.instance,
                            envelope.shard_index, envelope.shard_count,
                            envelope.limit_per_clause,
                            audit_plan=envelope.plan,
                            columnar=envelope.columnar)


def _audit_shard_from_payload(coordinates: Tuple[int, int]):
    """Audit one shard against the process-wide installed payload."""
    constraints, instance, limit_per_clause, plan, columnar = \
        _WORKER_PAYLOAD
    return _run_audit_shard(constraints, instance, *coordinates,
                            limit_per_clause, audit_plan=plan,
                            columnar=columnar)


def audit_parallel(constraints: Iterable[Clause], instance: Instance,
                   workers: int,
                   limit_per_clause: Optional[int] = None,
                   use_processes: bool = True,
                   columnar: bool = True) -> ParallelAuditResult:
    """Audit a constraint family across ``workers`` shards.

    The parent plans the audit once and ships the plan; each worker
    restricts every constraint's body enumeration to its shard and
    reports its violations, and the shards' sets union.  With
    ``limit_per_clause`` shards collect uncapped and the merged,
    textually-sorted list is truncated, so the reported subset is
    deterministic *and independent of the worker count* (though not
    the same subset a capped sequential audit happens to meet first —
    pass ``None``, as the differential tests do, for exact set
    equality with a sequential ``limit_per_clause=None`` audit).
    """
    family = tuple(constraints)
    if workers < 1:
        raise ValueError("parallel worker count must be >= 1")
    shard_count = int(workers)
    audit_plan = plan_audit(family, instance)
    if shard_count == 1 or not use_processes:
        shard_results = [
            _audit_shard(AuditEnvelope(family, instance, index,
                                       shard_count, limit_per_clause,
                                       plan=audit_plan,
                                       columnar=columnar))
            for index in range(shard_count)]
    else:
        with ProcessPoolExecutor(
                max_workers=shard_count,
                initializer=_install_payload,
                initargs=(family, instance, limit_per_clause,
                          audit_plan, columnar)) as pool:
            shard_results = list(pool.map(
                _audit_shard_from_payload,
                [(index, shard_count) for index in range(shard_count)]))
    merged: Dict[int, List[Violation]] = {}
    result = ParallelAuditResult(violations_by_clause=merged)
    for found, counters in shard_results:
        for index, violation in found:
            merged.setdefault(index, []).append(violation)
        result.shards_run += 1
        # Planning is deterministic, so the planner counters agree
        # across shards; the index activity is genuinely per-shard.
        result.planned_bodies = counters[0]
        result.planned_heads = counters[1]
        result.prebuilt_indexes = counters[2]
        result.indexes_built += counters[3]
        result.index_lookups += counters[4]
        result.index_hits += counters[5]
        result.index_misses += counters[6]
    for index, violations in merged.items():
        violations.sort(key=str)
        if limit_per_clause is not None:
            del violations[limit_per_clause:]
    return result


__all__ = [
    "AuditEnvelope", "ParallelAuditResult", "TransformEnvelope",
    "audit_parallel", "execute_parallel",
]
