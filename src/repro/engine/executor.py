"""One-pass execution of normal-form WOL programs (paper Section 5).

A normal-form transformation program "can easily be implemented in a single
pass" because every clause reads only source classes and completely
describes a target insert.  The executor:

1. enumerates body solutions with the shared conjunctive matcher
   (:class:`repro.semantics.match.Matcher`) over the source instance;
2. evaluates each head: Skolem identities become keyed object identities
   (idempotent creation), attribute assignments accumulate on the keyed
   objects, set-valued attributes collect inserted elements;
3. detects *conflicts* (two firings disagreeing on an attribute value —
   the program is not functional) and, at freeze time, *incompleteness*
   (an object missing required attributes — the program is not complete,
   Section 3.2).

Two body-evaluation paths exist.  The **planned** path
(:meth:`Executor.run_program` with ``use_planner``, the production
default through :class:`repro.morphase.system.Morphase`) plans the whole
program once via :mod:`repro.engine.planner`: per clause a fixed atom
order compiled into plan steps, and across clauses one shared, prebuilt
index pool — no per-binding atom re-classification, no per-matcher lazy
index builds.  The **naive** path runs each clause through the dynamic
matcher independently; it is kept both as the fallback for clauses the
planner cannot order statically and as the oracle in differential tests
(planned and naive execution must produce identical target instances).

The executor is deliberately independent of the normaliser: any program
whose clause bodies mention only source classes can be run, which is what
lets tests compare direct execution against the WOL->CPL->interpreter path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from ..lang.ast import (
    Clause, EqAtom, InAtom, MemberAtom, Program, Proj, SkolemTerm, Term, Var)
from ..model.instance import Instance, InstanceBuilder, InstanceError
from ..model.schema import Schema
from ..model.types import RecordType, SetType
from ..model.values import Oid, Record, Value, WolSet, format_value
from ..obs.metrics import publish_engine_stats
from ..obs.trace import span
from ..semantics.eval import Binding, EvalError, evaluate
from ..semantics.match import IndexPool, Matcher
from .planner import JoinPlan, ProgramPlan, plan_program, shard_join_plan


class ExecutionError(Exception):
    """Raised on conflicting or ill-formed inserts."""


#: Primitive head-effect kinds (the unit of incremental maintenance).
EFFECT_CREATE = "create"
EFFECT_SET = "set"
EFFECT_INSERT = "insert"

#: One primitive consequence of a clause firing:
#: ``(EFFECT_CREATE, oid)``, ``(EFFECT_SET, oid, attr, value)`` or
#: ``(EFFECT_INSERT, oid, attr, element)``.  Effects are hashable, so the
#: incremental engine (:mod:`repro.engine.incremental`) can count them.
Effect = Tuple


@dataclass
class ExecutionStats:
    """Counters for one execution run (benchmark E5 reads these).

    The planner-related counters describe how the bodies were evaluated:
    ``clauses_planned`` clauses ran on a precompiled :class:`JoinPlan`
    (the rest fell back to the dynamic matcher), ``atoms_reordered`` body
    atoms were moved from their textual position, and the index counters
    mirror the shared :class:`~repro.semantics.match.IndexPool` —
    ``scans_avoided`` is the number of extent scans replaced by hash
    probes, split into ``index_hits`` (probe produced candidates) and
    ``index_misses`` (probe proved no candidate exists).
    """

    clauses_run: int = 0
    bindings_found: int = 0
    objects_created: int = 0
    attributes_set: int = 0
    elapsed_seconds: float = 0.0
    clauses_planned: int = 0
    atoms_reordered: int = 0
    indexes_built: int = 0
    index_hits: int = 0
    index_misses: int = 0
    scans_avoided: int = 0
    #: Vectorized execution (:mod:`repro.engine.columnar`): plan steps
    #: run as whole-batch array operations vs. steps that fell back to
    #: the scalar path, total rows entering vectorized steps, and the
    #: largest batch seen (0s whenever ``columnar`` is off).
    vectorized_steps: int = 0
    fallback_steps: int = 0
    vectorized_rows: int = 0
    max_batch_rows: int = 0
    #: Parallel execution only: shards executed and worker processes
    #: used (0/0 on the sequential paths).  The additive counters above
    #: are summed across shards, so e.g. ``bindings_found`` still equals
    #: the sequential run's count.
    shards_run: int = 0
    parallel_workers: int = 0

    def add(self, other: "ExecutionStats") -> None:
        """Accumulate another run's additive counters into this one.

        ``elapsed_seconds`` is *not* summed — for a parallel run the
        caller records wall-clock time, not the sum of per-shard times.
        """
        self.clauses_run += other.clauses_run
        self.bindings_found += other.bindings_found
        self.objects_created += other.objects_created
        self.attributes_set += other.attributes_set
        self.clauses_planned += other.clauses_planned
        self.atoms_reordered += other.atoms_reordered
        self.indexes_built += other.indexes_built
        self.index_hits += other.index_hits
        self.index_misses += other.index_misses
        self.scans_avoided += other.scans_avoided
        self.vectorized_steps += other.vectorized_steps
        self.fallback_steps += other.fallback_steps
        self.vectorized_rows += other.vectorized_rows
        self.max_batch_rows = max(self.max_batch_rows,
                                  other.max_batch_rows)


@dataclass
class _PendingObject:
    class_name: str
    oid: Oid
    attributes: Dict[str, Value] = field(default_factory=dict)
    set_attributes: Dict[str, Set[Value]] = field(default_factory=dict)
    provenance: Dict[str, str] = field(default_factory=dict)


class Executor:
    """Runs source-only clauses against a source instance.

    ``use_planner`` selects the planned path for :meth:`run_program`:
    the program is planned once (fixed atom orders, shared prebuilt
    index pool) and every plannable clause streams bindings from its
    precompiled steps.  ``index_pool`` injects a pool shared beyond this
    executor (e.g. across repeated runs over the same source).

    ``shard`` (a ``(shard_index, shard_count)`` pair) turns this
    executor into one worker of a parallel run: each clause's join plan
    is recompiled with its driving generator restricted to the shard's
    oids (:func:`repro.engine.planner.shard_join_plan`), and clauses
    that cannot be sharded — no driving generator, or no static plan at
    all — run *whole on shard 0 only*, so across all shards every
    clause solution is enumerated exactly once.  The resulting pending
    stores merge through :meth:`absorb`.
    """

    def __init__(self, source: Instance, target_schema: Schema,
                 use_planner: bool = False,
                 index_pool: Optional[IndexPool] = None,
                 shard: Optional[Tuple[int, int]] = None,
                 columnar: bool = True) -> None:
        self.source = source
        self.target_schema = target_schema
        self.use_planner = use_planner
        self.shard = shard
        #: Vectorized plan execution (applies to planned clauses only;
        #: the dynamic fallback is always object-at-a-time).  Off, the
        #: scalar ``run_plan`` path serves as the differential oracle.
        self.columnar = columnar
        self._matcher = Matcher(source, index_pool=index_pool)
        self._pending: Dict[Oid, _PendingObject] = {}
        #: Pending objects per class — lets the batched head prove "no
        #: object of this class exists yet" in O(1) for its fused
        #: create-and-assign fast path.
        self._pending_classes: Dict[str, int] = {}
        self.stats = ExecutionStats()

    # ------------------------------------------------------------------
    def run_program(self, program: Iterable[Clause],
                    plan: Optional[ProgramPlan] = None) -> "Executor":
        """Execute a whole program, planning it once when enabled.

        ``plan`` supplies a precomputed :class:`ProgramPlan` (its pool
        replaces the matcher's); otherwise one is computed here when the
        executor was built with ``use_planner``.  Clauses without a join
        plan fall back to the dynamic per-clause path.
        """
        start = time.perf_counter()
        clauses = list(program)
        baseline = self._pool_snapshot()
        if plan is None and self.use_planner:
            # Planning here is part of this run: its prebuilds count.
            plan = plan_program(clauses, self.source,
                                pool=self._matcher.pool)
        if plan is not None and plan.pool is not self._matcher.pool:
            # An externally planned pool may be shared across runs; only
            # activity from this point on belongs to this run's stats.
            self._matcher.pool = plan.pool
            baseline = self._pool_snapshot()
        for clause in clauses:
            join_plan = plan.plan_for(clause) if plan else None
            if self.shard is not None:
                shard_index, shard_count = self.shard
                if join_plan is not None:
                    sharded = shard_join_plan(join_plan, shard_index,
                                              shard_count)
                    if sharded is not None:
                        join_plan = sharded
                    elif shard_index != 0:
                        continue  # unshardable clause: shard 0 owns it
                elif shard_index != 0:
                    continue  # dynamic-fallback clause: shard 0 owns it
            self.run_clause(clause, join_plan)
        self._sync_index_stats(baseline)
        self.stats.elapsed_seconds += time.perf_counter() - start
        publish_engine_stats(self.engine_label(plan), self.stats)
        return self

    def engine_label(self, plan: Optional[ProgramPlan] = None) -> str:
        """Which execution engine this run used (metrics label)."""
        planned = plan is not None or self.use_planner
        if self.shard is not None:
            return "parallel"
        if planned and self.columnar:
            return "columnar"
        return "planned" if planned else "naive"

    def run_clause(self, clause: Clause,
                   join_plan: Optional[JoinPlan] = None) -> None:
        """Execute one normal-form clause.

        Without ``join_plan`` this is the naive path: the dynamic matcher
        re-derives the atom order per binding (kept as the differential
        oracle).  With a plan, bindings stream from the precompiled steps.
        """
        self._check_source_only(clause)
        plan = _HeadPlan(clause, self.target_schema)
        self.stats.clauses_run += 1
        mode = ("columnar" if join_plan is not None and self.columnar
                else "planned" if join_plan is not None else "dynamic")
        before = self.stats.bindings_found
        with span(f"clause {clause.name or clause}",
                  mode=mode) as clause_span:
            if join_plan is not None:
                self.stats.clauses_planned += 1
                self.stats.atoms_reordered += join_plan.atoms_reordered
                if self.columnar:
                    self._run_clause_columnar(clause, plan, join_plan)
                    clause_span.set(
                        rows=self.stats.bindings_found - before)
                    return
                bindings = self._matcher.run_plan(join_plan.steps)
            else:
                bindings = self._matcher.solutions(clause.body)
            for binding in bindings:
                self.stats.bindings_found += 1
                self._apply_head(plan, binding, clause)
            clause_span.set(rows=self.stats.bindings_found - before)

    def _run_clause_columnar(self, clause: Clause, plan: "_HeadPlan",
                             join_plan: JoinPlan) -> None:
        """Vectorized clause execution: body as batch stages, head
        effects applied column-wise.

        The head path is *optimistic*: identity, assignment, insertion
        and check terms are evaluated as whole columns and applied
        row-major (preserving the scalar conflict-detection order).  On
        any anomaly a column cannot express — a failed evaluation, a
        non-oid identity, a failed check — the batch replays row by row
        through the scalar :func:`head_effects`, so errors surface with
        exactly the scalar message at exactly the scalar position.
        """
        from ..semantics.match import STEP_EQ_BIND
        from .columnar import run_steps_columnar
        # The head reads exactly these variables (``head_effects``'s
        # evaluation surface); every other binding column is dead after
        # the body and gets dropped between stages.
        needed = set(plan.created)
        for var, skolem in plan.identity_order:
            needed.add(var)
            needed |= skolem.variables()
        for var, _attr, term in plan.assignments:
            needed.add(var)
            needed |= term.variables()
        for var, _attr, term in plan.insertions:
            needed.add(var)
            needed |= term.variables()
        for check in plan.checks:
            needed |= check.variables()
        names, columns, count = run_steps_columnar(
            self._matcher, join_plan.steps, {}, 1, self.stats,
            needed=frozenset(needed))
        self.stats.bindings_found += count
        if count == 0:
            return
        label = clause.name or str(clause)
        # Identity variables the body already bound by evaluating the
        # *same* Skolem term need no head recompute-and-compare: the
        # columns are definitionally equal.
        trusted = {
            step.pattern_term.name for step in join_plan.steps
            if step.mode == STEP_EQ_BIND
            and isinstance(step.pattern_term, Var)
            and isinstance(step.eval_term, SkolemTerm)}
        trusted = {var for var, skolem in plan.identity_order
                   if var in trusted and any(
                       step.mode == STEP_EQ_BIND
                       and isinstance(step.pattern_term, Var)
                       and step.pattern_term.name == var
                       and step.eval_term == skolem
                       for step in join_plan.steps)}
        # Head terms compile against the same class typing the body
        # derived (membership-bound vars), so head projections gather
        # from attribute columns and reuse the hidden row columns the
        # scans threaded through.
        var_class = {
            step.atom.element.name: step.atom.class_name
            for step in join_plan.steps
            if isinstance(step.atom, MemberAtom)
            and isinstance(step.atom.element, Var)}
        if not self._apply_heads_batch(plan, columns, count, label,
                                       trusted=trusted,
                                       var_class=var_class):
            # Liveness filtering may have dropped columns `names`
            # mentions; the surviving ones are exactly what the head
            # reads, so replay bindings from the batch itself.
            for row in range(count):
                binding = {name: column[row]
                           for name, column in columns.items()}
                self._apply_head(plan, binding, clause)

    def _apply_heads_batch(self, plan: "_HeadPlan", columns: Mapping,
                           count: int, label: str,
                           trusted: Optional[Set[str]] = None,
                           var_class: Optional[Dict[str, str]] = None
                           ) -> bool:
        """Apply a whole batch of head effects; False = replay scalar.

        Every anomaly the scalar path reports with an error — a failed
        evaluation, an identity mismatch, an unknown target class, a
        functionality conflict — is detected *before* any attribute is
        written, so a False return leaves the pending attributes
        untouched and the scalar replay raises exactly the scalar
        error at exactly the scalar position.  (Pending *objects* may
        already exist by then: creation is idempotent and observable
        only through the class check, which is part of the precheck.)
        """
        from ..semantics.columns import MISSING
        from .columnar import compile_term
        matcher = self._matcher
        local: Dict[str, List[Value]] = dict(columns)

        def evaluate_column(term: Term) -> Optional[List[Value]]:
            try:
                column = compile_term(term, matcher, var_class)(local, count)
            except NotImplementedError:
                return None
            if MISSING in column:  # identity-first C scan, no genexpr
                return None
            return column

        for var, skolem in plan.identity_order:
            if trusted and var in trusted:
                continue  # body bound it from the identical Skolem term
            column = evaluate_column(skolem)
            if column is None:
                return False
            existing = local.get(var)
            if existing is not None and existing != column:
                return False  # identity mismatch somewhere in the batch
            local[var] = column

        has_class = self.target_schema.has_class
        # A subject column is scanned for validity at most once even
        # when several attributes write through it (same list object).
        valid_subjects: Set[int] = set()

        def subjects_ok(column: List[Value]) -> bool:
            if id(column) in valid_subjects:
                return True
            if any(not isinstance(oid, Oid) or not has_class(oid.class_name)
                   for oid in column):
                return False
            valid_subjects.add(id(column))
            return True

        creates: List[List[Value]] = []
        for var, class_name in plan.created.items():
            column = local.get(var)
            if column is None or any(
                    not isinstance(oid, Oid) or oid.class_name != class_name
                    for oid in column):
                return False
            if has_class(class_name):
                valid_subjects.add(id(column))
            creates.append(column)

        assignments: List[Tuple[List[Value], str, List[Value]]] = []
        for var, attr, value_term in plan.assignments:
            subjects = local.get(var)
            if subjects is None or not subjects_ok(subjects):
                return False
            column = evaluate_column(value_term)
            if column is None:
                return False
            assignments.append((subjects, attr, column))
        # Two entries writing the same attribute could conflict across
        # columns; the per-entry conflict scan below would miss that.
        attrs = [attr for _, attr, _ in assignments]
        if len(set(attrs)) != len(attrs):
            return False

        insertions: List[Tuple[List[Value], str, List[Value]]] = []
        for var, attr, element_term in plan.insertions:
            subjects = local.get(var)
            if subjects is None or not subjects_ok(subjects):
                return False
            column = evaluate_column(element_term)
            if column is None:
                return False
            insertions.append((subjects, attr, column))

        for check in plan.checks:
            lefts = evaluate_column(check.left)
            rights = evaluate_column(check.right)
            if lefts is None or rights is None or lefts != rights:
                return False

        class_counts = self._pending_classes
        # Fused fast path for the dominant head shape: one created
        # class nothing has touched yet, every assignment through the
        # created variable, no insertions or residual checks.  Each row
        # then builds its finished pending object — identity, all
        # attributes, provenance — in a single pass into a side dict.
        # Duplicate subjects collapse in that dict, so a length mismatch
        # at the end detects them before anything is published, and the
        # generic (conflict-scanned) path below takes over untouched.
        if (len(plan.created) == 1 and not insertions and not plan.checks
                and 1 <= len(assignments) <= 4):
            (created_var, created_class), = plan.created.items()
            subjects0 = local[created_var]
            if (all(subjects is subjects0 for subjects, _, _ in assignments)
                    and class_counts.get(created_class, 0) == 0):
                new = object.__new__
                pending_cls = _PendingObject
                fresh: Dict[Oid, _PendingObject] = {}
                attrs = [attr for _, attr, _ in assignments]
                value_columns = [column for _, _, column in assignments]
                if len(assignments) == 1:
                    a1, = attrs
                    c1, = value_columns
                    for oid, v1 in zip(subjects0, c1):
                        pending = new(pending_cls)
                        state = pending.__dict__
                        state["class_name"] = created_class
                        state["oid"] = oid
                        state["attributes"] = {a1: v1}
                        state["set_attributes"] = {}
                        state["provenance"] = {a1: label}
                        fresh[oid] = pending
                elif len(assignments) == 2:
                    a1, a2 = attrs
                    c1, c2 = value_columns
                    for oid, v1, v2 in zip(subjects0, c1, c2):
                        pending = new(pending_cls)
                        state = pending.__dict__
                        state["class_name"] = created_class
                        state["oid"] = oid
                        state["attributes"] = {a1: v1, a2: v2}
                        state["set_attributes"] = {}
                        state["provenance"] = {a1: label, a2: label}
                        fresh[oid] = pending
                elif len(assignments) == 3:
                    a1, a2, a3 = attrs
                    c1, c2, c3 = value_columns
                    for oid, v1, v2, v3 in zip(subjects0, c1, c2, c3):
                        pending = new(pending_cls)
                        state = pending.__dict__
                        state["class_name"] = created_class
                        state["oid"] = oid
                        state["attributes"] = {a1: v1, a2: v2, a3: v3}
                        state["set_attributes"] = {}
                        state["provenance"] = {a1: label, a2: label,
                                               a3: label}
                        fresh[oid] = pending
                else:
                    a1, a2, a3, a4 = attrs
                    c1, c2, c3, c4 = value_columns
                    for oid, v1, v2, v3, v4 in zip(subjects0, c1, c2, c3,
                                                   c4):
                        pending = new(pending_cls)
                        state = pending.__dict__
                        state["class_name"] = created_class
                        state["oid"] = oid
                        state["attributes"] = {a1: v1, a2: v2, a3: v3,
                                               a4: v4}
                        state["set_attributes"] = {}
                        state["provenance"] = {a1: label, a2: label,
                                               a3: label, a4: label}
                        fresh[oid] = pending
                if len(fresh) != count:
                    # Duplicate subjects collapsed in the dict: later
                    # occurrences overwrote earlier pendings, which is
                    # only sound if every row agrees with its subject's
                    # surviving values.  Verify before publishing; a
                    # disagreement is a functionality conflict, and
                    # nothing has been published yet, so the scalar
                    # replay raises the canonical error.
                    fresh_get = fresh.get
                    for row_values in zip(subjects0, *value_columns):
                        attributes = fresh_get(row_values[0]).attributes
                        for attr, value in zip(attrs, row_values[1:]):
                            prev = attributes[attr]
                            if prev is not value and prev != value:
                                return False
                self._pending.update(fresh)
                class_counts[created_class] = len(fresh)
                self.stats.objects_created += len(fresh)
                self.stats.attributes_set += count * len(assignments)
                return True

        # Materialise every pending object column-wise (idempotent, so
        # safe before the conflict scan; class validity is prechecked).
        # Each distinct subject column resolves to its pending objects
        # exactly once.  Identity columns intern their oids (the skolem
        # stages hand every duplicate key the same object), so the
        # id()-keyed memo turns the per-row probe into an int hash and
        # the value-hashing pending-store lookup runs once per *unique*
        # oid, not once per row.
        pending_map = self._pending
        new_objects = 0
        resolved_columns: Dict[int, List[_PendingObject]] = {}
        # Subject columns proven to hold pairwise-distinct oids that
        # did not exist before this batch.  Their pendings have no
        # attributes yet and no row shares a subject, so writes through
        # them need no conflict scan at all (the dominant case: heads
        # creating one object per binding).
        fresh_columns: Set[int] = set()
        by_identity: Dict[int, _PendingObject] = {}
        new = object.__new__
        pending_cls = _PendingObject

        def resolve(column: List[Value]) -> List[_PendingObject]:
            nonlocal new_objects
            pendings = resolved_columns.get(id(column))
            if pendings is not None:
                return pendings
            pendings = []
            append = pendings.append
            get = pending_map.get
            memo_get = by_identity.get
            fresh = True
            for oid in column:
                pending = memo_get(id(oid))
                if pending is None:
                    pending = get(oid)
                    if pending is None:
                        pending = new(pending_cls)
                        state = pending.__dict__
                        state["class_name"] = oid.class_name
                        state["oid"] = oid
                        state["attributes"] = {}
                        state["set_attributes"] = {}
                        state["provenance"] = {}
                        pending_map[oid] = pending
                        class_counts[oid.class_name] = (
                            class_counts.get(oid.class_name, 0) + 1)
                        new_objects += 1
                    else:
                        fresh = False  # pre-existing object
                    by_identity[id(oid)] = pending
                else:
                    fresh = False  # duplicate subject within the batch
                append(pending)
            resolved_columns[id(column)] = pendings
            if fresh:
                fresh_columns.add(id(pendings))
            return pendings

        for column in creates:
            resolve(column)
        assignments = [(resolve(subjects), attr, column)
                       for subjects, attr, column in assignments]
        insertions = [(resolve(subjects), attr, column)
                      for subjects, attr, column in insertions]
        self.stats.objects_created += new_objects

        # Functionality conflict scan — within the batch and against
        # attributes earlier clauses derived.  Nothing has been written
        # yet, so a conflict can still hand the whole batch to the
        # scalar replay for the canonical error.  The scan collects one
        # (pending, value) pair per distinct subject in passing: rows
        # sharing a subject were just proved to agree, so the apply
        # phase below writes each attribute once per object instead of
        # once per row (the scalar path's duplicate writes are no-ops).
        writes: List[Tuple[str, List[Tuple[_PendingObject, Value]]]] = []
        for pendings, attr, column in assignments:
            if id(pendings) in fresh_columns:
                # Distinct, newly created subjects: nothing to conflict
                # with, inside the batch or out of it.
                writes.append((attr, list(zip(pendings, column))))
                continue
            seen: Dict[int, Value] = {}
            seen_get = seen.get
            unique: List[Tuple[_PendingObject, Value]] = []
            keep = unique.append
            for pending, value in zip(pendings, column):
                prev = seen_get(id(pending))
                if prev is None:
                    existing = pending.attributes.get(attr)
                    if (existing is not None and existing is not value
                            and existing != value):
                        return False
                    seen[id(pending)] = value
                    keep((pending, value))
                elif prev is not value and prev != value:
                    return False
            writes.append((attr, unique))

        # Apply.  The precheck proved no effect can fail, so the
        # column-major order is observationally identical to the scalar
        # row-major order.  ``attributes_set`` still counts every row —
        # the scalar path counts its duplicate writes too.
        attributes_set = 0
        for (attr, unique), (_, _, column) in zip(writes, assignments):
            for pending, value in unique:
                pending.attributes[attr] = value
                pending.provenance[attr] = label
            attributes_set += len(column)
        for pendings, attr, column in insertions:
            elements_of: Dict[int, Set[Value]] = {}
            elements_get = elements_of.get
            for pending, value in zip(pendings, column):
                elements = elements_get(id(pending))
                if elements is None:
                    elements = pending.set_attributes.get(attr)
                    if elements is None:
                        elements = set()
                        pending.set_attributes[attr] = elements
                    elements_of[id(pending)] = elements
                elements.add(value)
            attributes_set += len(column)
        self.stats.attributes_set += attributes_set
        return True

    def _pool_snapshot(self) -> Tuple[int, int, int, int]:
        pool = self._matcher.pool
        return (pool.builds, pool.hits, pool.misses, pool.lookups)

    def _sync_index_stats(self, baseline: Tuple[int, int, int, int]
                          ) -> None:
        """Add this run's pool activity to the stats.

        The pool may be shared across executors (injected pool, reused
        plan), so the stats record the *delta* over this run, not the
        pool's lifetime counters.  Indexes prebuilt by the planner before
        the run belong to planning and are visible on the plan's pool,
        not here.
        """
        builds, hits, misses, lookups = baseline
        pool = self._matcher.pool
        self.stats.indexes_built += pool.builds - builds
        self.stats.index_hits += pool.hits - hits
        self.stats.index_misses += pool.misses - misses
        self.stats.scans_avoided += pool.lookups - lookups

    def _check_source_only(self, clause: Clause) -> None:
        source_classes = set(self.source.schema.class_names())
        for atom in clause.body:
            if (isinstance(atom, MemberAtom)
                    and atom.class_name not in source_classes):
                raise ExecutionError(
                    f"clause {clause.name or clause}: body mentions "
                    f"non-source class {atom.class_name}; not in normal "
                    f"form")

    # ------------------------------------------------------------------
    def _apply_head(self, plan: "_HeadPlan", binding: Binding,
                    clause: Clause) -> None:
        label = clause.name or str(clause)
        for effect in head_effects(plan, binding, self.source, label):
            kind = effect[0]
            if kind == EFFECT_CREATE:
                self._ensure_object(effect[1])
            elif kind == EFFECT_SET:
                self._set_attribute(effect[1], effect[2], effect[3], label)
            else:
                assert kind == EFFECT_INSERT
                pending = self._ensure_object(effect[1])
                pending.set_attributes.setdefault(effect[2],
                                                  set()).add(effect[3])
                self.stats.attributes_set += 1

    # ------------------------------------------------------------------
    # Shard merging (parallel execution)
    # ------------------------------------------------------------------
    def pending_export(self) -> Dict[Oid, _PendingObject]:
        """This executor's pending store, for cross-process transfer.

        Every piece is a plain picklable value; a worker returns this
        and the coordinating process replays it through :meth:`absorb`.
        """
        return self._pending

    def adopt(self, pending: Mapping[Oid, _PendingObject]) -> None:
        """Take over pending objects no other shard contributed to.

        The parallel merge uses this fast path for the (typical) case
        of an object derived entirely within one shard: there is
        nothing to reconcile, so the whole pending record moves across
        instead of being replayed attribute by attribute.  The caller
        guarantees the oids are absent from this executor's store —
        cross-shard objects must go through :meth:`absorb`, which
        checks agreement.
        """
        for oid, remote in pending.items():
            if not self.target_schema.has_class(oid.class_name):
                raise ExecutionError(
                    f"object {oid} belongs to no target class")
            if oid in self._pending:
                # Overwriting would silently drop the earlier shard's
                # contributions; absorb() is the reconciling path.
                raise ExecutionError(
                    f"adopt() would overwrite pending object {oid}; "
                    f"cross-shard objects must merge through absorb()")
            self._pending[oid] = remote
            self.stats.objects_created += 1

    def absorb(self, pending: Mapping[Oid, _PendingObject]) -> None:
        """Merge another executor's pending store into this one.

        Replays the remote store through the same accumulation rules a
        local clause firing uses: object creation is idempotent,
        attribute assignments must agree (a disagreement raises
        :class:`ExecutionError` exactly as it would had both firings
        happened in one sequential run), and set insertions union.
        Merging all shards of a parallel run therefore reconstructs the
        sequential pending store — :meth:`freeze` then assembles a
        byte-identical target.
        """
        for oid, remote in pending.items():
            local = self._ensure_object(oid)
            for attr, value in remote.attributes.items():
                self._set_attribute(oid, attr, value,
                                    remote.provenance.get(attr, "?"))
            for attr, elements in remote.set_attributes.items():
                local.set_attributes.setdefault(attr,
                                                set()).update(elements)

    def provenance(self) -> Dict[Oid, Dict[str, str]]:
        """Which clause derived each attribute of each pending object.

        Normal-form clause names encode their ancestry (e.g. ``T1+T3``),
        so this answers "where did this value come from?" for debugging
        transformation programs.
        """
        return {oid: dict(pending.provenance)
                for oid, pending in self._pending.items()}

    def explain(self, oid: Oid) -> str:
        """A human-readable derivation summary for one object."""
        pending = self._pending.get(oid)
        if pending is None:
            return f"{oid}: not derived by this execution"
        lines = [f"{oid}:"]
        for attr in sorted(set(pending.attributes)
                           | set(pending.set_attributes)):
            source = pending.provenance.get(attr, "<set accumulation>")
            lines.append(f"  .{attr} from clause {source}")
        return "\n".join(lines)

    def _ensure_object(self, oid: Oid) -> _PendingObject:
        pending = self._pending.get(oid)
        if pending is None:
            if not self.target_schema.has_class(oid.class_name):
                raise ExecutionError(
                    f"object {oid} belongs to no target class")
            pending = _PendingObject(oid.class_name, oid)
            self._pending[oid] = pending
            self._pending_classes[oid.class_name] = (
                self._pending_classes.get(oid.class_name, 0) + 1)
            self.stats.objects_created += 1
        return pending

    def _set_attribute(self, oid: Oid, attr: str, value: Value,
                       label: str) -> None:
        pending = self._ensure_object(oid)
        existing = pending.attributes.get(attr)
        if existing is not None and existing != value:
            raise ExecutionError(
                f"conflict on {oid}.{attr}: clause {label} derives "
                f"{format_value(value)} but clause "
                f"{pending.provenance.get(attr, '?')} derived "
                f"{format_value(existing)} (the program is not functional)")
        pending.attributes[attr] = value
        pending.provenance[attr] = label
        self.stats.attributes_set += 1

    # ------------------------------------------------------------------
    def freeze(self, validate: bool = True,
               defaults: Optional[Mapping[Tuple[str, str], Value]] = None
               ) -> Instance:
        """Assemble the target instance.

        With ``validate`` the result is checked for well-formedness; an
        object with missing attributes indicates an *incomplete*
        transformation program (Section 3.2) and raises
        :class:`ExecutionError` with the missing pieces listed.

        ``defaults`` maps ``(class, attribute)`` to a fill-in value for
        attributes no clause derived — the paper's "insert a default
        value for the attribute wherever it is omitted" reading of an
        optional-to-required schema change (Section 1).  WOL itself
        cannot express absence (no negation), so the default is applied
        here, after all clauses have run.
        """
        defaults = dict(defaults or {})
        with span("freeze", objects=len(self._pending)):
            builder = InstanceBuilder(self.target_schema)
            incomplete: List[str] = []
            for oid, pending in sorted(self._pending.items(),
                                       key=lambda i: str(i[0])):
                ctype = self.target_schema.class_type(pending.class_name)
                value, missing = assemble_target_value(
                    pending.class_name, oid, ctype, pending.attributes,
                    pending.set_attributes, defaults)
                if value is None:
                    incomplete.append(
                        f"{oid}: missing attributes {missing}")
                    continue
                builder.put(oid, value)
            if incomplete and validate:
                raise ExecutionError(
                    "incomplete transformation (the program does not "
                    "fully describe these objects): "
                    + "; ".join(incomplete))
            instance = builder.freeze(validate=False)
            if validate:
                try:
                    instance.validate()
                except InstanceError as exc:
                    raise ExecutionError(
                        f"transformation produced an ill-formed "
                        f"instance: {exc}") from exc
            return instance


def head_effects(plan: "_HeadPlan", binding: Binding, source: Instance,
                 label: str) -> List[Effect]:
    """The primitive effects of one clause firing under ``binding``.

    This is the single evaluation path for clause heads: the batch
    executor applies the effects to its pending store and the
    incremental engine counts them — both therefore create the same
    objects, set the same attributes and fail on the same inputs.
    Residual head checks are verified here and raise
    :class:`ExecutionError` when they fail.
    """
    effects: List[Effect] = []
    # 1. Evaluate identities for created objects (fixpoint order).
    local = dict(binding)
    for var, skolem in plan.identity_order:
        try:
            oid = evaluate(skolem, local, source)
        except EvalError as exc:
            raise ExecutionError(
                f"clause {label}: cannot evaluate identity "
                f"{skolem}: {exc}") from exc
        assert isinstance(oid, Oid)
        if var in local and local[var] != oid:
            raise ExecutionError(
                f"clause {label}: identity mismatch for {var}: body "
                f"binds {local[var]} but the head identity is {oid}")
        local[var] = oid

    # 2. Create objects.
    for var, class_name in plan.created.items():
        oid = local.get(var)
        if not isinstance(oid, Oid):
            raise ExecutionError(
                f"clause {label}: created object {var} has no "
                f"identity")
        if oid.class_name != class_name:
            raise ExecutionError(
                f"clause {label}: identity {oid} does not belong to "
                f"class {class_name}")
        effects.append((EFFECT_CREATE, oid))

    # 3. Assignments.
    for var, attr, value_term in plan.assignments:
        oid = local.get(var)
        if not isinstance(oid, Oid):
            raise ExecutionError(
                f"clause {label}: assignment to {var}.{attr} but "
                f"{var} is not an object")
        try:
            value = evaluate(value_term, local, source)
        except EvalError as exc:
            raise ExecutionError(
                f"clause {label}: cannot evaluate value of "
                f"{var}.{attr}: {exc}") from exc
        effects.append((EFFECT_SET, oid, attr, value))

    # 4. Set insertions.
    for var, attr, element_term in plan.insertions:
        oid = local.get(var)
        if not isinstance(oid, Oid):
            raise ExecutionError(
                f"clause {label}: insertion into {var}.{attr} but "
                f"{var} is not an object")
        try:
            element = evaluate(element_term, local, source)
        except EvalError as exc:
            raise ExecutionError(
                f"clause {label}: cannot evaluate element of "
                f"{var}.{attr}: {exc}") from exc
        effects.append((EFFECT_INSERT, oid, attr, element))

    # 5. Residual checks (equalities between evaluated values).
    for check in plan.checks:
        try:
            left = evaluate(check.left, local, source)
            right = evaluate(check.right, local, source)
        except EvalError as exc:
            raise ExecutionError(
                f"clause {label}: cannot evaluate head check "
                f"{check}: {exc}") from exc
        if left != right:
            raise ExecutionError(
                f"clause {label}: head check {check} failed "
                f"({format_value(left)} != {format_value(right)})")
    return effects


def assemble_target_value(class_name: str, oid: Oid, ctype,
                          attributes: Mapping[str, Value],
                          set_attributes: Mapping[str, Iterable[Value]],
                          defaults: Mapping[Tuple[str, str], Value]
                          ) -> Tuple[Optional[Value], List[str]]:
    """Assemble one target object's stored value from derived pieces.

    Returns ``(value, missing_attributes)``; ``value`` is None exactly
    when attributes are missing (an *incomplete* program, Section 3.2).
    Shared by :meth:`Executor.freeze` and the incremental engine so the
    two paths build byte-identical objects.
    """
    if not isinstance(ctype, RecordType):
        if list(attributes) != []:
            raise ExecutionError(
                f"{oid}: attribute assignments on non-record "
                f"class {class_name}")
        raise ExecutionError(
            f"class {class_name} has non-record type; "
            f"direct value inserts are not supported")
    fields = dict(attributes)
    for attr, elements in set_attributes.items():
        fields[attr] = WolSet(frozenset(elements))
    for label, fty in ctype.fields:
        if label not in fields and isinstance(fty, SetType):
            fields[label] = WolSet(frozenset())
    for label in ctype.labels():
        if label not in fields:
            filler = defaults.get((class_name, label))
            if filler is not None:
                fields[label] = filler
    missing = [label for label in ctype.labels() if label not in fields]
    if missing:
        return None, missing
    extra = [label for label in fields if not ctype.has_field(label)]
    if extra:
        raise ExecutionError(
            f"{oid}: attributes {extra} not in class type")
    return Record(tuple(fields.items())), []


class _HeadPlan:
    """Decomposition of a normal-form head into executable pieces."""

    def __init__(self, clause: Clause, target_schema: Schema) -> None:
        self.created: Dict[str, str] = {}
        identities: Dict[str, SkolemTerm] = {}
        self.assignments: List[Tuple[str, str, Term]] = []
        self.insertions: List[Tuple[str, str, Term]] = []
        self.checks: List[EqAtom] = []

        set_collectors: Dict[str, Tuple[str, str]] = {}

        for atom in clause.head:
            if isinstance(atom, MemberAtom):
                if not isinstance(atom.element, Var):
                    raise ExecutionError(
                        f"head membership with non-variable element: {atom}")
                if not target_schema.has_class(atom.class_name):
                    raise ExecutionError(
                        f"head creates object in unknown class "
                        f"{atom.class_name}")
                self.created[atom.element.name] = atom.class_name
            elif isinstance(atom, EqAtom):
                if (isinstance(atom.left, Var)
                        and isinstance(atom.right, SkolemTerm)):
                    identities[atom.left.name] = atom.right
                elif (isinstance(atom.right, Proj)
                        and isinstance(atom.right.subject, Var)):
                    subject = atom.right.subject.name
                    attr = atom.right.attr
                    # A pair  V = X.attr  plus  E in V  encodes insertion.
                    if isinstance(atom.left, Var):
                        set_collectors[atom.left.name] = (subject, attr)
                    self.assignments.append((subject, attr, atom.left))
                elif (isinstance(atom.left, Proj)
                        and isinstance(atom.left.subject, Var)):
                    self.assignments.append(
                        (atom.left.subject.name, atom.left.attr,
                         atom.right))
                else:
                    self.checks.append(atom)
            elif isinstance(atom, InAtom):
                if isinstance(atom.collection, Var) and (
                        atom.collection.name in set_collectors):
                    subject, attr = set_collectors[atom.collection.name]
                    self.insertions.append((subject, attr, atom.element))
                elif (isinstance(atom.collection, Proj)
                        and isinstance(atom.collection.subject, Var)):
                    self.insertions.append(
                        (atom.collection.subject.name,
                         atom.collection.attr, atom.element))
                else:
                    raise ExecutionError(
                        f"unsupported head insertion: {atom}")
            else:
                raise ExecutionError(
                    f"unsupported head atom in normal form: {atom}")

        # Remove assignment entries that were really set collectors.
        self.assignments = [
            (subject, attr, value) for subject, attr, value in self.assignments
            if not (isinstance(value, Var)
                    and value.name in set_collectors
                    and set_collectors[value.name] == (subject, attr)
                    and any(ins_subject == subject and ins_attr == attr
                            for ins_subject, ins_attr, _ in self.insertions))]

        # Identity evaluation order: an identity may reference another
        # created object (e.g. a keyed city embeds its keyed country).
        self.identity_order = _order_identities(identities, self.created)


def _order_identities(identities: Dict[str, SkolemTerm],
                      created: Dict[str, str]
                      ) -> List[Tuple[str, SkolemTerm]]:
    ordered: List[Tuple[str, SkolemTerm]] = []
    placed: Set[str] = set()
    remaining = dict(identities)
    for _ in range(len(identities) + 1):
        progressed = False
        for var, skolem in sorted(remaining.items()):
            depends = {name for name in skolem.variables()
                       if name in identities and name not in placed
                       and name != var}
            if not depends:
                ordered.append((var, skolem))
                placed.add(var)
                del remaining[var]
                progressed = True
        if not progressed:
            break
    if remaining:
        raise ExecutionError(
            f"cyclic identity dependencies among {sorted(remaining)}")
    return ordered


def execute(program: Program, source: Instance,
            target_schema: Schema, validate: bool = True,
            defaults: Optional[Mapping[Tuple[str, str], Value]] = None,
            use_planner: bool = False,
            plan: Optional[ProgramPlan] = None,
            columnar: bool = True
            ) -> Tuple[Instance, ExecutionStats]:
    """Run a normal-form program and return (target instance, stats).

    ``use_planner`` (or an explicit precomputed ``plan``) switches body
    evaluation to the planned path; ``columnar`` (on by default, only
    effective on planned runs) executes each planned clause as batch
    stages over whole binding columns.  The result is identical on
    every path.
    """
    executor = Executor(source, target_schema, use_planner=use_planner,
                        columnar=columnar)
    executor.run_program(program, plan=plan)
    return (executor.freeze(validate=validate, defaults=defaults),
            executor.stats)
