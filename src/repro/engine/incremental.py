"""Incremental, delta-driven execution and auditing (semi-naive).

The batch engine answers "what does the program derive from *this*
instance?"; this module answers "what changes when the instance
changes?" — the question the paper's Section 6 vision of transformation
programs in front of evolving databases turns into the hot path.

Core idea (semi-naive delta joins): a clause's solution set only changes
on bindings that *read* a changed object.  Every read during body
evaluation and head application starts at an object bound by a body
member atom and follows stored references, so the bindings to
re-derive are exactly those that bind a member atom to an object in the
delta **or to a transitive referrer of one** (an object whose stored
value chain reaches a changed object).  :class:`ReverseIndex` maintains
the referrer relation; for each clause the planner compiles one seeded
variant of its join plan per member atom
(:func:`repro.engine.planner.plan_delta_seeds`), which collapses that
atom to a membership test of the seed oid and joins the remaining atoms
through the shared, delta-maintained
:class:`~repro.semantics.match.IndexPool`.

:class:`IncrementalTransform` maintains a transformed target instance
under source deltas by counting each clause firing's primitive head
effects (:func:`repro.engine.executor.head_effects`): retracted bindings
decrement, new bindings increment, and only target objects whose counts
moved are re-assembled.  :class:`IncrementalAudit` maintains a
constraint-violation set the same way: new violations from inserted
body solutions, retracted violations from deleted ones, head-witness
rechecks when the delta could (un)satisfy existing heads.

Both engines fall back to a per-clause full recompute when seeding
cannot be exact (a member atom that is not a plain variable, or — for
audits — a delta that removes potential head witnesses).  The batch
path stays on as the differential oracle: incremental results are
identical to a full recompute on every workload, enforced by
``tests/engine/test_incremental.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Set, Tuple)

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import
    # cycle: evolution.operators builds on morphase, which imports the
    # engine package; deltas are plain data, so nothing here needs the
    # class at runtime)
    from ..evolution.delta import Delta

from ..lang.ast import (Clause, Const, EqAtom, InAtom, LeqAtom, LtAtom,
                        MemberAtom, NeqAtom, Proj, RecordTerm, SkolemTerm,
                        Term, Var, VariantTerm)
from ..model.types import (ClassType, ListType, RecordType, SetType, Type)
from ..model.values import type_of_base
from ..model.instance import Instance
from ..model.values import Oid, Value, ValueError_, check_value, oids_in
from ..obs.metrics import publish_engine_stats
from ..semantics.eval import Binding
from ..semantics.match import Matcher
from ..semantics.satisfaction import Violation, clause_violations
from .executor import (
    EFFECT_CREATE, EFFECT_SET, Effect, ExecutionError, _HeadPlan,
    assemble_target_value, head_effects)
from .planner import (AuditPlan, DeltaSeed, ProgramPlan, plan_audit,
                      plan_delta_seeds, plan_program)


class ReverseIndex:
    """Who stores a reference to whom: oid -> the oids whose value holds it.

    The read-set of any evaluation rooted at an object is that object
    plus everything reachable through stored references; inverting the
    reference relation therefore answers the incremental engine's key
    question — *which objects' derivations may a change to this object
    affect?* — as a transitive referrer closure.
    """

    def __init__(self, instance: Optional[Instance] = None) -> None:
        self._referrers: Dict[Oid, Set[Oid]] = {}
        if instance is not None:
            for cname in instance.schema.class_names():
                for oid in instance.objects_of(cname):
                    self._add_refs(oid, instance.value_of(oid))

    def _add_refs(self, oid: Oid, value: Value) -> None:
        for ref in oids_in(value):
            self._referrers.setdefault(ref, set()).add(oid)

    def _remove_refs(self, oid: Oid, value: Value) -> None:
        for ref in oids_in(value):
            holders = self._referrers.get(ref)
            if holders is not None:
                holders.discard(oid)
                if not holders:
                    del self._referrers[ref]

    def referrers(self, oid: Oid) -> frozenset:
        return frozenset(self._referrers.get(oid, ()))

    def closure(self, oids: Iterable[Oid]) -> Set[Oid]:
        """The given oids plus every transitive referrer of them."""
        seen: Set[Oid] = set(oids)
        queue = list(seen)
        while queue:
            current = queue.pop()
            for referrer in self._referrers.get(current, ()):
                if referrer not in seen:
                    seen.add(referrer)
                    queue.append(referrer)
        return seen

    def update_object(self, oid: Oid, old_value: Optional[Value],
                      new_value: Optional[Value]) -> None:
        """Replace one object's outgoing reference contributions."""
        if old_value is not None:
            self._remove_refs(oid, old_value)
        if new_value is not None:
            self._add_refs(oid, new_value)

    def apply_delta(self, old_instance: Instance, delta: Delta) -> None:
        """Maintain the relation across ``delta`` (old values looked up
        in ``old_instance``; new values read from the delta itself)."""
        for cname, oids in delta.deletes.items():
            for oid in oids:
                self._remove_refs(oid, old_instance.value_of(oid))
        for cname, objs in delta.updates.items():
            for oid, value in objs.items():
                self._remove_refs(oid, old_instance.value_of(oid))
                self._add_refs(oid, value)
        for cname, objs in delta.inserts.items():
            for oid, value in objs.items():
                self._add_refs(oid, value)


def _group_by_class(oids: Iterable[Oid]) -> Dict[str, List[Oid]]:
    grouped: Dict[str, List[Oid]] = {}
    for oid in sorted(oids, key=str):
        grouped.setdefault(oid.class_name, []).append(oid)
    return grouped


# ----------------------------------------------------------------------
# Static read-set analysis (attribute-level change pruning)
# ----------------------------------------------------------------------

class ClauseReads:
    """What a clause can observe of the instance, statically.

    ``attributes`` is the set of ``(class, attribute)`` pairs any
    evaluation of the clause may project from a stored object;
    ``member_classes`` the classes whose *extent membership* the clause
    tests or enumerates.  ``exact`` is False when some projection's
    subject could not be typed — the clause must then be treated as
    reading everything.

    The incremental engine uses this to skip seeding entirely for
    clauses that cannot observe a change: an update touching only
    attributes outside ``attributes`` (and no membership the clause
    sees) cannot alter the clause's solutions or head values.
    """

    def __init__(self, clause: Clause, class_type_of) -> None:
        self.exact = True
        self.attributes: Set[Tuple[str, str]] = set()
        self.member_classes: Set[str] = set()
        self._class_type_of = class_type_of
        atoms = list(clause.body) + list(clause.head)
        self._var_types: Dict[str, Type] = {}
        for _ in range(len(atoms) + 1):
            progressed = False
            for atom in atoms:
                progressed |= self._type_atom(atom)
            if not progressed:
                break
        for atom in atoms:
            if isinstance(atom, MemberAtom):
                self.member_classes.add(atom.class_name)
            for term in _atom_terms(atom):
                self._note_reads(term)

    # -- variable typing (fixpoint) ------------------------------------
    def _type_atom(self, atom) -> bool:
        progressed = False
        if isinstance(atom, MemberAtom) and isinstance(atom.element, Var):
            progressed = self._assign(atom.element.name,
                                      ClassType(atom.class_name))
        elif isinstance(atom, EqAtom):
            for side, other in ((atom.left, atom.right),
                                (atom.right, atom.left)):
                if isinstance(side, Var) and side.name not in self._var_types:
                    inferred = self._type_of(other)
                    if inferred is not None:
                        progressed |= self._assign(side.name, inferred)
        elif isinstance(atom, InAtom) and isinstance(atom.element, Var):
            if atom.element.name not in self._var_types:
                collection = self._type_of(atom.collection)
                if isinstance(collection, (SetType, ListType)):
                    progressed = self._assign(atom.element.name,
                                              collection.element)
        return progressed

    def _assign(self, name: str, inferred: Type) -> bool:
        if self._var_types.get(name) == inferred:
            return False
        if name in self._var_types:
            return False  # keep the first, don't oscillate
        self._var_types[name] = inferred
        return True

    def _type_of(self, term: Term) -> Optional[Type]:
        if isinstance(term, Var):
            return self._var_types.get(term.name)
        if isinstance(term, Const):
            return type_of_base(term.value)
        if isinstance(term, SkolemTerm):
            return ClassType(term.class_name)
        if isinstance(term, Proj):
            subject = self._type_of(term.subject)
            if isinstance(subject, ClassType):
                subject = self._class_type_of(subject.name)
            if isinstance(subject, RecordType) \
                    and subject.has_field(term.attr):
                return subject.field_type(term.attr)
            return None
        return None  # records/variants: not needed for pruning

    # -- projection reads ----------------------------------------------
    def _note_reads(self, term: Term) -> None:
        if isinstance(term, Proj):
            self._note_reads(term.subject)
            subject = self._type_of(term.subject)
            if isinstance(subject, ClassType):
                # Projecting through an object identity dereferences a
                # stored value: a read of (class, attribute).
                self.attributes.add((subject.name, term.attr))
            elif not isinstance(subject, RecordType):
                self.exact = False
        elif isinstance(term, RecordTerm):
            for _, sub in term.fields:
                self._note_reads(sub)
        elif isinstance(term, VariantTerm):
            self._note_reads(term.payload)
        elif isinstance(term, SkolemTerm):
            for _, sub in term.args:
                self._note_reads(sub)

    # -- relevance -----------------------------------------------------
    def observes(self, oid: Oid,
                 changed_attrs: Optional[frozenset]) -> bool:
        """Can this clause observe the given change at all?

        ``changed_attrs`` is None for an insert or delete (existence
        changed) and the set of differing attribute labels for an
        in-place update.
        """
        if not self.exact:
            return True
        cname = oid.class_name
        if changed_attrs is None:
            return (cname in self.member_classes
                    or any(read_class == cname
                           for read_class, _ in self.attributes))
        return any((cname, attr) in self.attributes
                   for attr in changed_attrs)


def _atom_terms(atom) -> Tuple[Term, ...]:
    if isinstance(atom, MemberAtom):
        return (atom.element,)
    if isinstance(atom, (EqAtom, NeqAtom, LtAtom, LeqAtom)):
        return (atom.left, atom.right)
    if isinstance(atom, InAtom):
        return (atom.element, atom.collection)
    return ()


def changed_attributes(delta: "Delta", old_instance: Instance
                       ) -> Dict[Oid, Optional[frozenset]]:
    """Per changed object: the differing attribute labels, or None.

    None marks existence changes (inserts and deletes); updates map to
    the set of record labels whose values differ (or None when either
    value is not a record — every read must then be assumed affected).
    """
    from ..model.values import Record
    changes: Dict[Oid, Optional[frozenset]] = {}
    for cname, objs in delta.inserts.items():
        for oid in objs:
            changes[oid] = None
    for cname, oids in delta.deletes.items():
        for oid in oids:
            changes[oid] = None
    for cname, objs in delta.updates.items():
        for oid, new_value in objs.items():
            old_value = old_instance.value_of(oid)
            if not (isinstance(old_value, Record)
                    and isinstance(new_value, Record)):
                changes[oid] = None
                continue
            labels = set(old_value.labels()) | set(new_value.labels())
            changes[oid] = frozenset(
                label for label in labels
                if not (old_value.has(label) and new_value.has(label)
                        and old_value.get(label) == new_value.get(label)))
    return changes


def seeded_solutions(matcher: Matcher, seeds: Sequence[DeltaSeed],
                     seed_oids: Mapping[str, Sequence[Oid]],
                     counters: Optional["IncrementalStats"] = None,
                     columnar: bool = True) -> Optional[List[Binding]]:
    """All clause-body solutions binding a member atom to a seed oid.

    Each member atom is seeded independently with the seed oids of its
    class; solutions are deduplicated across seeds (a binding touching
    two seeds is found twice but reported once).  Returns ``None`` when
    a member atom with seed oids has no seeded plan — the clause cannot
    be delta-joined exactly and the caller must recompute it fully.

    With ``columnar`` the whole seed vector of each member atom runs as
    one batch through the vectorized stage compiler
    (:func:`repro.engine.columnar.seeded_batch_columnar`); rows stay
    grouped by seed oid in seed order, so the deduplication sees
    bindings in exactly the scalar order and the result is identical.
    """
    relevant = [(seed, tuple(seed_oids.get(seed.class_name, ())))
                for seed in seeds]
    if all(not oids for _, oids in relevant):
        return []
    bindings: List[Binding] = []
    keys: Set[frozenset] = set()
    for seed, oids in relevant:
        if not oids:
            continue
        if seed.plan is None:
            return None
        if counters is not None:
            counters.seeds_probed += len(oids)
        if columnar:
            from .columnar import seeded_batch_columnar
            solutions = seeded_batch_columnar(
                matcher, seed.plan.steps, seed.variable, oids, counters)
        else:
            solutions = (
                binding for oid in oids
                for binding in matcher.run_plan_trusted(
                    seed.plan.steps, {seed.variable: oid}))
        for binding in solutions:
            key = frozenset(binding.items())
            if key not in keys:
                keys.add(key)
                bindings.append(binding)
    return bindings


def _delta_prologue(delta: "Delta", old_instance: Instance):
    """The per-delta inputs both engines need, computed once.

    Returns ``(removed_by_class, added_by_class, all_changed,
    changes)``: the per-class removed/added oid groups, the
    deduplicated list of every changed oid, and the per-oid
    changed-attribute map of :func:`changed_attributes`.
    """
    removed_by_class = delta.removed_by_class()
    added_by_class = delta.added_by_class()
    all_changed: List[Oid] = []
    seen: Set[Oid] = set()
    for group in (removed_by_class, added_by_class):
        for oids in group.values():
            for oid in oids:
                if oid not in seen:
                    seen.add(oid)
                    all_changed.append(oid)
    changes = changed_attributes(delta, old_instance)
    return removed_by_class, added_by_class, all_changed, changes


def _pruned_seed_groups(reads: ClauseReads, all_changed: Sequence[Oid],
                        changes: Mapping[Oid, Optional[frozenset]],
                        rev: ReverseIndex,
                        cache: Dict[Oid, Set[Oid]]
                        ) -> Dict[str, List[Oid]]:
    """Seed oids for one clause: closures of the changes it observes."""
    relevant = [oid for oid in all_changed
                if reads.observes(oid, changes[oid])]
    if not relevant:
        return {}
    seeds: Set[Oid] = set()
    for oid in relevant:
        closure = cache.get(oid)
        if closure is None:
            closure = rev.closure([oid])
            cache[oid] = closure
        seeds |= closure
    return _group_by_class(seeds)


@dataclass
class IncrementalStats:
    """Counters for one :meth:`IncrementalTransform.apply_delta` run."""

    delta_size: int = 0
    seeds_probed: int = 0
    bindings_removed: int = 0
    bindings_added: int = 0
    clauses_skipped: int = 0
    clauses_seeded: int = 0
    clauses_recomputed: int = 0
    indexes_maintained: int = 0
    indexes_rebuilt: int = 0
    target_objects_touched: int = 0
    violations_added: int = 0
    violations_removed: int = 0
    violations_rechecked: int = 0
    # Vectorized-execution counters (same meaning as on
    # ExecutionStats: batch stages run, scalar fallback steps, total
    # rows through batch stages, widest batch seen).
    vectorized_steps: int = 0
    fallback_steps: int = 0
    vectorized_rows: int = 0
    max_batch_rows: int = 0
    elapsed_seconds: float = 0.0


@dataclass
class DeltaResult:
    """Outcome of one incremental transformation step."""

    target: Instance
    stats: IncrementalStats
    delta: Delta


class _TargetStore:
    """Counted head effects, aggregated per target object.

    ``presence`` counts every effect touching an object (creation,
    assignment or insertion — exactly the events that make the batch
    executor materialise a pending object); an object exists while its
    presence is positive.  ``attrs`` counts derivations per value: more
    than one distinct value with positive count is the batch engine's
    "program is not functional" conflict, detected at re-assembly.
    """

    def __init__(self) -> None:
        self.presence: Dict[Oid, int] = {}
        self.attrs: Dict[Oid, Dict[str, Dict[Value, int]]] = {}
        self.elems: Dict[Oid, Dict[str, Dict[Value, int]]] = {}

    def apply(self, effect: Effect, sign: int, touched: Set[Oid]) -> None:
        kind, oid = effect[0], effect[1]
        touched.add(oid)
        self.presence[oid] = self.presence.get(oid, 0) + sign
        if self.presence[oid] < 0:
            raise ExecutionError(
                f"incremental bookkeeping underflow on {oid} (a retracted "
                f"binding was never recorded)")
        if self.presence[oid] == 0:
            del self.presence[oid]
        if kind == EFFECT_CREATE:
            return
        group = self.attrs if kind == EFFECT_SET else self.elems
        attr, value = effect[2], effect[3]
        per_attr = group.setdefault(oid, {})
        per_value = per_attr.setdefault(attr, {})
        count = per_value.get(value, 0) + sign
        if count < 0:
            raise ExecutionError(
                f"incremental bookkeeping underflow on {oid}.{attr}")
        if count == 0:
            per_value.pop(value, None)
            if not per_value:
                per_attr.pop(attr, None)
                if not per_attr:
                    group.pop(oid, None)
        else:
            per_value[value] = count

    def attributes_of(self, oid: Oid) -> Dict[str, Value]:
        attributes: Dict[str, Value] = {}
        for attr, values in self.attrs.get(oid, {}).items():
            live = [value for value, count in values.items() if count > 0]
            if len(live) > 1:
                raise ExecutionError(
                    f"conflict on {oid}.{attr}: clauses derive "
                    f"{len(live)} distinct values (the program is not "
                    f"functional)")
            if live:
                attributes[attr] = live[0]
        return attributes

    def set_attributes_of(self, oid: Oid) -> Dict[str, Set[Value]]:
        return {attr: {value for value, count in values.items() if count > 0}
                for attr, values in self.elems.get(oid, {}).items()
                if any(count > 0 for count in values.values())}


class IncrementalTransform:
    """A transformation session maintaining its target under deltas.

    Construction runs the program once (planned, over the shared index
    pool) while recording each clause firing's effect counts; every
    :meth:`apply_delta` then patches the counts from seeded delta joins
    and re-assembles only the touched target objects.  ``target`` always
    equals what :func:`repro.engine.executor.execute` would produce from
    the current source — the differential tests enforce bit-equality.
    """

    def __init__(self, program: Iterable[Clause], source: Instance,
                 target_schema,
                 defaults: Optional[Mapping[Tuple[str, str], Value]] = None,
                 validate: bool = True, columnar: bool = True) -> None:
        self.clauses: List[Clause] = list(program)
        self.source = source
        self.target_schema = target_schema
        self.defaults = dict(defaults or {})
        self.validate = validate
        self.columnar = columnar
        self._poisoned: Optional[str] = None

        source_classes = set(source.schema.class_names())
        for clause in self.clauses:
            for atom in clause.body:
                if (isinstance(atom, MemberAtom)
                        and atom.class_name not in source_classes):
                    raise ExecutionError(
                        f"clause {clause.name or clause}: body mentions "
                        f"non-source class {atom.class_name}; not in "
                        f"normal form")

        self.plan: ProgramPlan = plan_program(self.clauses, source)
        cardinalities = source.class_sizes()
        self._head_plans = [_HeadPlan(clause, target_schema)
                            for clause in self.clauses]

        def class_type_of(cname: str):
            if source.schema.has_class(cname):
                return source.schema.class_type(cname)
            if target_schema.has_class(cname):
                return target_schema.class_type(cname)
            return None

        self._reads = [ClauseReads(clause, class_type_of)
                       for clause in self.clauses]
        self._seeds: List[Tuple[DeltaSeed, ...]] = [
            plan_delta_seeds(clause, cardinalities)
            for clause in self.clauses]
        # The seeded variants may probe selectors the batch plans never
        # need (joins inverted around the seed); build their indexes up
        # front so the first delta does not pay lazy builds mid-join.
        self.plan.pool.prebuild(sorted(
            {key for seeds in self._seeds for seed in seeds
             if seed.plan is not None for key in seed.plan.index_paths}))

        self.clause_effects: List[Dict[Effect, int]] = [
            {} for _ in self.clauses]
        self._store = _TargetStore()
        self.stats = IncrementalStats()

        matcher = Matcher(source, index_pool=self.plan.pool)
        touched: Set[Oid] = set()
        for index, clause in enumerate(self.clauses):
            self._run_clause_full(index, matcher, source, touched)
        self.target = self._assemble_all()
        if validate:
            self.target.validate()
        self.source_rev = ReverseIndex(source)
        self.target_rev = ReverseIndex(self.target)

    # ------------------------------------------------------------------
    def _run_clause_full(self, index: int, matcher: Matcher,
                         instance: Instance, touched: Set[Oid]) -> None:
        clause = self.clauses[index]
        label = clause.name or str(clause)
        join_plan = self.plan.plan_for(clause)
        if join_plan is not None:
            if self.columnar:
                from .columnar import stream_plan_columnar
                bindings = stream_plan_columnar(
                    matcher, join_plan.steps, None, self.stats)
            else:
                bindings = matcher.run_plan(join_plan.steps)
        else:
            bindings = matcher.solutions(clause.body)
        for binding in bindings:
            effects = head_effects(self._head_plans[index], binding,
                                   instance, label)
            self._record(index, effects, +1, touched)

    def _clause_seeds(self, index: int, all_changed: Sequence[Oid],
                      changes: Mapping[Oid, Optional[frozenset]],
                      rev: ReverseIndex, cache: Dict[Oid, Set[Oid]]
                      ) -> Dict[str, List[Oid]]:
        return _pruned_seed_groups(self._reads[index], all_changed,
                                   changes, rev, cache)

    def _record(self, index: int, effects: Sequence[Effect], sign: int,
                touched: Set[Oid]) -> None:
        counter = self.clause_effects[index]
        for effect in effects:
            oid = effect[1]
            if not self.target_schema.has_class(oid.class_name):
                raise ExecutionError(
                    f"object {oid} belongs to no target class")
            counter[effect] = counter.get(effect, 0) + sign
            if counter[effect] == 0:
                del counter[effect]
            self._store.apply(effect, sign, touched)

    def _assemble_one(self, oid: Oid) -> Optional[Value]:
        """The object's current stored value, or None when retracted."""
        if self._store.presence.get(oid, 0) <= 0:
            return None
        ctype = self.target_schema.class_type(oid.class_name)
        value, missing = assemble_target_value(
            oid.class_name, oid, ctype, self._store.attributes_of(oid),
            self._store.set_attributes_of(oid), self.defaults)
        if value is None:
            if self.validate:
                raise ExecutionError(
                    "incomplete transformation (the program does not "
                    f"fully describe these objects): {oid}: missing "
                    f"attributes {missing}")
            return None
        return value

    def _assemble_all(self) -> Instance:
        valuations: Dict[str, Dict[Oid, Value]] = {
            cname: {} for cname in self.target_schema.class_names()}
        incomplete: List[str] = []
        for oid in sorted(self._store.presence, key=str):
            ctype = self.target_schema.class_type(oid.class_name)
            value, missing = assemble_target_value(
                oid.class_name, oid, ctype, self._store.attributes_of(oid),
                self._store.set_attributes_of(oid), self.defaults)
            if value is None:
                incomplete.append(f"{oid}: missing attributes {missing}")
                continue
            valuations[oid.class_name][oid] = value
        if incomplete and self.validate:
            raise ExecutionError(
                "incomplete transformation (the program does not fully "
                "describe these objects): " + "; ".join(incomplete))
        return Instance(self.target_schema, valuations)

    # ------------------------------------------------------------------
    def apply_delta(self, delta: Delta) -> DeltaResult:
        """Advance the source by ``delta`` and patch the target.

        Raises :class:`ExecutionError` exactly when a full recompute
        over the updated source would (conflicts, incompleteness,
        ill-formed results); after such an error the session is spent
        and must be rebuilt.
        """
        if self._poisoned is not None:
            raise ExecutionError(
                f"incremental session is spent ({self._poisoned}); "
                f"start a new one")
        start = time.perf_counter()
        stats = IncrementalStats(delta_size=delta.size())
        try:
            target = self._apply_delta(delta, stats)
        except Exception as exc:
            self._poisoned = str(exc)
            raise
        stats.elapsed_seconds = time.perf_counter() - start
        self.stats = stats
        publish_engine_stats("incremental", stats)
        return DeltaResult(target=target, stats=stats, delta=delta)

    def _apply_delta(self, delta: Delta, stats: IncrementalStats
                     ) -> Instance:
        old_source = self.source
        removed_by_class, added_by_class, all_changed, changes = \
            _delta_prologue(delta, old_source)

        # Phase 1 — retracted bindings, enumerated over the *old*
        # instance.  Both phases seed each clause from the changed oids
        # it can *observe* (attribute-level read-set pruning) plus
        # their transitive referrers: the closure over-approximates the
        # affected bindings (a referrer need not actually read the
        # changed object), so a binding retracted here that still holds
        # is re-derived in phase 3 from the same surviving seeds —
        # retract-then-rederive makes the over-approximation harmless.
        removal_seeds = _group_by_class(
            self.source_rev.closure(all_changed))
        cache_old: Dict[Oid, Set[Oid]] = {}
        removals: Dict[int, List[List[Effect]]] = {}
        fallback: Set[int] = set()
        matcher_old = Matcher(old_source, index_pool=self.plan.pool)
        for index, clause in enumerate(self.clauses):
            label = clause.name or str(clause)
            bindings = seeded_solutions(
                matcher_old, self._seeds[index],
                self._clause_seeds(index, all_changed, changes,
                                   self.source_rev, cache_old), stats,
                columnar=self.columnar)
            if bindings is None:
                fallback.add(index)
                continue
            if bindings:
                removals[index] = [
                    head_effects(self._head_plans[index], binding,
                                 old_source, label)
                    for binding in bindings]

        # Phase 2 — swap in the updated instance; maintain the referrer
        # relation and patch the shared index pool in place (the seed
        # closures bound every index entry that can move, including
        # through dereferencing paths).  Permissive application: the
        # batch oracle tolerates dangling source references (affected
        # bindings simply die), so the incremental path must too.
        new_source = delta.apply_to(old_source, validate_changed=False)
        self.source_rev.apply_delta(old_source, delta)
        self.source = new_source

        # Deleted oids seed nothing themselves (their membership tests
        # fail) but their surviving referrers re-derive here; the
        # referrer edges survive in the maintained relation because
        # only changed objects' outgoing references were rewritten.
        addition_seeds = _group_by_class(
            self.source_rev.closure(all_changed))
        maintained, rebuilt = self.plan.pool.rebase(
            new_source, removal_seeds, addition_seeds,
            strict_removed=removed_by_class,
            strict_added=added_by_class, changed_attrs=changes)
        stats.indexes_maintained += maintained
        stats.indexes_rebuilt += rebuilt

        # Phase 3 — bindings over the new instance, then commit.
        matcher_new = Matcher(new_source, index_pool=self.plan.pool)
        cache_new: Dict[Oid, Set[Oid]] = {}
        additions: Dict[int, List[List[Effect]]] = {}
        for index, clause in enumerate(self.clauses):
            if index in fallback:
                continue
            label = clause.name or str(clause)
            bindings = seeded_solutions(
                matcher_new, self._seeds[index],
                self._clause_seeds(index, all_changed, changes,
                                   self.source_rev, cache_new), stats,
                columnar=self.columnar)
            if bindings is None:
                fallback.add(index)
                continue
            if bindings:
                additions[index] = [
                    head_effects(self._head_plans[index], binding,
                                 new_source, label)
                    for binding in bindings]

        touched: Set[Oid] = set()
        for index, effect_lists in removals.items():
            if index in fallback:
                continue
            stats.bindings_removed += len(effect_lists)
            for effects in effect_lists:
                self._record(index, effects, -1, touched)
        for index, effect_lists in additions.items():
            if index in fallback:
                continue
            stats.bindings_added += len(effect_lists)
            for effects in effect_lists:
                self._record(index, effects, +1, touched)
        for index in sorted(fallback):
            stats.clauses_recomputed += 1
            for effect, count in list(self.clause_effects[index].items()):
                for _ in range(count):
                    self._store.apply(effect, -1, touched)
            self.clause_effects[index] = {}
            self._run_clause_full(index, matcher_new, new_source, touched)
        for index in range(len(self.clauses)):
            if index in fallback:
                continue
            if index in removals or index in additions:
                stats.clauses_seeded += 1
            else:
                stats.clauses_skipped += 1

        self.target = self._refreeze(touched, stats)
        return self.target

    def _refreeze(self, touched: Set[Oid], stats: IncrementalStats
                  ) -> Instance:
        """Re-assemble only the touched target objects.

        Validation is proportional to the change: changed values are
        type-checked and their references resolved, and removals are
        checked against the target's reverse index so a dangling
        reference fails here exactly as a full freeze-and-validate
        would.
        """
        valuations: Dict[str, Dict[Oid, Value]] = {
            cname: dict(objs)
            for cname, objs in self.target.valuations.items()}
        changed: List[Tuple[Oid, Optional[Value], Optional[Value]]] = []
        for oid in sorted(touched, key=str):
            old_value = valuations[oid.class_name].get(oid)
            new_value = self._assemble_one(oid)
            if new_value == old_value:
                continue
            changed.append((oid, old_value, new_value))
            if new_value is None:
                del valuations[oid.class_name][oid]
            else:
                valuations[oid.class_name][oid] = new_value
        stats.target_objects_touched = len(changed)
        if not changed:
            return self.target
        updated = Instance(self.target_schema, valuations)
        if self.validate:
            removed_oids = {oid for oid, _, value in changed
                            if value is None}
            for oid, _, value in changed:
                if value is None:
                    # The reverse index predates this refreeze, so a
                    # listed referrer may have been rewritten in the
                    # same step: only its *current* value convicts it.
                    for referrer in self.target_rev.referrers(oid):
                        if (referrer in removed_oids
                                or not updated.has_object(referrer)):
                            continue
                        if oid in oids_in(updated.value_of(referrer)):
                            raise ExecutionError(
                                f"transformation produced an ill-formed "
                                f"instance: {referrer} references {oid}, "
                                f"which is not in the instance")
                    continue
                ctype = self.target_schema.class_type(oid.class_name)
                try:
                    check_value(value, ctype)
                except ValueError_ as exc:
                    raise ExecutionError(
                        f"transformation produced an ill-formed instance: "
                        f"class {oid.class_name}, object {oid}: "
                        f"{exc}") from exc
                for ref in oids_in(value):
                    if not updated.has_object(ref):
                        raise ExecutionError(
                            f"transformation produced an ill-formed "
                            f"instance: class {oid.class_name}, object "
                            f"{oid}: value references {ref}, which is "
                            f"not in the instance")
        for oid, old_value, new_value in changed:
            self.target_rev.update_object(oid, old_value, new_value)
        return updated


# ----------------------------------------------------------------------
# Incremental constraint auditing
# ----------------------------------------------------------------------

@dataclass
class AuditDeltaResult:
    """Violation diff produced by one :meth:`IncrementalAudit.apply_delta`."""

    added: List[Violation]
    removed: List[Violation]
    violations: List[Violation]
    stats: IncrementalStats

    @property
    def ok(self) -> bool:
        return not self.violations


class IncrementalAudit:
    """A constraint audit maintaining its violation set under deltas.

    Violations are body solutions with no satisfying head extension.
    Under a delta: seeded body solutions over the old instance retract
    (their violations, if any, disappear with them), seeded body
    solutions over the new instance are (re)checked, surviving
    violations are re-probed when inserts could supply a missing head
    witness, and a clause is fully rechecked when the delta removes
    objects of a class its head draws witnesses from — the only case
    where a previously satisfied body can silently lose support.
    """

    def __init__(self, instance: Instance,
                 constraints: Iterable[Clause],
                 columnar: bool = True) -> None:
        self.instance = instance
        self.constraints: List[Clause] = list(constraints)
        self.columnar = columnar
        self.plan: AuditPlan = plan_audit(self.constraints, instance)
        cardinalities = instance.class_sizes()
        self._seeds = [plan_delta_seeds(clause, cardinalities)
                       for clause in self.constraints]
        self.plan.pool.prebuild(sorted(
            {key for seeds in self._seeds for seed in seeds
             if seed.plan is not None for key in seed.plan.index_paths}))
        self._body_vars = [
            frozenset().union(*(atom.variables() for atom in clause.body))
            if clause.body else frozenset()
            for clause in self.constraints]
        self._head_member_classes = [
            frozenset(atom.class_name for atom in clause.head
                      if isinstance(atom, MemberAtom))
            for clause in self.constraints]

        def class_type_of(cname: str):
            if instance.schema.has_class(cname):
                return instance.schema.class_type(cname)
            return None

        self._reads = [ClauseReads(clause, class_type_of)
                       for clause in self.constraints]
        self._violations: List[Dict[frozenset, Violation]] = []
        self.stats = IncrementalStats()
        self._poisoned: Optional[str] = None
        self._rev = ReverseIndex(instance)
        matcher = Matcher(instance, index_pool=self.plan.pool)
        for index, clause in enumerate(self.constraints):
            found = clause_violations(
                instance, clause, limit=None, matcher=matcher,
                plan=self.plan.plan_for(clause), columnar=columnar)
            self._violations.append({
                frozenset(violation.binding.items()): violation
                for violation in found})

    # ------------------------------------------------------------------
    def violations(self) -> List[Violation]:
        """The current violation set (stable order)."""
        out: List[Violation] = []
        for per_clause in self._violations:
            for key in sorted(per_clause, key=lambda k: sorted(map(str, k))):
                out.append(per_clause[key])
        return out

    def _head_satisfiable(self, index: int, matcher: Matcher,
                          binding: Binding) -> bool:
        clause = self.constraints[index]
        constraint_plan = self.plan.plan_for(clause)
        head_steps = constraint_plan.head.steps if (
            constraint_plan is not None
            and constraint_plan.head is not None) else None
        return matcher.satisfiable(clause.head, binding, plan=head_steps)

    def apply_delta(self, delta: Delta) -> AuditDeltaResult:
        """Advance the audited instance by ``delta``; return the diff."""
        if self._poisoned is not None:
            raise ExecutionError(
                f"incremental audit session is spent ({self._poisoned}); "
                f"start a new one")
        start = time.perf_counter()
        stats = IncrementalStats(delta_size=delta.size())
        try:
            added, removed = self._apply_delta(delta, stats)
        except Exception as exc:
            self._poisoned = str(exc)
            raise
        stats.elapsed_seconds = time.perf_counter() - start
        stats.violations_added = len(added)
        stats.violations_removed = len(removed)
        self.stats = stats
        return AuditDeltaResult(added=added, removed=removed,
                                violations=self.violations(), stats=stats)

    def _apply_delta(self, delta: Delta, stats: IncrementalStats
                     ) -> Tuple[List[Violation], List[Violation]]:
        old_instance = self.instance
        removed_by_class, added_by_class, all_changed, changes = \
            _delta_prologue(delta, old_instance)
        rev = self._rev
        # Both phases seed bodies from the closures of the changes each
        # clause observes (retract-then-rederive absorbs the
        # over-approximation); the head triggers stay narrow — witness
        # *loss* needs removed-side objects, witness *gain* added-side.
        removal_trigger = {oid.class_name for oid in rev.closure(
            oid for oids in removed_by_class.values() for oid in oids)}
        removal_seeds = _group_by_class(rev.closure(all_changed))
        cache_old: Dict[Oid, Set[Oid]] = {}

        # Phase 1 — over the old instance: retract the body solutions
        # that read removed objects, and decide which clauses need a
        # full recheck (removed objects of a head-witness class).
        matcher_old = Matcher(old_instance, index_pool=self.plan.pool)
        retract_keys: Dict[int, Set[frozenset]] = {}
        full_recheck: Set[int] = set()
        for index, clause in enumerate(self.constraints):
            if self._head_member_classes[index] & removal_trigger:
                full_recheck.add(index)
                continue
            bindings = seeded_solutions(
                matcher_old, self._seeds[index],
                _pruned_seed_groups(self._reads[index], all_changed,
                                    changes, rev, cache_old), stats,
                columnar=self.columnar)
            if bindings is None:
                full_recheck.add(index)
                continue
            if bindings:
                body_vars = self._body_vars[index]
                retract_keys[index] = {
                    frozenset((name, value)
                              for name, value in binding.items()
                              if name in body_vars)
                    for binding in bindings}

        # Phase 2 — swap instances, patch the pool (seed closures bound
        # the movable index entries, as in the transform engine).
        new_instance = delta.apply_to(old_instance,
                                      validate_changed=False)
        rev.apply_delta(old_instance, delta)
        self.instance = new_instance

        addition_trigger = {oid.class_name for oid in rev.closure(
            oid for oids in added_by_class.values() for oid in oids)}
        addition_seeds = _group_by_class(rev.closure(all_changed))
        maintained, rebuilt = self.plan.pool.rebase(
            new_instance, removal_seeds, addition_seeds,
            strict_removed=removed_by_class,
            strict_added=added_by_class, changed_attrs=changes)
        stats.indexes_maintained += maintained
        stats.indexes_rebuilt += rebuilt
        matcher_new = Matcher(new_instance, index_pool=self.plan.pool)
        cache_new: Dict[Oid, Set[Oid]] = {}
        added: List[Violation] = []
        removed: List[Violation] = []
        for index, clause in enumerate(self.constraints):
            per_clause = self._violations[index]
            if index not in full_recheck:
                bindings = seeded_solutions(
                    matcher_new, self._seeds[index],
                    _pruned_seed_groups(self._reads[index], all_changed,
                                        changes, rev, cache_new), stats,
                    columnar=self.columnar)
                if bindings is None:
                    full_recheck.add(index)
            if index in full_recheck:
                stats.clauses_recomputed += 1
                found = clause_violations(
                    new_instance, clause, limit=None, matcher=matcher_new,
                    plan=self.plan.plan_for(clause),
                    columnar=self.columnar)
                fresh = {frozenset(violation.binding.items()): violation
                         for violation in found}
                for key, violation in fresh.items():
                    if key not in per_clause:
                        added.append(violation)
                for key, violation in per_clause.items():
                    if key not in fresh:
                        removed.append(violation)
                self._violations[index] = fresh
                continue
            # Retract violations whose body solutions disappeared, then
            # re-derive the seeded solutions of the new instance.  A
            # violation retracted and immediately re-derived unchanged
            # is reinstated silently (it never left the set).
            rechecked: Set[frozenset] = set()
            retracted_now: Dict[frozenset, Violation] = {}
            for key in retract_keys.get(index, ()):
                violation = per_clause.pop(key, None)
                if violation is not None:
                    retracted_now[key] = violation
            body_vars = self._body_vars[index]
            for binding in bindings:
                projected = {name: value for name, value in binding.items()
                             if name in body_vars}
                key = frozenset(projected.items())
                rechecked.add(key)
                satisfied = self._head_satisfiable(index, matcher_new,
                                                   projected)
                stats.violations_rechecked += 1
                if satisfied:
                    prior = per_clause.pop(key, None)
                    if prior is not None:
                        removed.append(prior)
                    elif key in retracted_now:
                        removed.append(retracted_now.pop(key))
                elif key in retracted_now:
                    per_clause[key] = retracted_now.pop(key)
                elif key not in per_clause:
                    violation = Violation(clause, projected)
                    per_clause[key] = violation
                    added.append(violation)
            removed.extend(retracted_now.values())
            if bindings or retract_keys.get(index):
                stats.clauses_seeded += 1
            else:
                stats.clauses_skipped += 1
            # Inserted objects of a head-witness class may satisfy
            # violations whose bodies the delta never touched.
            if self._head_member_classes[index] & addition_trigger:
                for key in list(per_clause):
                    if key in rechecked:
                        continue
                    stats.violations_rechecked += 1
                    if self._head_satisfiable(index, matcher_new,
                                              dict(key)):
                        removed.append(per_clause.pop(key))
        return added, removed
