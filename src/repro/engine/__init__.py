"""One-pass execution of normal-form WOL programs."""

from .executor import (ExecutionError, ExecutionStats, Executor, execute)

__all__ = ["ExecutionError", "ExecutionStats", "Executor", "execute"]
