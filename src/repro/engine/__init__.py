"""One-pass execution of normal-form WOL programs.

``executor`` applies clause heads and assembles the target instance;
``planner`` computes per-clause join plans (fixed atom orders) and the
shared index pool that the planned execution path runs on;
``incremental`` maintains targets and constraint-violation sets under
source deltas with semi-naive delta joins over the same plans and pool;
``parallel`` fans the planned path out across worker processes with
hash-sharded driving generators and merges the shards back into one
byte-identical target.
"""

from .executor import ExecutionError, ExecutionStats, Executor, execute
from .planner import (AuditPlan, ConstraintPlan, DeltaSeed, JoinPlan,
                      PlanError, ProgramPlan, plan_audit, plan_clause,
                      plan_constraint, plan_delta_seeds, plan_program,
                      shard_constraint_plan, shard_join_plan,
                      shardable_step)
from .incremental import (AuditDeltaResult, DeltaResult, IncrementalAudit,
                          IncrementalStats, IncrementalTransform,
                          ReverseIndex)
from .parallel import (AuditEnvelope, ParallelAuditResult,
                       TransformEnvelope, audit_parallel,
                       execute_parallel)

__all__ = ["ExecutionError", "ExecutionStats", "Executor", "execute",
           "AuditPlan", "ConstraintPlan", "DeltaSeed", "JoinPlan",
           "PlanError", "ProgramPlan", "plan_audit", "plan_clause",
           "plan_constraint", "plan_delta_seeds", "plan_program",
           "shard_constraint_plan", "shard_join_plan",
           "shardable_step",
           "AuditDeltaResult", "DeltaResult", "IncrementalAudit",
           "IncrementalStats", "IncrementalTransform", "ReverseIndex",
           "AuditEnvelope", "ParallelAuditResult", "TransformEnvelope",
           "audit_parallel", "execute_parallel"]
