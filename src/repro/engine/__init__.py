"""One-pass execution of normal-form WOL programs.

``executor`` applies clause heads and assembles the target instance;
``planner`` computes per-clause join plans (fixed atom orders) and the
shared index pool that the planned execution path runs on;
``incremental`` maintains targets and constraint-violation sets under
source deltas with semi-naive delta joins over the same plans and pool.
"""

from .executor import ExecutionError, ExecutionStats, Executor, execute
from .planner import (AuditPlan, ConstraintPlan, DeltaSeed, JoinPlan,
                      PlanError, ProgramPlan, plan_audit, plan_clause,
                      plan_constraint, plan_delta_seeds, plan_program)
from .incremental import (AuditDeltaResult, DeltaResult, IncrementalAudit,
                          IncrementalStats, IncrementalTransform,
                          ReverseIndex)

__all__ = ["ExecutionError", "ExecutionStats", "Executor", "execute",
           "AuditPlan", "ConstraintPlan", "DeltaSeed", "JoinPlan",
           "PlanError", "ProgramPlan", "plan_audit", "plan_clause",
           "plan_constraint", "plan_delta_seeds", "plan_program",
           "AuditDeltaResult", "DeltaResult", "IncrementalAudit",
           "IncrementalStats", "IncrementalTransform", "ReverseIndex"]
