"""One-pass execution of normal-form WOL programs.

``executor`` applies clause heads and assembles the target instance;
``planner`` computes per-clause join plans (fixed atom orders) and the
shared index pool that the planned execution path runs on.
"""

from .executor import ExecutionError, ExecutionStats, Executor, execute
from .planner import (AuditPlan, ConstraintPlan, JoinPlan, PlanError,
                      ProgramPlan, plan_audit, plan_clause,
                      plan_constraint, plan_program)

__all__ = ["ExecutionError", "ExecutionStats", "Executor", "execute",
           "AuditPlan", "ConstraintPlan", "JoinPlan", "PlanError",
           "ProgramPlan", "plan_audit", "plan_clause", "plan_constraint",
           "plan_program"]
