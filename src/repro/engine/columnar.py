"""Vectorized plan-step execution over columnar batches.

The scalar hot path (:meth:`repro.semantics.match.Matcher.run_plan`)
threads one binding dict at a time through the plan — a dict copy, a
mode dispatch and a recursive ``evaluate()`` walk per step per binding.
This module executes the *same* :class:`~repro.semantics.match.PlanStep`
sequence one **batch** at a time instead: a batch is a dict of parallel
binding columns (``variable -> list of values``) plus a row count, and
each step consumes the whole batch — extent cross-products, batched
index probes, selector filters as list comprehensions — emitting the
surviving columns.

Equivalence with the scalar path is positional, not just set-wise: a
batch stage maps input rows in order and expands each row's candidates
in the scalar candidate order, so the final rows enumerate in exactly
the depth-first order ``_run_steps`` produces.  The differential fuzz
harness holds the two paths to byte-equal results.

Steps the compiler cannot vectorize — membership or ``in`` generators
whose element is a *pattern* (unification against record/Skolem
structure) and equations binding a non-variable pattern — run as
**fallback stages**: the batch is re-materialised row by row through
the scalar ``Matcher._expand_step`` and re-columnarised, so a single
slow step never forces a whole clause off the vectorized path.
:func:`step_vectorizable` is the static rule, shared by the planner's
``explain()`` flag and the ``WOL305`` lint.

Terms are compiled once per plan into column evaluators; a failed
per-row evaluation (the scalar path's :class:`EvalError`) marks the row
:data:`~repro.semantics.columns.MISSING` and the consuming stage drops
it, mirroring ``Matcher._try_eval``.
"""

from __future__ import annotations

from itertools import compress, repeat
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..lang.ast import (Const, EqAtom, InAtom, LtAtom, MemberAtom, NeqAtom,
                        Proj, RecordTerm, SkolemTerm, Term, Var, VariantTerm)
from ..model.instance import InstanceError
from ..model.types import ClassType, ListType, RecordType, SetType
from ..model.values import Oid, Record, Value, Variant, WolList, WolSet
from ..obs.trace import current_span
from ..obs.trace import span as trace_span
from ..semantics.columns import MISSING, deterministic_order
from ..semantics.eval import Binding, skolem_key
from ..semantics.match import (STEP_COMPARE, STEP_EQ_BIND, STEP_EQ_TEST,
                               STEP_IN_GENERATE, STEP_IN_TEST,
                               STEP_MEMBER_INDEX, STEP_MEMBER_SCAN,
                               STEP_MEMBER_TEST, Matcher, PlanStep,
                               shard_hash)

#: A batch: parallel binding columns, all of one length.
Columns = Dict[str, List[Value]]

#: A compiled stage: ``(columns, row_count) -> (columns, row_count)``.
Stage = Callable[[Columns, int], Tuple[Columns, int]]

#: Hidden-column prefix: a scan that binds variable ``X`` also emits
#: ``\0row\0X`` holding each oid's raw :class:`ColumnStore` row, so
#: downstream gathers and ``in``-generators index attribute arrays by
#: integer instead of hashing oids through the intern table.  The NUL
#: byte keeps the name disjoint from every parseable variable; row
#: columns ride through filters like any other column and die at
#: liveness boundaries with their base variable.
_ROW_PREFIX = "\0row\0"


# ----------------------------------------------------------------------
# Static vectorizability rule
# ----------------------------------------------------------------------

_GENERATORS = (STEP_MEMBER_SCAN, STEP_MEMBER_INDEX, STEP_IN_GENERATE)
_TESTS = (STEP_MEMBER_TEST, STEP_IN_TEST, STEP_EQ_TEST, STEP_COMPARE)


def _compilable(term: Optional[Term]) -> bool:
    """Can the column compiler evaluate ``term``?  (Everything the
    scalar evaluator handles; the walk guards future AST nodes.)"""
    if term is None:
        return True
    if isinstance(term, (Var, Const)):
        return True
    if isinstance(term, Proj):
        return _compilable(term.subject)
    if isinstance(term, VariantTerm):
        return _compilable(term.payload)
    if isinstance(term, RecordTerm):
        return all(_compilable(sub) for _, sub in term.fields)
    if isinstance(term, SkolemTerm):
        return all(_compilable(sub) for _, sub in term.args)
    return False


def step_vectorizable(step: PlanStep) -> bool:
    """True when ``step`` runs as an array operation over whole batches.

    Generators must introduce their candidates through a plain
    variable — a *pattern* element (record/Skolem structure) needs
    per-candidate unification, the scalar fallback.  Equation binds
    likewise need a variable pattern.  Pure tests always vectorize,
    provided every term is compilable.
    """
    mode = step.mode
    if mode in _GENERATORS:
        atom = step.atom
        if not isinstance(atom.element, Var):
            return False
        if mode == STEP_MEMBER_INDEX:
            return _compilable(step.selector_term)
        if mode == STEP_IN_GENERATE:
            return _compilable(atom.collection)
        return True
    if mode == STEP_EQ_BIND:
        return (isinstance(step.pattern_term, Var)
                and _compilable(step.eval_term))
    if mode in _TESTS:
        return all(_compilable(term) for term in step.atom.terms())
    return False


# ----------------------------------------------------------------------
# Term compilation: Term -> column evaluator
# ----------------------------------------------------------------------

def compile_term(term: Term, matcher: Matcher,
                 var_class: Optional[Dict[str, str]] = None
                 ) -> Callable[[Columns, int], List[Value]]:
    """Compile ``term`` into a whole-column evaluator.

    Rows that fail to evaluate (the scalar path's ``EvalError``) come
    back as :data:`MISSING`.  ``var_class`` maps variables statically
    known to hold oids of one class (membership-bound) to that class,
    enabling gathers from prebuilt attribute columns.
    """
    if var_class is None:
        var_class = {}
    if isinstance(term, Var):
        name = term.name
        return lambda columns, count: columns[name]
    if isinstance(term, Const):
        value = term.value
        return lambda columns, count: [value] * count
    if isinstance(term, Proj):
        return _compile_proj(term, matcher, var_class)
    if isinstance(term, VariantTerm):
        payload = compile_term(term.payload, matcher, var_class)
        label = term.label

        def variant_column(columns: Columns, count: int) -> List[Value]:
            return [MISSING if value is MISSING else Variant(label, value)
                    for value in payload(columns, count)]
        return variant_column
    if isinstance(term, RecordTerm):
        labels = tuple(label for label, _ in term.fields)
        parts = tuple(compile_term(sub, matcher, var_class)
                      for _, sub in term.fields)

        def record_column(columns: Columns, count: int) -> List[Value]:
            evaluated = [part(columns, count) for part in parts]
            out: List[Value] = []
            for row in range(count):
                values = tuple(column[row] for column in evaluated)
                if any(value is MISSING for value in values):
                    out.append(MISSING)
                else:
                    out.append(Record(tuple(zip(labels, values))))
            return out
        return record_column
    if isinstance(term, SkolemTerm):
        labels = tuple(label for label, _ in term.args)
        parts = tuple(compile_term(sub, matcher, var_class)
                      for _, sub in term.args)
        class_name = term.class_name
        # The key packing rule (``skolem_key``) depends only on the
        # argument shape — resolve it once per compiled term.
        if not parts:
            constant = Oid.keyed(class_name, skolem_key(class_name, ()))
            return lambda columns, count: [constant] * count
        if labels[0] is None and len(parts) == 1:
            single = parts[0]
            mint = Oid.keyed_unchecked
            # Interning minted identities matters beyond saving the
            # constructor call: in-generate steps fan each source row
            # out over collection elements, so identity columns are
            # full of duplicate keys.  Handing every duplicate the
            # same object keeps its hash cached, which is what makes
            # the pending-store probes in the head phase cheap.
            interned: Dict[Value, Oid] = {}

            def skolem_single(columns: Columns, count: int) -> List[Value]:
                cached = interned.get
                out: List[Value] = []
                append = out.append
                for value in single(columns, count):
                    if value is MISSING:
                        append(MISSING)
                        continue
                    oid = cached(value)
                    if oid is None:
                        oid = mint(class_name, value)
                        # Every identity ends up as a pending-store key;
                        # priming the hash here skips the AttributeError
                        # miss path of the cached __hash__ later.
                        oid.__dict__["_hash"] = hash(
                            (class_name, value, None))
                        interned[value] = oid
                    append(oid)
                return out
            return skolem_single
        if labels[0] is None:
            key_labels = tuple(f"arg{index}" for index in range(len(parts)))
        else:
            key_labels = labels
        if len(set(key_labels)) != len(key_labels):
            # Duplicate key labels: defer to skolem_key's validation
            # row by row (the scalar behaviour).
            def skolem_generic(columns: Columns, count: int) -> List[Value]:
                evaluated = [part(columns, count) for part in parts]
                out: List[Value] = []
                for row in range(count):
                    values = tuple(column[row] for column in evaluated)
                    if any(value is MISSING for value in values):
                        out.append(MISSING)
                        continue
                    out.append(Oid.keyed(class_name, skolem_key(
                        class_name, tuple(zip(labels, values)))))
                return out
            return skolem_generic
        # Pre-sort the label layout once so each row's key record can
        # skip canonicalisation (Record.presorted).
        order = sorted(range(len(key_labels)), key=lambda i: key_labels[i])
        sorted_labels = tuple(key_labels[i] for i in order)
        presorted = Record.presorted
        mint = Oid.keyed_unchecked
        if len(parts) == 2:
            # The dominant shape (binary join keys): build record and
            # oid with raw __dict__ writes, no per-row zip/tuple churn.
            first, second = (parts[i] for i in order)
            label_a, label_b = sorted_labels
            new = object.__new__
            record_cls, oid_cls = Record, Oid
            interned_pairs: Dict[Tuple[Value, Value], Oid] = {}

            def skolem_pair(columns: Columns, count: int) -> List[Value]:
                cached = interned_pairs.get
                out: List[Value] = []
                append = out.append
                for pair in zip(first(columns, count),
                                second(columns, count)):
                    value_a, value_b = pair
                    if value_a is MISSING or value_b is MISSING:
                        append(MISSING)
                        continue
                    oid = cached(pair)
                    if oid is None:
                        record = new(record_cls)
                        state = record.__dict__
                        fields = ((label_a, value_a), (label_b, value_b))
                        state["fields"] = fields
                        state["_index"] = {label_a: value_a,
                                           label_b: value_b}
                        # Prime the record and oid hash caches: these
                        # identities go straight into pending-store and
                        # intern dicts, and the lazy __hash__ pays two
                        # AttributeError misses per oid otherwise.
                        state["_hash"] = hash(fields)
                        oid = new(oid_cls)
                        state = oid.__dict__
                        state["class_name"] = class_name
                        state["key"] = record
                        state["serial"] = None
                        state["_hash"] = hash((class_name, record, None))
                        interned_pairs[pair] = oid
                    append(oid)
                return out
            return skolem_pair

        interned_keys: Dict[Tuple[Value, ...], Oid] = {}

        def skolem_column(columns: Columns, count: int) -> List[Value]:
            cached = interned_keys.get
            evaluated = [parts[i](columns, count) for i in order]
            out: List[Value] = []
            append = out.append
            for row in range(count):
                values = tuple(column[row] for column in evaluated)
                if MISSING in values:
                    append(MISSING)
                    continue
                oid = cached(values)
                if oid is None:
                    record = presorted(tuple(zip(sorted_labels, values)))
                    record.__dict__["_hash"] = hash(record.fields)
                    oid = mint(class_name, record)
                    oid.__dict__["_hash"] = hash((class_name, record, None))
                    interned_keys[values] = oid
                append(oid)
            return out
        return skolem_column
    raise NotImplementedError(f"cannot compile term {term!r}")


def _compile_proj(term: Proj, matcher: Matcher,
                  var_class: Dict[str, str]
                  ) -> Callable[[Columns, int], List[Value]]:
    attr = term.attr
    subject = term.subject
    if isinstance(subject, Var) and subject.name in var_class:
        # Gather from the prebuilt attribute column: the variable is
        # membership-bound, so every row is a (live-or-dead) oid of one
        # class; dead rows miss the intern table and read MISSING.
        class_name = var_class[subject.name]
        name = subject.name
        row_name = _ROW_PREFIX + name
        store = matcher.columns()

        def gather(columns: Columns, count: int) -> List[Value]:
            column = store.scalar_column(class_name, attr)
            rows = columns.get(row_name)
            if rows is not None:
                # The scan that bound the subject threaded its raw
                # rows along — pure integer indexing, no oid hashing.
                return [column[row] for row in rows]
            get = store.row_map(class_name).get
            out: List[Value] = []
            append = out.append
            for oid in columns[name]:
                row = get(oid)
                append(MISSING if row is None else column[row])
            return out
        return gather

    inner = compile_term(subject, matcher, var_class)
    instance = matcher.instance

    def project_column(columns: Columns, count: int) -> List[Value]:
        out: List[Value] = []
        append = out.append
        value_of = instance.value_of
        for value in inner(columns, count):
            if value is MISSING:
                append(MISSING)
                continue
            if isinstance(value, Oid):
                try:
                    value = value_of(value)
                except InstanceError:
                    append(MISSING)
                    continue
            if isinstance(value, Record) and value.has(attr):
                append(value.get(attr))
            else:
                append(MISSING)
        return out
    return project_column


# ----------------------------------------------------------------------
# Stage compilation: PlanStep -> batch stage
# ----------------------------------------------------------------------

def _take(columns: Columns, keep: List[int], count: int
          ) -> Tuple[Columns, int]:
    if len(keep) == count:
        return columns, count
    return ({name: [column[row] for row in keep]
             for name, column in columns.items()}, len(keep))


def _scan_stage(matcher: Matcher, step: PlanStep) -> Stage:
    atom = step.atom
    assert isinstance(atom, MemberAtom) and isinstance(atom.element, Var)
    class_name = atom.class_name
    name = atom.element.name
    shard = step.shard

    row_name = _ROW_PREFIX + name

    def stage(columns: Columns, count: int) -> Tuple[Columns, int]:
        store = matcher.columns()
        if shard is not None:
            extent = store.shard_extent(class_name, shard[0], shard[1])
            rows = None
        else:
            extent = store.extent(class_name)
            rows = store.extent_rows(class_name)
        width = len(extent)
        if width == 0:
            return {}, 0
        if width == 1:
            out = dict(columns)
        else:
            repeated = range(width)
            out = {variable: [value for value in column for _ in repeated]
                   for variable, column in columns.items()}
        out[name] = list(extent) if count == 1 else extent * count
        if rows is not None:
            out[row_name] = list(rows) if count == 1 else rows * count
        return out, count * width
    return stage


def _index_stage(matcher: Matcher, step: PlanStep,
                 var_class: Dict[str, str]) -> Stage:
    atom = step.atom
    assert isinstance(atom, MemberAtom) and isinstance(atom.element, Var)
    class_name = atom.class_name
    name = atom.element.name
    path = step.selector_path
    selector = compile_term(step.selector_term, matcher, var_class)
    shard = step.shard
    scan = _scan_stage(matcher, step)

    def stage(columns: Columns, count: int) -> Tuple[Columns, int]:
        if not matcher.use_indexes:
            return scan(columns, count)
        pool = matcher.pool
        index = pool.index_for(class_name, path)
        get = index.get
        values = selector(columns, count)
        keep: List[int] = []
        out_column: List[Value] = []
        lookups = hits = misses = 0
        for row, value in enumerate(values):
            if value is MISSING:
                continue
            candidates = get(value, ())
            lookups += 1
            if candidates:
                hits += 1
                for oid in candidates:
                    keep.append(row)
                    out_column.append(oid)
            else:
                misses += 1
        pool.lookups += lookups
        pool.hits += hits
        pool.misses += misses
        if shard is not None:
            index_of, shards = shard
            hashes = matcher._shard_hashes
            narrowed_keep: List[int] = []
            narrowed: List[Value] = []
            for row, oid in zip(keep, out_column):
                code = hashes.get(oid)
                if code is None:
                    code = shard_hash(oid)
                    hashes[oid] = code
                if code % shards == index_of:
                    narrowed_keep.append(row)
                    narrowed.append(oid)
            keep, out_column = narrowed_keep, narrowed
        out = {variable: [column[row] for row in keep]
               for variable, column in columns.items()}
        out[name] = out_column
        # Resolve each candidate's store row once here, so the several
        # downstream gathers and set slices index by int instead of
        # re-probing the intern table per stage.
        rows_get = matcher.columns().row_map(class_name).get
        out_rows = [rows_get(oid) for oid in out_column]
        if None not in out_rows:
            out[_ROW_PREFIX + name] = out_rows
        return out, len(out_column)
    return stage


def _member_test_stage(matcher: Matcher, step: PlanStep,
                       var_class: Dict[str, str]) -> Stage:
    atom = step.atom
    assert isinstance(atom, MemberAtom)
    class_name = atom.class_name
    element = compile_term(atom.element, matcher, var_class)
    instance = matcher.instance

    def stage(columns: Columns, count: int) -> Tuple[Columns, int]:
        has = instance.has_object
        keep = [row for row, value in enumerate(element(columns, count))
                if isinstance(value, Oid)
                and value.class_name == class_name and has(value)]
        return _take(columns, keep, count)
    return stage


def _elements_of(value: Value, attr: str) -> Sequence[Value]:
    """Non-oid fallback of the ``in``-generator fast path: project the
    attribute off a record value directly (anything else yields no
    rows, like the scalar path's failed evaluation)."""
    if isinstance(value, Record) and value.has(attr):
        field = value.get(attr)
        if isinstance(field, (WolSet, WolList)):
            return deterministic_order(field)
    return ()


def _in_generate_stage(matcher: Matcher, step: PlanStep,
                       var_class: Dict[str, str],
                       var_collection: Dict[str, Tuple[str, str]]) -> Stage:
    atom = step.atom
    assert isinstance(atom, InAtom) and isinstance(atom.element, Var)
    name = atom.element.name
    collection = atom.collection
    if (isinstance(collection, Var)
            and collection.name in var_collection):
        # The collection variable was bound by a preceding equation
        # ``V = X.attr`` (the normal form flattens nested projections
        # that way), so the elements are exactly the subject's set
        # column — read the pre-sorted slice instead of re-ordering
        # each row's collection value.
        subject, attr = var_collection[collection.name]
        collection = Proj(Var(subject), attr)
    if isinstance(collection, Proj) and isinstance(collection.subject, Var):
        # Fast path: read pre-sorted flattened set columns instead of
        # re-ordering each row's collection.
        subject = collection.subject.name
        attr = collection.attr
        if subject in var_class:
            # The subject is membership-bound: every row holds a live
            # oid of one statically known class, so the flattened set
            # column and intern table resolve once per batch and the
            # per-row work is a dict probe plus a list slice.
            class_name = var_class[subject]
            row_name = _ROW_PREFIX + subject

            def stage(columns: Columns, count: int) -> Tuple[Columns, int]:
                store = matcher.columns()
                column = store._set_column(class_name, attr)
                values = column.values
                starts = column.starts
                lengths = column.lengths
                keep: List[int] = []
                extend_keep = keep.extend
                out_column: List[Value] = []
                extend_out = out_column.extend
                subject_rows = columns.get(row_name)
                if subject_rows is not None:
                    # Integer-indexed: the subject column carries its
                    # raw store rows (bound by an unsharded scan).
                    mask = [lengths[at] for at in subject_rows]
                    if max(mask, default=0) <= 1:
                        # Option idiom (0/1-element sets): a straight
                        # gather plus a C-speed filter, no keep list.
                        if min(mask, default=0) == 1:
                            out = dict(columns)
                            out[name] = [values[starts[at]]
                                         for at in subject_rows]
                            return out, count
                        out = {variable: list(compress(column_, mask))
                               for variable, column_ in columns.items()}
                        out[name] = [values[starts[at]]
                                     for at, n in zip(subject_rows, mask)
                                     if n]
                        return out, len(out[name])
                    for row, at in enumerate(subject_rows):
                        length = lengths[at]
                        if not length:
                            continue
                        start = starts[at]
                        extend_out(values[start:start + length])
                        extend_keep(repeat(row, length))
                else:
                    rows_get = store.row_map(class_name).get
                    for row, oid in enumerate(columns[subject]):
                        at = rows_get(oid)
                        if at is None:
                            continue
                        length = lengths[at]
                        if not length:
                            continue
                        start = starts[at]
                        extend_out(values[start:start + length])
                        extend_keep(repeat(row, length))
                if len(keep) == count and keep == list(range(count)):
                    out = dict(columns)  # every row kept exactly once
                else:
                    out = {variable: [column[row] for row in keep]
                           for variable, column in columns.items()}
                out[name] = out_column
                return out, len(out_column)
            return stage

        def stage(columns: Columns, count: int) -> Tuple[Columns, int]:
            store = matcher.columns()
            slice_of = store.set_slice
            keep: List[int] = []
            out_column: List[Value] = []
            for row, value in enumerate(columns[subject]):
                elements = (slice_of(value, attr)
                            if isinstance(value, Oid)
                            else _elements_of(value, attr))
                for element in elements:
                    keep.append(row)
                    out_column.append(element)
            if len(keep) == count and keep == list(range(count)):
                out = dict(columns)
            else:
                out = {variable: [column[row] for row in keep]
                       for variable, column in columns.items()}
            out[name] = out_column
            return out, len(out_column)
        return stage

    evaluator = compile_term(collection, matcher, var_class)

    def stage(columns: Columns, count: int) -> Tuple[Columns, int]:
        keep: List[int] = []
        out_column: List[Value] = []
        # Cross-products repeat collection values across rows; order
        # each distinct object once.  Keying by id() is safe because
        # the evaluated column keeps every value alive for the whole
        # stage call.
        ordered_cache: Dict[int, List[Value]] = {}
        values = evaluator(columns, count)
        for row, value in enumerate(values):
            if isinstance(value, (WolSet, WolList)):
                elements = ordered_cache.get(id(value))
                if elements is None:
                    elements = deterministic_order(value)
                    ordered_cache[id(value)] = elements
                for element in elements:
                    keep.append(row)
                    out_column.append(element)
        if len(keep) == count and keep == list(range(count)):
            out = dict(columns)
        else:
            out = {variable: [column[row] for row in keep]
                   for variable, column in columns.items()}
        out[name] = out_column
        return out, len(out_column)
    return stage


def _in_generate_lengths(matcher: Matcher, step: PlanStep,
                         var_class: Dict[str, str],
                         var_collection: Dict[str, Tuple[str, str]]):
    """Per-row element counts of an ``in``-generator, without
    materialising the elements.

    Mirrors ``_in_generate_stage`` branch for branch (same rewrites,
    same fast paths, same zero-row conditions) so a fused suffix of
    dead generators multiplies out exactly the rows the chained stages
    would have produced.
    """
    atom = step.atom
    assert isinstance(atom, InAtom) and isinstance(atom.element, Var)
    collection = atom.collection
    if (isinstance(collection, Var)
            and collection.name in var_collection):
        subject, attr = var_collection[collection.name]
        collection = Proj(Var(subject), attr)
    if isinstance(collection, Proj) and isinstance(collection.subject, Var):
        subject = collection.subject.name
        attr = collection.attr
        if subject in var_class:
            class_name = var_class[subject]
            row_name = _ROW_PREFIX + subject

            def lengths_fn(columns: Columns, count: int) -> List[int]:
                store = matcher.columns()
                lengths = store.set_lengths(class_name, attr)
                subject_rows = columns.get(row_name)
                if subject_rows is not None:
                    return [lengths[at] for at in subject_rows]
                rows_get = store.row_map(class_name).get
                out: List[int] = []
                append = out.append
                for oid in columns[subject]:
                    at = rows_get(oid)
                    append(0 if at is None else lengths[at])
                return out
            return lengths_fn

        def lengths_fn(columns: Columns, count: int) -> List[int]:
            slice_of = matcher.columns().set_slice
            return [len(slice_of(value, attr)) if isinstance(value, Oid)
                    else len(_elements_of(value, attr))
                    for value in columns[subject]]
        return lengths_fn

    evaluator = compile_term(collection, matcher, var_class)

    def lengths_fn(columns: Columns, count: int) -> List[int]:
        return [len(value) if isinstance(value, (WolSet, WolList)) else 0
                for value in evaluator(columns, count)]
    return lengths_fn


def _fused_expand_stage(length_fns: List) -> Stage:
    """One stage standing in for a trailing run of ``in``-generators
    whose element variables are all dead.

    A dead generator's only observable effect is row multiplicity
    (empty collections drop the row, n-element collections repeat it),
    so the fusion computes each source row's multiplicity — the product
    of its per-generator element counts — and expands every live
    column once.  Nested-loop enumeration order is preserved: repeated
    copies of a source row are exactly the rows the chained stages
    would emit, in the same positions.
    """
    def stage(columns: Columns, count: int) -> Tuple[Columns, int]:
        mults = length_fns[0](columns, count)
        for length_fn in length_fns[1:]:
            extra = length_fn(columns, count)
            mults = [m * n for m, n in zip(mults, extra)]
        # The ACE option idiom stores scalar attributes as 0/1-element
        # sets, so multiplicities are almost always 0 or 1: a pure
        # filter (or a no-op) — take those paths before the general
        # repeat-expansion.
        if max(mults) <= 1:
            if min(mults) == 1:
                return dict(columns), count
            keep = [row for row, n in enumerate(mults) if n]
            return _take(columns, keep, count)
        out = {variable: [x for value, n in zip(column, mults)
                          for x in repeat(value, n)]
               for variable, column in columns.items()}
        return out, sum(mults)
    return stage


def _in_test_stage(matcher: Matcher, step: PlanStep,
                   var_class: Dict[str, str]) -> Stage:
    atom = step.atom
    assert isinstance(atom, InAtom)
    collection = compile_term(atom.collection, matcher, var_class)
    element = compile_term(atom.element, matcher, var_class)

    def stage(columns: Columns, count: int) -> Tuple[Columns, int]:
        collections = collection(columns, count)
        values = element(columns, count)
        # ``in`` hits WolSet's hash-based __contains__ — the linear
        # equality scan it replaces is what the scalar path does, with
        # the same equality relation, so the kept rows are identical.
        keep = [row for row in range(count)
                if isinstance(collections[row], (WolSet, WolList))
                and values[row] in collections[row]]
        return _take(columns, keep, count)
    return stage


def _eq_bind_stage(matcher: Matcher, step: PlanStep,
                   var_class: Dict[str, str]) -> Stage:
    assert isinstance(step.pattern_term, Var)
    name = step.pattern_term.name
    evaluator = compile_term(step.eval_term, matcher, var_class)

    def stage(columns: Columns, count: int) -> Tuple[Columns, int]:
        values = evaluator(columns, count)
        keep = [row for row, value in enumerate(values)
                if value is not MISSING]
        if len(keep) == count:
            out = dict(columns)
            out[name] = values
            return out, count
        out = {variable: [column[row] for row in keep]
               for variable, column in columns.items()}
        out[name] = [values[row] for row in keep]
        return out, len(keep)
    return stage


def _eq_test_stage(matcher: Matcher, step: PlanStep,
                   var_class: Dict[str, str]) -> Stage:
    atom = step.atom
    assert isinstance(atom, EqAtom)
    left = compile_term(atom.left, matcher, var_class)
    right = compile_term(atom.right, matcher, var_class)

    def stage(columns: Columns, count: int) -> Tuple[Columns, int]:
        lefts = left(columns, count)
        rights = right(columns, count)
        keep = [row for row in range(count)
                if lefts[row] is not MISSING
                and rights[row] is not MISSING
                and lefts[row] == rights[row]]
        return _take(columns, keep, count)
    return stage


def _compare_stage(matcher: Matcher, step: PlanStep,
                   var_class: Dict[str, str]) -> Stage:
    atom = step.atom
    left = compile_term(atom.left, matcher, var_class)
    right = compile_term(atom.right, matcher, var_class)
    neq = isinstance(atom, NeqAtom)
    strict = isinstance(atom, LtAtom)

    def stage(columns: Columns, count: int) -> Tuple[Columns, int]:
        lefts = left(columns, count)
        rights = right(columns, count)
        keep: List[int] = []
        for row in range(count):
            low, high = lefts[row], rights[row]
            if low is MISSING or high is MISSING:
                continue
            if neq:
                if low != high:
                    keep.append(row)
                continue
            try:
                holds = low < high if strict else low <= high
            except TypeError:
                continue
            if holds:
                keep.append(row)
        return _take(columns, keep, count)
    return stage


def _fallback_stage(matcher: Matcher, step: PlanStep) -> Stage:
    """Row-at-a-time escape hatch: re-materialise each row as a binding
    dict, run the scalar ``_expand_step``, re-columnarise the output.

    The known columns are read off the runtime batch (not frozen at
    compile time) so liveness filtering upstream narrows this stage's
    re-materialisation cost too."""
    binds = tuple(step.binds)

    def stage(columns: Columns, count: int) -> Tuple[Columns, int]:
        expand = matcher._expand_step
        known = tuple(name for name in columns
                      if not name.startswith(_ROW_PREFIX))
        hidden = tuple(name for name in columns
                       if name.startswith(_ROW_PREFIX))
        out_names = known + tuple(name for name in binds
                                  if name not in columns)
        out: Columns = {name: [] for name in out_names}
        for name in hidden:  # carried along, never shown to the matcher
            out[name] = []
        appends = [(name, out[name].append) for name in out_names]
        rows = 0
        for row in range(count):
            binding = {name: columns[name][row] for name in known}
            emitted = 0
            for extended in expand(step, binding):
                emitted += 1
                for name, append in appends:
                    append(extended.get(name))
            if emitted:
                rows += emitted
                for name in hidden:
                    out[name].extend(repeat(columns[name][row], emitted))
        return out, rows
    return stage


_VECTOR_STAGES = {
    STEP_MEMBER_INDEX: _index_stage,
    STEP_MEMBER_TEST: _member_test_stage,
    STEP_IN_TEST: _in_test_stage,
    STEP_EQ_BIND: _eq_bind_stage,
    STEP_EQ_TEST: _eq_test_stage,
    STEP_COMPARE: _compare_stage,
}


def _element_class(matcher: Matcher, class_name: str,
                   attr: str) -> Optional[str]:
    """The class of ``class_name.attr``'s collection elements, when the
    schema declares one — so a well-formed instance guarantees every
    stored element is a live oid of that class."""
    try:
        ctype = matcher.instance.schema.class_type(class_name)
    except Exception:
        return None
    if not isinstance(ctype, RecordType) or not ctype.has_field(attr):
        return None
    fty = ctype.field_type(attr)
    if (isinstance(fty, (SetType, ListType))
            and isinstance(fty.element, ClassType)):
        return fty.element.name
    return None


def _step_variables(step: PlanStep) -> frozenset:
    """Every variable a compiled stage may read for ``step``."""
    out = step.atom.variables()
    for term in (step.selector_term, step.eval_term, step.pattern_term):
        if term is not None:
            out |= term.variables()
    return out


def compile_steps(matcher: Matcher, steps: Sequence[PlanStep],
                  initial_names: Tuple[str, ...],
                  needed: Optional[frozenset] = None
                  ) -> Tuple[List[Tuple[bool, Stage]], Tuple[str, ...],
                             List[Optional[frozenset]]]:
    """Compile a plan into batch stages.

    Returns ``(stages, names, retains)``: per-step ``(vectorized,
    stage)`` pairs, the final column names in binding order, and — when
    ``needed`` (the variables the *caller* reads from the final batch)
    is given — per-step retention sets for liveness filtering: after
    stage ``i`` only ``retains[i]`` columns are still live, the rest
    are dead weight every later stage would copy through its row
    filters.  With ``needed`` None every retention is None (no
    filtering).  ``var_class`` tracks variables statically known to
    hold one class's oids (membership binds and passed membership
    tests), typing downstream projection gathers.
    """
    known: List[str] = list(initial_names)
    var_class: Dict[str, str] = {}
    var_collection: Dict[str, Tuple[str, str]] = {}
    stages: List[Tuple[bool, Stage]] = []
    reads: List[frozenset] = []
    # Lengths-only twins of the in-generate stages, compiled at the
    # same point of the pass (var_class/var_collection are mutated as
    # we go, so a later compile could take a different branch).
    length_of: Dict[int, object] = {}
    for index, step in enumerate(steps):
        extra_reads: frozenset = frozenset()
        if step_vectorizable(step):
            mode = step.mode
            if mode == STEP_MEMBER_SCAN:
                stage = _scan_stage(matcher, step)
            elif mode == STEP_IN_GENERATE:
                collection = step.atom.collection
                if (isinstance(collection, Var)
                        and collection.name in var_collection):
                    # The stage reads the rewrite's subject column,
                    # not the collection variable (see the rewrite in
                    # ``_in_generate_stage``) — keep the subject live.
                    extra_reads = frozenset(
                        (var_collection[collection.name][0],))
                stage = _in_generate_stage(matcher, step, var_class,
                                           var_collection)
                if isinstance(step.atom.element, Var):
                    length_of[index] = _in_generate_lengths(
                        matcher, step, var_class, var_collection)
            else:
                stage = _VECTOR_STAGES[mode](matcher, step, var_class)
            stages.append((True, stage))
        else:
            stages.append((False, _fallback_stage(matcher, step)))
        reads.append(_step_variables(step) | extra_reads)
        atom = step.atom
        if isinstance(atom, MemberAtom) and isinstance(atom.element, Var):
            var_class[atom.element.name] = atom.class_name
        if (step.mode == STEP_IN_GENERATE
                and isinstance(atom.element, Var)):
            # Elements drawn from a class-typed collection attribute
            # are oids of that class (instance well-formedness), so
            # downstream projections off them can gather too.
            collection = atom.collection
            if (isinstance(collection, Var)
                    and collection.name in var_collection):
                source_var, source_attr = var_collection[collection.name]
            elif (isinstance(collection, Proj)
                    and isinstance(collection.subject, Var)):
                source_var, source_attr = (collection.subject.name,
                                           collection.attr)
            else:
                source_var = None
            if source_var is not None and source_var in var_class:
                element_class = _element_class(
                    matcher, var_class[source_var], source_attr)
                if element_class is not None:
                    var_class[atom.element.name] = element_class
        if (step.mode == STEP_EQ_BIND
                and isinstance(step.pattern_term, Var)
                and isinstance(step.eval_term, Proj)
                and isinstance(step.eval_term.subject, Var)):
            var_collection[step.pattern_term.name] = (
                step.eval_term.subject.name, step.eval_term.attr)
        known.extend(step.binds)
    retains: List[Optional[frozenset]] = [None] * len(stages)
    if needed is not None:
        alive = frozenset(needed)
        for index in range(len(stages) - 1, -1, -1):
            retains[index] = alive
            alive |= reads[index]
        # Fuse the trailing run of in-generators binding dead element
        # variables (not needed by the caller, not read by any later
        # step) into one multiplicity-expansion stage: their elements
        # are never looked at, only how many rows each one multiplies
        # out to.
        blocked = set(needed)
        first = len(stages)
        for index in range(len(stages) - 1, -1, -1):
            length_fn = length_of.get(index)
            if (length_fn is None
                    or steps[index].atom.element.name in blocked):
                break
            first = index
            blocked |= reads[index]
        if first < len(stages):
            fused = [length_of[i] for i in range(first, len(stages))]
            stages[first:] = [(True, _fused_expand_stage(fused))]
            retains[first:] = [frozenset(needed)]
    return stages, tuple(known), retains


# ----------------------------------------------------------------------
# Batch runners
# ----------------------------------------------------------------------

def run_steps_columnar(matcher: Matcher, steps: Sequence[PlanStep],
                       columns: Columns, count: int, stats=None,
                       needed: Optional[frozenset] = None
                       ) -> Tuple[Tuple[str, ...], Columns, int]:
    """Run a plan over an initial batch; returns final names/columns.

    ``stats`` is any object with ``vectorized_steps``,
    ``fallback_steps``, ``vectorized_rows`` and ``max_batch_rows``
    counters (``ExecutionStats`` and ``IncrementalStats`` both qualify).

    With ``needed``, dead binding columns are dropped between stages
    (liveness filtering): the final batch holds only the columns the
    caller reads, so callers must index it by key, not by the full
    ``names`` tuple.
    """
    stages, names, retains = compile_steps(
        matcher, tuple(steps), tuple(columns), needed)
    # One context-variable read decides whether per-step spans exist at
    # all — the untraced hot path keeps its original loop body.
    tracing = current_span() is not None
    for index, ((vectorized, stage), retain) in enumerate(
            zip(stages, retains)):
        if count == 0:
            return names, {name: [] for name in names}, 0
        if stats is not None:
            if vectorized:
                stats.vectorized_steps += 1
                stats.vectorized_rows += count
                if count > stats.max_batch_rows:
                    stats.max_batch_rows = count
            else:
                stats.fallback_steps += 1
        if tracing:
            # Stages align with plan steps one-to-one except when a
            # trailing run of dead in-generators was fused into a
            # single expansion stage (then the last stage covers
            # steps[index:]).
            fused = (index == len(stages) - 1
                     and len(stages) != len(steps))
            label = ("fused-expand "
                     f"×{len(steps) - index}" if fused
                     else f"{steps[index].mode} {steps[index].atom}")
            with trace_span(
                    f"{index + 1}. {label}",
                    mode="vec" if vectorized else "fallback",
                    rows_in=count) as step_span:
                columns, count = stage(columns, count)
                step_span.set(rows_out=count)
        else:
            columns, count = stage(columns, count)
        if retain is not None and not retain.issuperset(columns):
            prefix = _ROW_PREFIX
            cut = len(prefix)
            columns = {name: column for name, column in columns.items()
                       if name in retain
                       or (name.startswith(prefix) and name[cut:] in retain)}
    if count == 0:
        return names, {name: [] for name in names}, 0
    return names, columns, count


def stream_plan_columnar(matcher: Matcher, steps: Sequence[PlanStep],
                         initial: Optional[Binding], stats=None):
    """Binding-dict iterator over a columnar run (scalar-compatible)."""
    columns: Columns = {name: [value]
                        for name, value in (initial or {}).items()}
    names, columns, count = run_steps_columnar(
        matcher, steps, columns, 1, stats)
    for row in range(count):
        yield {name: columns[name][row] for name in names}


def seeded_batch_columnar(matcher: Matcher, steps: Sequence[PlanStep],
                          variable: str, oids: Sequence[Oid], stats=None):
    """Binding iterator for a whole seed vector in one batch.

    Equivalent to running the seeded plan once per oid (the scalar
    incremental loop) — batch rows stay grouped by seed oid in seed
    order, so downstream deduplication sees bindings in the same order.
    """
    columns: Columns = {variable: list(oids)}
    names, columns, count = run_steps_columnar(
        matcher, steps, columns, len(oids), stats)
    for row in range(count):
        yield {name: columns[name][row] for name in names}
