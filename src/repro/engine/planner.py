"""Program-level join planning for normal-form execution.

The dynamic matcher (:class:`repro.semantics.match.Matcher`) re-derives an
atom order for every partial binding and rediscovers index selectors per
candidate enumeration; each :class:`~repro.engine.executor.Executor` also
builds its hash indexes lazily and privately.  For multi-clause programs
(the genome and Relibase workloads) that cost is paid over and over.

This module plans a whole :class:`~repro.lang.ast.Program` once:

* per clause, a :class:`JoinPlan` — a fixed atom order computed statically
  by simulating variable boundness (tests first, deterministic binds next,
  generators last, cheapest generator first by class cardinality, indexed
  generators preferred), compiled into
  :class:`~repro.semantics.match.PlanStep` records the matcher executes
  without any per-binding re-analysis;
* across clauses, one shared :class:`~repro.semantics.match.IndexPool`
  whose indexes are prebuilt from the union of every clause's selectors,
  so an index over e.g. ``(SequenceT, name)`` used by three clauses is
  built exactly once.

Planning is purely static: it reads only clause syntax plus class
cardinalities of the source instance, so a plan is deterministic for a
given (program, instance-size) pair and ``explain()`` output is stable.
The planned and naive paths enumerate identical solution sets — the
differential tests in ``tests/engine/test_planner.py`` and
``benchmarks/bench_planner.py`` hold the planner to that.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..lang.ast import (
    Atom, Clause, EqAtom, InAtom, LeqAtom, LtAtom, MemberAtom, NeqAtom, Proj,
    Term, Var)
from ..model.instance import Instance
from ..normalization.optimize import constant_bindings, definition_chains
from ..semantics.match import (IndexPool, PlanStep, STEP_COMPARE,
                               STEP_EQ_BIND, STEP_EQ_TEST, STEP_IN_GENERATE,
                               STEP_IN_TEST, STEP_MEMBER_INDEX,
                               STEP_MEMBER_SCAN, STEP_MEMBER_TEST,
                               _is_pattern)

#: Assumed cardinality of a collection-valued generator (``X in Q.tags``)
#: and of a class whose extent size is unknown at planning time.
DEFAULT_COLLECTION_CARDINALITY = 8.0
DEFAULT_CLASS_CARDINALITY = 64.0
#: Assumed cost of an indexed candidate enumeration (a hash probe that
#: typically returns zero or one oid).
INDEXED_CARDINALITY = 1.0


class PlanError(Exception):
    """Raised when a clause body admits no static evaluation order."""


@dataclass(frozen=True)
class JoinPlan:
    """A fixed evaluation order for one clause body.

    ``order`` maps step position to the atom's position in the clause
    body; ``atoms_reordered`` counts positions the planner moved.
    ``index_paths`` names the (class, projection path) indexes the plan
    probes — the program planner prebuilds their union across clauses.
    ``estimated_cost`` is the product-sum of generator cardinalities used
    to pick the order; it is an ordinal, not a time prediction.
    """

    clause: Clause
    steps: Tuple[PlanStep, ...]
    order: Tuple[int, ...]
    atoms_reordered: int
    index_paths: Tuple[Tuple[str, Tuple[str, ...]], ...]
    estimated_cost: float

    @property
    def label(self) -> str:
        return self.clause.name or str(self.clause)

    def explain(self) -> str:
        """A stable, human-readable rendering of the plan.

        Each step is tagged ``[vec]`` or ``[fallback]`` by the static
        vectorizability rule (:func:`repro.engine.columnar.
        step_vectorizable`) — the same predicate the columnar compiler
        applies, so the rendering predicts exactly which steps run as
        batch stages and which drop to row-at-a-time enumeration.
        """
        from .columnar import step_vectorizable
        lines = [
            f"plan {self.label}: {len(self.steps)} steps, "
            f"{self.atoms_reordered} reordered, "
            f"est. cost {self.estimated_cost:g}"
        ]
        for position, step in enumerate(self.steps):
            tag = " [vec]" if step_vectorizable(step) else " [fallback]"
            note = ""
            if step.mode == STEP_MEMBER_INDEX:
                path = ".".join(step.selector_path or ())
                note = f"  [index ({step.atom.class_name}, {path}) = " \
                       f"{step.selector_term}]"
            elif step.mode == STEP_MEMBER_SCAN:
                note = f"  [scan {step.atom.class_name}]"
            lines.append(
                f"  {position + 1}. {step.mode:<12} {step.atom}{tag}{note}")
        return "\n".join(lines)


@dataclass(frozen=True)
class ProgramPlan:
    """Join plans for every clause of a program plus the shared pool.

    ``prebuilt_indexes`` counts the indexes materialised at planning
    time; per-run :class:`~repro.engine.executor.ExecutionStats` report
    only in-run deltas, so this is the number to add when attributing
    total index builds to one planned run.
    """

    plans: Tuple[JoinPlan, ...]
    pool: IndexPool
    unplanned: Tuple[str, ...] = ()
    prebuilt_indexes: int = 0

    def plan_for(self, clause: Clause) -> Optional[JoinPlan]:
        for plan in self.plans:
            if plan.clause is clause or plan.clause == clause:
                return plan
        return None

    def index_paths(self) -> Tuple[Tuple[str, Tuple[str, ...]], ...]:
        """Union of index keys across clauses, deduplicated and sorted."""
        keys: Set[Tuple[str, Tuple[str, ...]]] = set()
        for plan in self.plans:
            keys.update(plan.index_paths)
        return tuple(sorted(keys))

    def explain(self) -> str:
        lines = [f"program plan: {len(self.plans)} clause(s), "
                 f"{len(self.index_paths())} shared index(es)"]
        for class_name, path in self.index_paths():
            lines.append(f"  index ({class_name}, {'.'.join(path)})")
        for plan in self.plans:
            lines.append(plan.explain())
        if self.unplanned:
            lines.append("unplanned (dynamic fallback): "
                         + ", ".join(self.unplanned))
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Static readiness (mirrors Matcher._readiness over a boundness set)
# ----------------------------------------------------------------------

def _known(term: Term, bound: Set[str]) -> bool:
    """Static mirror of ``is_evaluable``: every variable already bound."""
    return term.variables() <= bound


def _classify(atom: Atom, bound: Set[str]) -> Optional[str]:
    """The step mode ``atom`` admits under ``bound``, or None.

    Exactly mirrors :meth:`Matcher._readiness`, with the binding replaced
    by the set of statically-bound variables — readiness depends only on
    *which* variables are bound, never on their values, so the static and
    dynamic classifications agree on every execution path.
    """
    if isinstance(atom, MemberAtom):
        if _known(atom.element, bound):
            return STEP_MEMBER_TEST
        if _is_pattern(atom.element):
            return STEP_MEMBER_SCAN
        return None
    if isinstance(atom, InAtom):
        if not _known(atom.collection, bound):
            return None
        if _known(atom.element, bound):
            return STEP_IN_TEST
        if _is_pattern(atom.element):
            return STEP_IN_GENERATE
        return None
    if isinstance(atom, EqAtom):
        left_known = _known(atom.left, bound)
        right_known = _known(atom.right, bound)
        if left_known and right_known:
            return STEP_EQ_TEST
        if left_known and _is_pattern(atom.right):
            return STEP_EQ_BIND
        if right_known and _is_pattern(atom.left):
            return STEP_EQ_BIND
        return None
    if isinstance(atom, (NeqAtom, LtAtom, LeqAtom)):
        if _known(atom.left, bound) and _known(atom.right, bound):
            return STEP_COMPARE
        return None
    return None


def _proj_chain(term: Term) -> Optional[Tuple[str, Tuple[str, ...]]]:
    """Decompose a pure projection chain ``X.a.b`` into (root, path)."""
    path: List[str] = []
    while isinstance(term, Proj):
        path.append(term.attr)
        term = term.subject
    if not isinstance(term, Var):
        return None
    return term.name, tuple(reversed(path))


class _SelectorFinder:
    """Static index-selector discovery, cached per clause.

    Definition chains from a generator's element variable and the body's
    constant equations never change while planning one clause (a chain
    atom whose subject derives from the still-unbound element cannot have
    executed yet), so both are computed once and reused across the greedy
    loop's candidate evaluations — the static twin of
    ``Matcher._find_selector`` without its per-call re-analysis.

    Beyond SNF definition chains (``V = X.a``), direct projection
    equations ``X.a.b = t`` — the shape of un-normalised *constraint*
    bodies like keys and functional dependencies — also yield selectors:
    when ``t`` is evaluable under the bound set, a scan of ``X``'s class
    narrows to an index probe on path ``a.b`` with ``t``'s value.  That
    turns the quadratic self-joins of key/FD audits into linear probes.
    """

    def __init__(self, body: Sequence[Atom]) -> None:
        self._body = body
        self._constants = constant_bindings(body)
        self._chains: Dict[str, Dict[str, Tuple[str, ...]]] = {}
        self._eq_selectors: Dict[str, List[Tuple[Tuple[str, ...], Term]]] = {}
        for atom in body:
            if not isinstance(atom, EqAtom):
                continue
            for side, other in ((atom.left, atom.right),
                                (atom.right, atom.left)):
                chain = _proj_chain(side)
                if chain is None or not chain[1]:
                    continue
                root, path = chain
                self._eq_selectors.setdefault(root, []).append((path, other))

    def selector_for(self, element: str, bound: Set[str]
                     ) -> Optional[Tuple[Tuple[str, ...], Term]]:
        """A (path, value term) pair whose value is known at this point."""
        chains = self._chains.get(element)
        if chains is None:
            chains = definition_chains(self._body, element)
            self._chains[element] = chains
        candidates: List[Tuple[Tuple[str, ...], Term]] = []
        for name, path in chains.items():
            if not path:
                continue
            if name in bound:
                candidates.append((path, Var(name)))
            elif name in self._constants:
                candidates.append((path, self._constants[name]))
        for path, term in self._eq_selectors.get(element, ()):
            if term.variables() <= bound:
                candidates.append((path, term))
        if not candidates:
            return None
        # Prefer the shortest path (cheapest index build), then the
        # lexicographically first path/term, for deterministic plans.
        return min(candidates,
                   key=lambda cand: (len(cand[0]), cand[0], str(cand[1])))


def _compile_step(atom: Atom, mode: str, bound: Set[str],
                  selectors: Optional[_SelectorFinder] = None) -> PlanStep:
    """Freeze one classified atom into an executable step."""
    if (mode == STEP_MEMBER_SCAN and selectors is not None
            and isinstance(atom.element, Var)):
        selector = selectors.selector_for(atom.element.name, bound)
        if selector is not None:
            path, value_term = selector
            return PlanStep(atom, STEP_MEMBER_INDEX,
                            binds=tuple(sorted(atom.element.variables()
                                               - bound)),
                            selector_path=path, selector_term=value_term)
    if mode == STEP_EQ_BIND:
        assert isinstance(atom, EqAtom)
        if _known(atom.left, bound):
            eval_term, pattern = atom.left, atom.right
        else:
            eval_term, pattern = atom.right, atom.left
        return PlanStep(atom, mode,
                        binds=tuple(sorted(pattern.variables() - bound)),
                        eval_term=eval_term, pattern_term=pattern)
    new_vars: Set[str] = set()
    if mode == STEP_MEMBER_SCAN:
        new_vars = set(atom.element.variables()) - bound
    elif mode == STEP_IN_GENERATE:
        new_vars = set(atom.element.variables()) - bound
    return PlanStep(atom, mode, binds=tuple(sorted(new_vars)))


def _generator_cost(step: PlanStep,
                    cardinalities: Mapping[str, int]) -> float:
    """Estimated number of candidate bindings the step enumerates."""
    if step.mode == STEP_MEMBER_INDEX:
        return INDEXED_CARDINALITY
    if step.mode == STEP_MEMBER_SCAN:
        return float(cardinalities.get(step.atom.class_name,
                                       DEFAULT_CLASS_CARDINALITY))
    if step.mode == STEP_IN_GENERATE:
        return DEFAULT_COLLECTION_CARDINALITY
    return 1.0


# ----------------------------------------------------------------------
# Clause and program planning
# ----------------------------------------------------------------------

def plan_clause(clause: Clause,
                cardinalities: Optional[Mapping[str, int]] = None,
                initial_bound: Iterable[str] = ()) -> JoinPlan:
    """Compute a fixed evaluation order for one clause body.

    Greedy, boundness-simulating ordering: at each point run every ready
    test immediately (prune first), then a deterministic bind (they never
    multiply bindings), and only then open the cheapest ready generator —
    indexed probes before scans, smaller extents before larger ones.
    Raises :class:`PlanError` when no atom is ever ready (the clause is
    not range-restricted); callers fall back to the dynamic matcher.
    """
    cardinalities = dict(cardinalities or {})
    bound: Set[str] = set(initial_bound)
    remaining: List[Tuple[int, Atom]] = list(enumerate(clause.body))
    selectors = _SelectorFinder(clause.body)
    steps: List[PlanStep] = []
    order: List[int] = []
    estimated = 0.0
    frontier = 1.0
    index_paths: Set[Tuple[str, Tuple[str, ...]]] = set()

    while remaining:
        chosen: Optional[int] = None
        chosen_step: Optional[PlanStep] = None
        best_cost = float("inf")
        for slot, (position, atom) in enumerate(remaining):
            mode = _classify(atom, bound)
            if mode is None:
                continue
            step = _compile_step(atom, mode, bound, selectors)
            if step.mode in (STEP_MEMBER_TEST, STEP_IN_TEST,
                             STEP_EQ_TEST, STEP_COMPARE):
                chosen, chosen_step = slot, step
                best_cost = 0.0
                break
            if step.mode == STEP_EQ_BIND:
                chosen, chosen_step = slot, step
                best_cost = 0.0
                break
            cost = _generator_cost(step, cardinalities)
            if cost < best_cost:
                chosen, chosen_step = slot, step
                best_cost = cost
        if chosen is None or chosen_step is None:
            pending_text = ", ".join(str(a) for _, a in remaining)
            raise PlanError(
                f"clause {clause.name or clause}: no atom is statically "
                f"ready; pending: {pending_text} (is the clause "
                f"range-restricted?)")
        position, _ = remaining.pop(chosen)
        order.append(position)
        steps.append(chosen_step)
        bound.update(chosen_step.binds)
        if chosen_step.mode == STEP_MEMBER_INDEX:
            index_paths.add((chosen_step.atom.class_name,
                             chosen_step.selector_path))
        if best_cost > 0.0:
            frontier *= best_cost
            estimated += frontier

    reordered = sum(1 for step_pos, body_pos in enumerate(order)
                    if step_pos != body_pos)
    return JoinPlan(clause=clause, steps=tuple(steps), order=tuple(order),
                    atoms_reordered=reordered,
                    index_paths=tuple(sorted(index_paths)),
                    estimated_cost=estimated)


def plan_program(program: Iterable[Clause], instance: Instance,
                 pool: Optional[IndexPool] = None,
                 prebuild: bool = True) -> ProgramPlan:
    """Plan every clause of a program against one source instance.

    Builds (or reuses) a shared :class:`IndexPool` and, with ``prebuild``,
    materialises the union of all clauses' index selectors up front so no
    clause pays a lazy index build mid-join.  Clauses that cannot be
    planned statically are listed in ``unplanned`` and execute on the
    dynamic path.
    """
    pool = pool if pool is not None else IndexPool(instance)
    cardinalities = instance.class_sizes()
    plans: List[JoinPlan] = []
    unplanned: List[str] = []
    for clause in program:
        try:
            plans.append(plan_clause(clause, cardinalities))
        except PlanError:
            unplanned.append(clause.name or str(clause))
    prebuilt = 0
    if prebuild:
        keys = sorted({key for plan in plans for key in plan.index_paths})
        before = pool.builds
        pool.prebuild(keys)
        prebuilt = pool.builds - before
    return ProgramPlan(plans=tuple(plans), pool=pool,
                       unplanned=tuple(unplanned),
                       prebuilt_indexes=prebuilt)


# ----------------------------------------------------------------------
# Shard variants (parallel execution)
# ----------------------------------------------------------------------

def shardable_step(plan: JoinPlan) -> Optional[int]:
    """Position of the plan's *driving* generator, or None.

    The driving generator is the first membership step that enumerates
    candidates from a class extent (scan) or an index probe.  Every
    clause solution binds that atom to exactly one oid, so partitioning
    its candidates by :func:`repro.semantics.match.shard_of` partitions
    the solution set — the one place a shard restriction is both
    sufficient and free of double counting.  A plan with no such step
    (every member atom is a test; generation comes from ``in`` atoms or
    deterministic binds alone) cannot be sharded and must run whole on
    one worker.
    """
    for position, step in enumerate(plan.steps):
        if step.mode in (STEP_MEMBER_SCAN, STEP_MEMBER_INDEX):
            return position
    return None


def shard_join_plan(plan: JoinPlan, shard_index: int,
                    shard_count: int) -> Optional[JoinPlan]:
    """The shard ``shard_index``-of-``shard_count`` variant of a plan.

    Identical to ``plan`` except that the driving generator only
    enumerates the oids of its shard; the remaining steps (tests, index
    probes into *other* extents) still see the full instance, so joins
    across shard boundaries work unchanged.  Returns None when the plan
    has no driving generator (see :func:`shardable_step`).
    """
    if not 0 <= shard_index < shard_count:
        raise PlanError(
            f"shard index {shard_index} outside 0..{shard_count - 1}")
    position = shardable_step(plan)
    if position is None:
        return None
    if shard_count == 1:
        return plan
    steps = list(plan.steps)
    steps[position] = replace(steps[position],
                              shard=(shard_index, shard_count))
    return replace(plan, steps=tuple(steps))


def shard_constraint_plan(plan: ConstraintPlan, shard_index: int,
                          shard_count: int) -> Optional[ConstraintPlan]:
    """Shard a constraint audit plan by its *body* enumeration.

    Only the body join is sharded — the head-satisfiability probe runs
    per body solution with the body's variables bound and must see the
    whole instance regardless of which worker found the solution.
    Returns None when the body has no planned driving generator (either
    the body is on the dynamic fallback or it admits no generator); such
    constraints audit whole on shard 0.
    """
    if plan.body is None:
        return None
    body = shard_join_plan(plan.body, shard_index, shard_count)
    if body is None:
        return None
    return replace(plan, body=body)


# ----------------------------------------------------------------------
# Delta-seed planning (semi-naive incremental execution)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class DeltaSeed:
    """One seeded variant of a clause plan for incremental execution.

    ``position`` is the member atom's index in the clause body,
    ``class_name`` the extent it generates from and ``variable`` its
    element variable.  ``plan`` is the clause's join order recompiled
    with ``variable`` pre-bound: the member atom collapses to a
    membership test and the remaining atoms join outward from the seed,
    probing the shared index pool.  Running the plan once per changed
    oid of ``class_name`` enumerates exactly the clause's solutions
    that bind this atom to a changed object — the delta-join of
    semi-naive evaluation.
    """

    position: int
    class_name: str
    variable: str
    plan: Optional[JoinPlan]


def plan_delta_seeds(clause: Clause,
                     cardinalities: Optional[Mapping[str, int]] = None
                     ) -> Tuple[DeltaSeed, ...]:
    """Seeded join plans, one per member atom of the clause body.

    A member atom whose element is not a plain variable (a pattern the
    seed oid would have to be unified into) or whose seeded body admits
    no static order gets ``plan=None``; the incremental engine treats
    such clauses as unseedable and falls back to a full per-clause
    recompute under deltas that touch them.
    """
    seeds: List[DeltaSeed] = []
    for position, atom in enumerate(clause.body):
        if not isinstance(atom, MemberAtom):
            continue
        if not isinstance(atom.element, Var):
            seeds.append(DeltaSeed(position, atom.class_name, "", None))
            continue
        try:
            plan = plan_clause(clause, cardinalities,
                               initial_bound={atom.element.name})
        except PlanError:
            plan = None
        seeds.append(DeltaSeed(position, atom.class_name,
                               atom.element.name, plan))
    return tuple(seeds)


# ----------------------------------------------------------------------
# Constraint-audit planning
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ConstraintPlan:
    """Join plans for one constraint clause's audit.

    Auditing a clause is two nested joins: enumerate every *body*
    solution, then probe whether the *head* is satisfiable under it
    (:func:`repro.semantics.satisfaction.clause_violations`).  Both are
    compiled here — the head probe with the body's variables declared as
    ``initial_bound``, since every body solution binds exactly them.
    Either half may be ``None``, in which case that half runs on the
    dynamic matcher (the clause still shares the audit's index pool).
    """

    clause: Clause
    body: Optional[JoinPlan]
    head: Optional[JoinPlan]

    @property
    def label(self) -> str:
        return self.clause.name or str(self.clause)

    def index_paths(self) -> Tuple[Tuple[str, Tuple[str, ...]], ...]:
        keys: Set[Tuple[str, Tuple[str, ...]]] = set()
        for half in (self.body, self.head):
            if half is not None:
                keys.update(half.index_paths)
        return tuple(sorted(keys))

    def explain(self) -> str:
        lines = [f"constraint {self.label}:"]
        for title, half in (("body", self.body), ("head", self.head)):
            if half is None:
                lines.append(f"  {title}: dynamic fallback")
            else:
                lines.append("  " + half.explain().replace(
                    "\n", "\n  "))
        return "\n".join(lines)


@dataclass(frozen=True)
class AuditPlan:
    """One plan per constraint plus the shared, prebuilt index pool.

    ``plans`` is index-aligned with the clause sequence given to
    :func:`plan_audit`.  ``prebuilt_indexes`` counts the indexes
    materialised at planning time (the per-run pool deltas reported by
    :class:`~repro.constraints.audit.ConstraintReport` exclude them).
    """

    plans: Tuple[ConstraintPlan, ...]
    pool: IndexPool
    prebuilt_indexes: int = 0

    @property
    def planned_bodies(self) -> int:
        return sum(1 for plan in self.plans if plan.body is not None)

    @property
    def planned_heads(self) -> int:
        return sum(1 for plan in self.plans if plan.head is not None)

    def plan_for(self, clause: Clause) -> Optional[ConstraintPlan]:
        for plan in self.plans:
            if plan.clause is clause or plan.clause == clause:
                return plan
        return None

    def index_paths(self) -> Tuple[Tuple[str, Tuple[str, ...]], ...]:
        keys: Set[Tuple[str, Tuple[str, ...]]] = set()
        for plan in self.plans:
            keys.update(plan.index_paths())
        return tuple(sorted(keys))

    def explain(self) -> str:
        lines = [f"audit plan: {len(self.plans)} constraint(s), "
                 f"{self.planned_bodies} planned bodies, "
                 f"{self.planned_heads} planned head probes, "
                 f"{len(self.index_paths())} shared index(es)"]
        for class_name, path in self.index_paths():
            lines.append(f"  index ({class_name}, {'.'.join(path)})")
        for plan in self.plans:
            lines.append(plan.explain())
        return "\n".join(lines)


def plan_constraint(clause: Clause,
                    cardinalities: Optional[Mapping[str, int]] = None
                    ) -> ConstraintPlan:
    """Compile one constraint clause's body and head-probe join plans.

    Unlike transformation bodies, constraint bodies are usually *not* in
    SNF — key and FD shapes join two extents on raw projection equations
    — so the selector discovery of :class:`_SelectorFinder` matters most
    here.  A half that is not range-restricted (no static order exists)
    is left to the dynamic matcher rather than rejected.
    """
    body_plan: Optional[JoinPlan] = None
    try:
        body_plan = plan_clause(clause, cardinalities)
    except PlanError:
        pass
    body_vars: Set[str] = set()
    for atom in clause.body:
        body_vars |= atom.variables()
    # plan_clause orders a clause's *body*; wrap the head atoms as a
    # body (Clause insists on a non-empty head, so mirror them there).
    head_probe = Clause(tuple(clause.head), tuple(clause.head),
                        name=f"{clause.name or 'constraint'}::head")
    head_plan: Optional[JoinPlan] = None
    try:
        head_plan = plan_clause(head_probe, cardinalities,
                                initial_bound=body_vars)
    except PlanError:
        pass
    return ConstraintPlan(clause=clause, body=body_plan, head=head_plan)


def plan_audit(constraints: Iterable[Clause], instance: Instance,
               pool: Optional[IndexPool] = None,
               prebuild: bool = True) -> AuditPlan:
    """Plan an entire constraint audit against one instance.

    Builds (or reuses) a shared :class:`IndexPool` and, with
    ``prebuild``, materialises the union of every constraint's body and
    head-probe selectors up front — the whole audit then runs over one
    set of indexes instead of N private per-clause matchers.
    """
    pool = pool if pool is not None else IndexPool(instance)
    cardinalities = instance.class_sizes()
    plans = tuple(plan_constraint(clause, cardinalities)
                  for clause in constraints)
    prebuilt = 0
    if prebuild:
        keys = sorted({key for plan in plans for key in plan.index_paths()})
        before = pool.builds
        pool.prebuild(keys)
        prebuilt = pool.builds - before
    return AuditPlan(plans=plans, pool=pool, prebuilt_indexes=prebuilt)
