"""Schema and instance evolution: operators generating WOL programs
(paper Section 6 future work), schema diffing, and instance deltas."""

from .operators import Evolution, EvolutionError, EvolutionResult
from .diff import DiffError, SchemaDiff, diff_schemas
from .delta import (Delta, DeltaError, compose_deltas, delta_between,
                    delta_from_json, delta_to_json, dump_delta, load_delta)

__all__ = ["Evolution", "EvolutionError", "EvolutionResult",
           "DiffError", "SchemaDiff", "diff_schemas",
           "Delta", "DeltaError", "compose_deltas", "delta_between",
           "delta_from_json", "delta_to_json", "dump_delta", "load_delta"]
