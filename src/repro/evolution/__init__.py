"""Schema-evolution operators generating WOL programs (paper Section 6
future work)."""

from .operators import Evolution, EvolutionError, EvolutionResult
from .diff import DiffError, SchemaDiff, diff_schemas

__all__ = ["Evolution", "EvolutionError", "EvolutionResult",
           "DiffError", "SchemaDiff", "diff_schemas"]
