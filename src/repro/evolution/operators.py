"""Schema-evolution operators that generate WOL programs.

The paper closes with: "there is a potential for graphical schema
manipulation tools generating WOL transformation programs" (Section 6),
and its introduction criticises schema-manipulation approaches that
"neglect to describe the effect of the transformations on the actual
data", noting that a single manipulation admits several readings — e.g.
making an optional attribute required can mean "insert a default value"
or "delete any objects" (Section 1).

This module is that tool's backend: each operator records a schema
manipulation, and :meth:`Evolution.build` emits the evolved schema *plus*
the WOL transformation program that gives the manipulation a precise,
inspectable data semantics.  The two readings of optional-to-required are
both available (``policy="delete"`` / ``policy="default"``).

Supported operators:

=====================  ===================================================
operator               effect
=====================  ===================================================
``copy_class``         copy a class (rename it, rename/drop/add
                       attributes); references follow the mapping
``make_required``      optional (set-valued) attribute -> required scalar,
                       with the delete or default policy
``split_class``        split a class by a variant attribute (Person ->
                       Male/Female)
``reify_reference``    turn a reference attribute into a link class
                       (spouse -> Marriage)
=====================  ===================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..lang.ast import (Clause, EqAtom, InAtom, KIND_TRANSFORMATION,
                        MemberAtom, Program, Proj, SkolemTerm, Term, Var,
                        VariantTerm)
from ..model.keys import KeyFunction, KeySpec, KeyedSchema
from ..model.schema import Schema
from ..model.types import (ClassType, RecordType, SetType, Type,
                           VariantType)
from ..model.values import Value
from ..morphase.metadata import key_clause_for
from ..morphase.system import Morphase


class EvolutionError(Exception):
    """Raised for unsupported or inconsistent operator applications."""


@dataclass
class EvolutionResult:
    """The evolved schema, the generated program, and fill-in defaults.

    Target classes keeping their source names are built under internal
    aliases (WOL transformations need disjoint namespaces);
    ``working_schema``/``program`` use the aliases, ``target_schema`` has
    the final names, and :meth:`transform` restores them automatically.
    """

    target_schema: KeyedSchema
    working_schema: KeyedSchema
    program: Program
    defaults: Dict[Tuple[str, str], Value]
    restore_map: Dict[str, str]
    optional_attributes: frozenset = frozenset()

    def morphase(self, source: KeyedSchema, **kwargs) -> Morphase:
        """A Morphase over the *working* (alias) schema."""
        if "options" not in kwargs:
            from ..normalization import NormalizationOptions
            kwargs["options"] = NormalizationOptions(
                optional_attributes=self.optional_attributes)
        return Morphase([source], self.working_schema, self.program,
                        **kwargs)

    def transform(self, source: KeyedSchema, instance, **kwargs):
        """Run the evolution and restore the final class names."""
        from ..model.rename import rename_instance_classes
        morphase = self.morphase(source)
        defaults = kwargs.pop("defaults", self.defaults)
        inverted = {public: internal
                    for internal, public in self.restore_map.items()}
        working_defaults = {
            (inverted.get(cname, cname), attr): value
            for (cname, attr), value in (defaults or {}).items()}
        result = morphase.transform(instance, defaults=working_defaults,
                                    **kwargs)
        if not self.restore_map:
            return result.target
        return rename_instance_classes(result.target, self.restore_map)


@dataclass
class _CopySpec:
    source_class: str
    target_class: str
    renames: Dict[str, str]
    drops: Tuple[str, ...]
    adds: Dict[str, Tuple[Type, Value]]
    required: Dict[str, Tuple[str, Optional[Value]]]  # attr -> (policy, default)


@dataclass
class _SplitSpec:
    source_class: str
    variant_attr: str
    mapping: Dict[str, str]  # variant label -> target class


@dataclass
class _ReifySpec:
    source_class: str
    attr: str
    link_class: str
    subject_target: str
    object_target: str
    subject_label: str
    object_label: str
    subject_filter: Optional[Tuple[str, str]]  # (variant attr, label)
    object_filter: Optional[Tuple[str, str]]


class Evolution:
    """Accumulates operators against a keyed source schema."""

    def __init__(self, source: KeyedSchema,
                 target_name: str = "Evolved") -> None:
        self.source = source
        self.target_name = target_name
        self._copies: List[_CopySpec] = []
        self._splits: List[_SplitSpec] = []
        self._reifies: List[_ReifySpec] = []
        #: source class -> target class(es); split classes map to many.
        self._class_map: Dict[str, List[str]] = {}
        #: clauses generated as side effects (optional-attribute copies).
        self._extra_clauses: List[Clause] = []

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------
    def copy_class(self, source_class: str,
                   target_class: Optional[str] = None,
                   renames: Optional[Mapping[str, str]] = None,
                   drops: Sequence[str] = (),
                   adds: Optional[Mapping[str, Tuple[Type, Value]]] = None,
                   ) -> "Evolution":
        """Copy ``source_class`` (optionally renamed/reshaped)."""
        self._require_class(source_class)
        spec = _CopySpec(
            source_class=source_class,
            target_class=target_class or source_class,
            renames=dict(renames or {}),
            drops=tuple(drops),
            adds=dict(adds or {}),
            required={})
        self._check_attrs(source_class, list(spec.renames) + list(drops))
        self._copies.append(spec)
        self._map_class(source_class, spec.target_class)
        return self

    def make_required(self, source_class: str, attr: str, policy: str,
                      default: Optional[Value] = None) -> "Evolution":
        """Optional (set-valued) attribute -> required scalar.

        ``policy="delete"`` drops objects lacking the attribute;
        ``policy="default"`` fills ``default`` in afterwards (the paper's
        two readings, Section 1).
        """
        if policy not in ("delete", "default"):
            raise EvolutionError(
                f"unknown policy {policy!r}; use 'delete' or 'default'")
        if policy == "default" and default is None:
            raise EvolutionError("the default policy needs a default value")
        spec = self._copy_spec_for(source_class)
        attr_type = self.source.schema.attribute_type(source_class, attr)
        if not isinstance(attr_type, SetType):
            raise EvolutionError(
                f"{source_class}.{attr} is not optional (set-valued); "
                f"got {attr_type}")
        spec.required[attr] = (policy, default)
        return self

    def split_class(self, source_class: str, variant_attr: str,
                    mapping: Mapping[str, str]) -> "Evolution":
        """Split by a variant attribute: one target class per label."""
        self._require_class(source_class)
        attr_type = self.source.schema.attribute_type(source_class,
                                                      variant_attr)
        if not isinstance(attr_type, VariantType):
            raise EvolutionError(
                f"{source_class}.{variant_attr} is not a variant "
                f"attribute; got {attr_type}")
        for label in mapping:
            if not attr_type.has_choice(label):
                raise EvolutionError(
                    f"{source_class}.{variant_attr} has no choice "
                    f"{label!r}")
        spec = _SplitSpec(source_class, variant_attr, dict(mapping))
        self._splits.append(spec)
        for target_class in mapping.values():
            self._map_class(source_class, target_class)
        return self

    def reify_reference(self, source_class: str, attr: str,
                        link_class: str, subject_target: str,
                        object_target: str,
                        subject_label: str = "subject",
                        object_label: str = "object",
                        subject_filter: Optional[Tuple[str, str]] = None,
                        object_filter: Optional[Tuple[str, str]] = None,
                        ) -> "Evolution":
        """Reference attribute -> link class (spouse -> Marriage)."""
        self._require_class(source_class)
        attr_type = self.source.schema.attribute_type(source_class, attr)
        if not isinstance(attr_type, ClassType):
            raise EvolutionError(
                f"{source_class}.{attr} is not a reference; "
                f"got {attr_type}")
        self._reifies.append(_ReifySpec(
            source_class, attr, link_class, subject_target, object_target,
            subject_label, object_label, subject_filter, object_filter))
        return self

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require_class(self, cname: str) -> None:
        if not self.source.schema.has_class(cname):
            raise EvolutionError(
                f"source schema has no class {cname!r}")

    def _check_attrs(self, cname: str, attrs: Sequence[str]) -> None:
        known = set(self.source.schema.attributes(cname))
        for attr in attrs:
            if attr not in known:
                raise EvolutionError(f"{cname} has no attribute {attr!r}")

    def _copy_spec_for(self, source_class: str) -> _CopySpec:
        for spec in self._copies:
            if spec.source_class == source_class:
                return spec
        raise EvolutionError(
            f"class {source_class!r} has not been copied; call "
            f"copy_class first")

    def _map_class(self, source_class: str, target_class: str) -> None:
        self._class_map.setdefault(source_class, []).append(target_class)

    def _compute_internal_names(self) -> None:
        """Alias target classes that collide with source class names."""
        source_names = set(self.source.schema.class_names())
        declared: List[str] = [spec.target_class for spec in self._copies]
        for spec in self._splits:
            declared.extend(spec.mapping.values())
        declared.extend(spec.link_class for spec in self._reifies)
        taken = set(source_names) | set(declared)
        self._internal_names: Dict[str, str] = {}
        for name in declared:
            if name in self._internal_names:
                raise EvolutionError(
                    f"target class {name!r} declared twice")
            if name in source_names:
                alias = name + "_v2"
                while alias in taken:
                    alias += "_"
                taken.add(alias)
                self._internal_names[name] = alias
            else:
                self._internal_names[name] = name

    def _int(self, public_name: str) -> str:
        """The working (alias) name of a declared target class."""
        return self._internal_names[public_name]

    def _target_of_reference(self, referenced: str) -> str:
        targets = self._class_map.get(referenced, [])
        if len(targets) != 1:
            raise EvolutionError(
                f"reference to {referenced!r} is ambiguous or unmapped "
                f"(targets: {targets}); copy the class exactly once or "
                f"reify the reference")
        return targets[0]

    def _source_key(self, cname: str) -> KeyFunction:
        if not self.source.keys.has_key(cname):
            raise EvolutionError(
                f"class {cname!r} has no key; evolution operators need "
                f"keyed classes to identify objects")
        return self.source.keys.key_for(cname)

    def _key_join_atoms(self, source_var: str, source_class: str,
                        target_class: str,
                        fresh: List[int]) -> Tuple[List, SkolemTerm]:
        """Atoms computing the target identity of a source object."""
        key = self._source_key(source_class)
        atoms: List = []
        args: List[Tuple[Optional[str], Term]] = []
        for label, path in key.components:
            term: Term = Var(source_var)
            for attr in path:
                term = Proj(term, attr)
            fresh[0] += 1
            var = Var(f"_e{fresh[0]}")
            atoms.append(EqAtom(var, term))
            args.append((label, var))
        return atoms, SkolemTerm(target_class, tuple(args))

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build(self) -> EvolutionResult:
        classes: List[Tuple[str, Type]] = []
        key_functions: Dict[str, KeyFunction] = {}
        clauses: List[Clause] = []
        defaults: Dict[Tuple[str, str], Value] = {}
        fresh = [0]
        self._extra_clauses = []
        self._optional_attrs: set = set()
        self._compute_internal_names()

        for spec in self._copies:
            internal = self._int(spec.target_class)
            ctype, key_fn, clause, spec_defaults = self._build_copy(
                spec, fresh)
            classes.append((internal, ctype))
            if key_fn is not None:
                key_functions[internal] = key_fn
            clauses.append(clause)
            defaults.update(spec_defaults)

        for spec in self._splits:
            for label, target_class in sorted(spec.mapping.items()):
                internal = self._int(target_class)
                ctype, key_fn, clause = self._build_split(
                    spec, label, target_class, fresh)
                classes.append((internal, ctype))
                if key_fn is not None:
                    key_functions[internal] = key_fn
                clauses.append(clause)

        reify_key_clauses: List[Clause] = []
        for spec in self._reifies:
            ctype, clause, key_clause = self._build_reify(spec, fresh)
            classes.append((self._int(spec.link_class), ctype))
            clauses.append(clause)
            reify_key_clauses.append(key_clause)

        schema = Schema(self.target_name, tuple(classes))
        keyed = KeyedSchema(schema, KeySpec({
            cname: KeyFunction(cname, fn.components)
            for cname, fn in key_functions.items()}))

        key_clauses = [key_clause_for(fn) for fn in key_functions.values()]
        program = Program(tuple(clauses + self._extra_clauses
                                + key_clauses + reify_key_clauses))
        restore = {internal: public
                   for public, internal in self._internal_names.items()
                   if internal != public}
        from ..model.rename import rename_keyed_schema
        final = rename_keyed_schema(keyed, restore) if restore else keyed
        return EvolutionResult(final, keyed, program, defaults, restore,
                               frozenset(self._optional_attrs))

    def _build_copy(self, spec: _CopySpec, fresh: List[int]):
        source_type = self.source.schema.class_type(spec.source_class)
        if not isinstance(source_type, RecordType):
            raise EvolutionError(
                f"cannot copy non-record class {spec.source_class}")

        internal = self._int(spec.target_class)
        obj = Var("X")
        src = Var("I")
        head: List = [MemberAtom(obj, internal)]
        body: List = [MemberAtom(src, spec.source_class)]
        fields: List[Tuple[str, Type]] = []
        spec_defaults: Dict[Tuple[str, str], Value] = {}

        for label, attr_type in source_type.fields:
            if label in spec.drops:
                continue
            target_label = spec.renames.get(label, label)
            if label in spec.required:
                policy, default = spec.required[label]
                assert isinstance(attr_type, SetType)
                element = attr_type.element
                target_type = self._map_type(element)
                fields.append((target_label, target_type))
                if policy == "delete":
                    fresh[0] += 1
                    var = Var(f"_e{fresh[0]}")
                    body.append(InAtom(var, Proj(src, label)))
                    head.append(EqAtom(
                        Proj(obj, target_label),
                        self._reference_value(element, var, body, fresh)))
                else:
                    spec_defaults[(spec.target_class, target_label)] = \
                        default  # final names; transform() re-keys
                    self._optional_attrs.add((internal, target_label))
                    # Present values still copy (per element; multiple
                    # distinct values conflict, correctly).
                    fresh[0] += 1
                    var = Var(f"_e{fresh[0]}")
                    # A separate assigner clause: fires only when present.
                    assigner = Clause(
                        (EqAtom(Proj(Var("X"), target_label),
                                self._reference_value(
                                    element, var, None, fresh)),),
                        tuple([MemberAtom(Var("X"), internal),
                               MemberAtom(Var("I"), spec.source_class)]
                              + self._identity_link(
                                  "X", "I", spec, fresh)
                              + [InAtom(var, Proj(Var("I"), label))]),
                        name=f"opt_{spec.target_class}_{target_label}",
                        kind=KIND_TRANSFORMATION)
                    self._extra_clauses.append(assigner)
                continue
            if attr_type.involves_class() and not isinstance(
                    attr_type, ClassType):
                raise EvolutionError(
                    f"{spec.source_class}.{label}: copying attributes "
                    f"with nested class references ({attr_type}) is not "
                    f"supported; drop the attribute, make it required, "
                    f"or reify it")
            target_type = self._map_type(attr_type)
            fields.append((target_label, target_type))
            head.append(EqAtom(
                Proj(obj, target_label),
                self._reference_value(attr_type, Proj(src, label), body,
                                      fresh)))

        for label, (attr_type, default_value) in sorted(spec.adds.items()):
            fields.append((label, attr_type))
            from ..lang.ast import Const
            head.append(EqAtom(Proj(obj, label), Const(default_value)))

        key_fn = None
        if self.source.keys.has_key(spec.source_class):
            source_key = self.source.keys.key_for(spec.source_class)
            renamed_components = tuple(
                (label, tuple(spec.renames.get(a, a) for a in path))
                for label, path in source_key.components)
            key_fn = KeyFunction(internal, renamed_components)

        clause = Clause(tuple(head), tuple(body),
                        name=f"copy_{spec.target_class}",
                        kind=KIND_TRANSFORMATION)
        ctype = RecordType(tuple(fields))
        return ctype, key_fn, clause, spec_defaults

    #: clauses generated as side effects of operators (optional copies).
    _extra_clauses: List[Clause]

    def _identity_link(self, target_var: str, source_var: str,
                       spec: _CopySpec, fresh: List[int]) -> List:
        """Body atoms equating a target object with its source original
        via the Skolem identity."""
        atoms, skolem = self._key_join_atoms(
            source_var, spec.source_class, self._int(spec.target_class),
            fresh)
        # Rename key paths per the copy's attribute renames: the key is
        # computed from the SOURCE object, so paths stay source-side.
        return atoms + [EqAtom(Var(target_var), skolem)]

    def _map_type(self, ty: Type) -> Type:
        if isinstance(ty, ClassType):
            return ClassType(self._int(self._target_of_reference(ty.name)))
        if isinstance(ty, SetType):
            return SetType(self._map_type(ty.element))
        return ty

    def _reference_value(self, attr_type: Type, source_term: Term,
                         body: Optional[List], fresh: List[int]) -> Term:
        """The target-side value for a copied attribute.

        Reference attributes become the Skolem identity of the copied
        referenced object, computed from the source reference's key.
        """
        if not isinstance(attr_type, ClassType):
            return source_term
        referenced = attr_type.name
        target_ref = self._int(self._target_of_reference(referenced))
        key = self._source_key(referenced)
        args: List[Tuple[Optional[str], Term]] = []
        for label, path in key.components:
            term = source_term
            for attr in path:
                term = Proj(term, attr)
            args.append((label, term))
        return SkolemTerm(target_ref, tuple(args))

    def _build_split(self, spec: _SplitSpec, label: str,
                     target_class: str, fresh: List[int]):
        source_type = self.source.schema.class_type(spec.source_class)
        assert isinstance(source_type, RecordType)
        internal = self._int(target_class)
        obj = Var("X")
        src = Var("Y")
        head: List = [MemberAtom(obj, internal)]
        body: List = [MemberAtom(src, spec.source_class),
                      EqAtom(Proj(src, spec.variant_attr),
                             VariantTerm(label))]
        fields: List[Tuple[str, Type]] = []
        for attr, attr_type in source_type.fields:
            if attr == spec.variant_attr:
                continue
            if isinstance(attr_type, ClassType):
                # References out of a split class are ambiguous: reify
                # them instead.
                continue
            fields.append((attr, attr_type))
            head.append(EqAtom(Proj(obj, attr), Proj(src, attr)))

        key_fn = None
        if self.source.keys.has_key(spec.source_class):
            source_key = self.source.keys.key_for(spec.source_class)
            key_fn = KeyFunction(internal, source_key.components)

        clause = Clause(tuple(head), tuple(body),
                        name=f"split_{target_class}",
                        kind=KIND_TRANSFORMATION)
        return RecordType(tuple(fields)), key_fn, clause

    def _build_reify(self, spec: _ReifySpec, fresh: List[int]):
        link = Var("M")
        subject_src = Var("Z")
        object_src = Var("W")
        body: List = [MemberAtom(subject_src, spec.source_class),
                      EqAtom(object_src,
                             Proj(subject_src, spec.attr))]
        if spec.subject_filter is not None:
            attr, label = spec.subject_filter
            body.append(EqAtom(Proj(subject_src, attr),
                               VariantTerm(label)))
        if spec.object_filter is not None:
            attr, label = spec.object_filter
            body.append(EqAtom(Proj(object_src, attr),
                               VariantTerm(label)))

        referenced = self.source.schema.attribute_type(
            spec.source_class, spec.attr)
        assert isinstance(referenced, ClassType)
        subject_atoms, subject_skolem = self._key_join_atoms(
            "Z", spec.source_class, self._int(spec.subject_target), fresh)
        object_atoms, object_skolem = self._key_join_atoms(
            "W", referenced.name, self._int(spec.object_target), fresh)
        body.extend(subject_atoms)
        body.extend(object_atoms)
        body.append(EqAtom(Var("XS"), subject_skolem))
        body.append(EqAtom(Var("XO"), object_skolem))

        head = (MemberAtom(link, self._int(spec.link_class)),
                EqAtom(Proj(link, spec.subject_label), Var("XS")),
                EqAtom(Proj(link, spec.object_label), Var("XO")))
        clause = Clause(head, tuple(body),
                        name=f"reify_{spec.link_class}",
                        kind=KIND_TRANSFORMATION)

        key_clause = Clause(
            (EqAtom(Var("M"), SkolemTerm(self._int(spec.link_class), (
                (spec.subject_label, Var("S")),
                (spec.object_label, Var("O")),))),),
            (MemberAtom(Var("M"), self._int(spec.link_class)),
             EqAtom(Var("S"), Proj(Var("M"), spec.subject_label)),
             EqAtom(Var("O"), Proj(Var("M"), spec.object_label))),
            name=f"key_{spec.link_class}")

        ctype = RecordType((
            (spec.subject_label,
             ClassType(self._int(spec.subject_target))),
            (spec.object_label,
             ClassType(self._int(spec.object_target)))))
        return ctype, clause, key_clause
