"""First-class instance deltas: insert/update/delete of objects, per class.

The paper's closing vision (Section 6) puts Morphase in front of
*evolving* databases: transformation programs are compiled once and run
"many times" as the sources change.  A :class:`Delta` is the unit of
change between two versions of one instance — per class, the objects
inserted, the objects deleted, and the objects whose stored value was
updated in place (same identity, new value).

Deltas drive the incremental execution subsystem
(:mod:`repro.engine.incremental`): instead of re-running a whole
transformation or constraint audit after every source edit, the engine
seeds its joins from the delta and patches the previous result.

Deltas are plain data with a JSON interchange form (mirroring
:mod:`repro.io.json_io`), an applicator producing the updated
:class:`~repro.model.instance.Instance`, an inverter (for undo), and a
differ (:func:`delta_between`) recovering the delta between two instance
versions — the oracle used by the differential tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

from ..io.json_io import value_from_json, value_to_json
from ..model.instance import Instance
from ..model.values import Oid, Value, ValueError_, check_value, oids_in


class DeltaError(Exception):
    """Raised for malformed deltas or deltas inconsistent with an instance."""


def _freeze_values(changes: Mapping[str, Mapping[Oid, Value]]
                   ) -> Dict[str, Dict[Oid, Value]]:
    return {cname: dict(objs) for cname, objs in changes.items() if objs}


@dataclass(frozen=True)
class Delta:
    """A batch of object-level changes against one instance version.

    ``inserts`` and ``updates`` map class name -> oid -> (new) value;
    ``deletes`` maps class name -> the deleted oids.  A class appears
    only when it has changes; an oid may appear in at most one of the
    three groups (an insert-then-delete within one batch should cancel
    out *before* the delta is built).
    """

    inserts: Mapping[str, Mapping[Oid, Value]] = field(default_factory=dict)
    deletes: Mapping[str, Tuple[Oid, ...]] = field(default_factory=dict)
    updates: Mapping[str, Mapping[Oid, Value]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "inserts", _freeze_values(self.inserts))
        object.__setattr__(self, "updates", _freeze_values(self.updates))
        deletes = {cname: tuple(oids) for cname, oids in self.deletes.items()
                   if oids}
        object.__setattr__(self, "deletes", deletes)
        for group_name, group in (("inserts", self.inserts),
                                  ("updates", self.updates)):
            for cname, objs in group.items():
                for oid in objs:
                    if oid.class_name != cname:
                        raise DeltaError(
                            f"{group_name}: object {oid} filed under class "
                            f"{cname}")
        for cname, oids in self.deletes.items():
            for oid in oids:
                if oid.class_name != cname:
                    raise DeltaError(
                        f"deletes: object {oid} filed under class {cname}")
            if len(set(oids)) != len(oids):
                raise DeltaError(f"deletes: duplicate oids for {cname}")
        seen: Dict[Oid, str] = {}
        for group_name, oids in (("inserts", self._group_oids(self.inserts)),
                                 ("deletes", self._delete_oids()),
                                 ("updates", self._group_oids(self.updates))):
            for oid in oids:
                if oid in seen:
                    raise DeltaError(
                        f"object {oid} appears in both {seen[oid]} and "
                        f"{group_name}; normalise the batch first")
                seen[oid] = group_name

    @staticmethod
    def _group_oids(group: Mapping[str, Mapping[Oid, Value]]
                    ) -> Iterator[Oid]:
        for objs in group.values():
            yield from objs

    def _delete_oids(self) -> Iterator[Oid]:
        for oids in self.deletes.values():
            yield from oids

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        return not (self.inserts or self.deletes or self.updates)

    def size(self) -> int:
        """Total number of changed objects."""
        return (sum(len(objs) for objs in self.inserts.values())
                + sum(len(oids) for oids in self.deletes.values())
                + sum(len(objs) for objs in self.updates.values()))

    def classes(self) -> frozenset:
        """Every class touched by any change."""
        return frozenset(self.inserts) | frozenset(self.deletes) \
            | frozenset(self.updates)

    def removed(self, cname: str) -> Tuple[Oid, ...]:
        """Oids whose *old* value leaves the instance (deletes+updates)."""
        return (tuple(self.deletes.get(cname, ()))
                + tuple(self.updates.get(cname, {})))

    def added(self, cname: str) -> Tuple[Oid, ...]:
        """Oids whose *new* value enters the instance (inserts+updates)."""
        return (tuple(self.inserts.get(cname, {}))
                + tuple(self.updates.get(cname, {})))

    def removed_by_class(self) -> Dict[str, Tuple[Oid, ...]]:
        return {cname: self.removed(cname)
                for cname in self.classes() if self.removed(cname)}

    def added_by_class(self) -> Dict[str, Tuple[Oid, ...]]:
        return {cname: self.added(cname)
                for cname in self.classes() if self.added(cname)}

    def summary(self) -> str:
        return (f"delta: {sum(len(o) for o in self.inserts.values())} "
                f"insert(s), "
                f"{sum(len(o) for o in self.updates.values())} update(s), "
                f"{sum(len(o) for o in self.deletes.values())} delete(s) "
                f"over {len(self.classes())} class(es)")

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def apply_to(self, instance: Instance,
                 validate_changed: bool = True) -> Instance:
        """The updated instance this delta produces from ``instance``.

        Inserted objects must be new, deleted and updated objects must
        exist — a delta is a change against one specific version, and a
        mismatch means it is being applied to the wrong one.  With
        ``validate_changed`` every *changed* value is type-checked and
        its references resolved against the updated instance; unchanged
        objects are not re-validated (that is the point of deltas).
        """
        valuations: Dict[str, Dict[Oid, Value]] = {
            cname: dict(objs) for cname, objs in instance.valuations.items()}
        for cname in self.classes():
            if cname not in valuations:
                raise DeltaError(
                    f"delta touches class {cname!r}, absent from schema "
                    f"{instance.schema.name!r}")
        for cname, oids in self.deletes.items():
            store = valuations[cname]
            for oid in oids:
                if oid not in store:
                    raise DeltaError(f"cannot delete {oid}: not in instance")
                del store[oid]
        for cname, objs in self.updates.items():
            store = valuations[cname]
            for oid, value in objs.items():
                if oid not in store:
                    raise DeltaError(f"cannot update {oid}: not in instance")
                store[oid] = value
        for cname, objs in self.inserts.items():
            store = valuations[cname]
            for oid, value in objs.items():
                if oid in store:
                    raise DeltaError(
                        f"cannot insert {oid}: already in instance")
                store[oid] = value
        updated = Instance(instance.schema, valuations)
        if validate_changed:
            for cname in self.classes():
                ctype = instance.schema.class_type(cname)
                for oid in self.added(cname):
                    value = updated.value_of(oid)
                    try:
                        check_value(value, ctype)
                    except ValueError_ as exc:
                        raise DeltaError(
                            f"changed object {oid}: {exc}") from exc
                    for ref in oids_in(value):
                        if not updated.has_object(ref):
                            raise DeltaError(
                                f"changed object {oid} references {ref}, "
                                f"which is not in the updated instance")
        return updated

    def invert(self, instance: Instance) -> "Delta":
        """The delta undoing this one, relative to the *pre*-image.

        ``delta.apply_to(i)`` followed by
        ``delta.invert(i).apply_to(...)`` restores ``i``.
        """
        inserts: Dict[str, Dict[Oid, Value]] = {}
        updates: Dict[str, Dict[Oid, Value]] = {}
        deletes: Dict[str, Tuple[Oid, ...]] = {}
        for cname, oids in self.deletes.items():
            inserts[cname] = {oid: instance.value_of(oid) for oid in oids}
        for cname, objs in self.updates.items():
            updates[cname] = {oid: instance.value_of(oid) for oid in objs}
        for cname, objs in self.inserts.items():
            deletes[cname] = tuple(objs)
        return Delta(inserts=inserts, deletes=deletes, updates=updates)


def delta_between(old: Instance, new: Instance) -> Delta:
    """The delta turning ``old`` into ``new`` (same schema).

    The differential oracle: incremental engines must agree with a full
    recompute over ``delta_between(old, new).apply_to(old)``.
    """
    if old.schema.class_names() != new.schema.class_names():
        raise DeltaError(
            f"cannot diff instances of different schemas "
            f"({old.schema.name!r} vs {new.schema.name!r})")
    inserts: Dict[str, Dict[Oid, Value]] = {}
    updates: Dict[str, Dict[Oid, Value]] = {}
    deletes: Dict[str, Tuple[Oid, ...]] = {}
    for cname in old.schema.class_names():
        before = old.valuations[cname]
        after = new.valuations[cname]
        gone = tuple(oid for oid in before if oid not in after)
        if gone:
            deletes[cname] = gone
        fresh = {oid: value for oid, value in after.items()
                 if oid not in before}
        if fresh:
            inserts[cname] = fresh
        changed = {oid: value for oid, value in after.items()
                   if oid in before and before[oid] != value}
        if changed:
            updates[cname] = changed
    return Delta(inserts=inserts, deletes=deletes, updates=updates)


# ----------------------------------------------------------------------
# JSON interchange
# ----------------------------------------------------------------------

def delta_to_json(delta: Delta, oid_encoder=None) -> Dict[str, Any]:
    """Encode a delta (keyed oids round-trip structurally).

    ``oid_encoder`` optionally replaces the default identity encoding
    (see :func:`repro.io.json_io.value_to_json`) — the durable store
    uses it to address anonymous oids by label instead of by
    process-local serial, so WAL records survive a restart.
    """
    def encode_group(group: Mapping[str, Mapping[Oid, Value]]
                     ) -> Dict[str, Any]:
        return {cname: [{"id": value_to_json(oid, oid_encoder),
                         "value": value_to_json(value, oid_encoder)}
                        for oid, value in sorted(objs.items(),
                                                 key=lambda item:
                                                 str(item[0]))]
                for cname, objs in sorted(group.items())}

    return {
        "inserts": encode_group(delta.inserts),
        "updates": encode_group(delta.updates),
        "deletes": {cname: [value_to_json(oid, oid_encoder)
                            for oid in sorted(oids, key=str)]
                    for cname, oids in sorted(delta.deletes.items())},
    }


class _OidResolver:
    """Resolve serialized object identities against a base instance.

    Keyed oids resolve structurally.  Anonymous oids may be addressed
    by ``serial`` (in-process round trips) or by the per-dump ``label``
    scheme of :func:`repro.io.json_io.instance_to_json` (``Class#n``) —
    the form external tools see when they read a dumped instance.

    Labels resolve through ``labels``, the exact mapping captured when
    the base instance was loaded
    (:func:`repro.io.json_io.load_instance` with ``labels=``) — loaded
    objects get fresh serials, so the mapping cannot be re-derived from
    the instance afterwards (fresh serials may sort differently than
    the dumped ones did).  Without a captured mapping, labels are
    derived from ``instance`` exactly as a dump of it would assign them
    — correct for in-memory instances that have not been through a
    load.  Unknown labels denote freshly inserted anonymous objects;
    equal labels resolve to one fresh oid.
    """

    def __init__(self, instance: Optional[Instance] = None,
                 labels: Optional[Mapping[Tuple[str, str], Oid]] = None
                 ) -> None:
        self._instance = instance
        self._labels: Dict[Tuple[str, str], Oid] = dict(labels or {})
        self._derive = labels is None
        self._labelled: set = set()

    def _label_map(self, cname: str) -> None:
        if (not self._derive or self._instance is None
                or cname in self._labelled):
            return
        self._labelled.add(cname)
        if not self._instance.schema.has_class(cname):
            return
        for index, oid in enumerate(
                sorted(self._instance.objects_of(cname), key=str)):
            if not oid.is_keyed:
                self._labels.setdefault((cname, f"{cname}#{index}"), oid)

    def decode_oid(self, data: Any) -> Oid:
        if not (isinstance(data, Mapping) and "$oid" in data):
            raise DeltaError(f"expected an object identity, got {data!r}")
        cname = data["$oid"]
        if "key" in data:
            return Oid.keyed(cname, self.decode_value(data["key"]))
        label = data.get("label")
        if label is not None:
            self._label_map(cname)
            oid = self._labels.get((cname, label))
            if oid is None:
                oid = Oid.fresh(cname)
                self._labels[(cname, label)] = oid
            return oid
        if "serial" in data:
            return Oid(cname, serial=int(data["serial"]))
        raise DeltaError(f"object identity {data!r} has no key, label "
                         f"or serial")

    def decode_value(self, data: Any) -> Value:
        # One structural decoder: json_io walks records/variants/sets/
        # lists and hands every $oid form back to this resolver.
        return value_from_json(data, oid_decoder=self.decode_oid)


def delta_from_json(data: Mapping[str, Any],
                    instance: Optional[Instance] = None,
                    labels: Optional[Mapping[Tuple[str, str], Oid]] = None,
                    capture_labels: Optional[Dict[Tuple[str, str], Oid]]
                    = None) -> Delta:
    """Decode a delta produced by :func:`delta_to_json`.

    ``instance`` (or, for loaded instances, the ``labels`` mapping
    captured at load time) enables label-based addressing of anonymous
    objects — the dump labels of :mod:`repro.io.json_io`.  Keyed oids
    and raw serials need neither.

    ``capture_labels``, when given, receives every ``(class, label) ->
    oid`` binding the decode resolved or minted — including fresh oids
    for previously unseen labels.  A caller replaying a sequence of
    label-addressed deltas (the durable store's WAL) feeds each
    decode's captures back as the next decode's ``labels`` so one
    label always denotes one object across the whole sequence.
    """
    resolver = _OidResolver(instance, labels)

    def decode_group(group: Any) -> Dict[str, Dict[Oid, Value]]:
        if group is None:
            return {}
        if not isinstance(group, Mapping):
            raise DeltaError(f"expected a class mapping, got {group!r}")
        out: Dict[str, Dict[Oid, Value]] = {}
        for cname, entries in group.items():
            objs: Dict[Oid, Value] = {}
            for entry in entries:
                try:
                    oid = resolver.decode_oid(entry["id"])
                    value = resolver.decode_value(entry["value"])
                except (KeyError, TypeError) as exc:
                    raise DeltaError(
                        f"malformed delta entry {entry!r}") from exc
                objs[oid] = value
            out[cname] = objs
        return out

    deletes_data = data.get("deletes") or {}
    deletes = {cname: tuple(resolver.decode_oid(item) for item in oids)
               for cname, oids in deletes_data.items()}
    decoded = Delta(inserts=decode_group(data.get("inserts")),
                    deletes=deletes,
                    updates=decode_group(data.get("updates")))
    if capture_labels is not None:
        capture_labels.update(resolver._labels)
    return decoded


def compose_deltas(first: Delta, second: Delta) -> Delta:
    """The single delta equivalent to applying ``first`` then ``second``.

    For every instance ``i`` both sides accept,
    ``compose_deltas(first, second).apply_to(i)`` equals
    ``second.apply_to(first.apply_to(i))`` — the service layer leans on
    this to batch a burst of queued deltas into one incremental
    application.  Per object the group algebra is: insert∘update =
    insert (new value), insert∘delete = nothing, update∘update =
    update (last value wins), update∘delete = delete, delete∘insert =
    update.  Combinations ``second`` could never apply after ``first``
    (inserting an object ``first`` left present, touching one it
    deleted) raise :class:`DeltaError`.
    """
    inserts: Dict[str, Dict[Oid, Value]] = {
        cname: dict(objs) for cname, objs in first.inserts.items()}
    updates: Dict[str, Dict[Oid, Value]] = {
        cname: dict(objs) for cname, objs in first.updates.items()}
    deletes: Dict[str, Dict[Oid, None]] = {
        cname: dict.fromkeys(oids)
        for cname, oids in first.deletes.items()}

    def group(store: Dict[str, Dict], cname: str) -> Dict:
        return store.setdefault(cname, {})

    for cname, objs in second.inserts.items():
        for oid, value in objs.items():
            if (oid in inserts.get(cname, {})
                    or oid in updates.get(cname, {})):
                raise DeltaError(
                    f"compose: {oid} inserted by the second delta but "
                    f"still present after the first")
            if oid in deletes.get(cname, {}):
                del deletes[cname][oid]
                group(updates, cname)[oid] = value
            else:
                group(inserts, cname)[oid] = value
    for cname, objs in second.updates.items():
        for oid, value in objs.items():
            if oid in deletes.get(cname, {}):
                raise DeltaError(
                    f"compose: {oid} updated by the second delta but "
                    f"deleted by the first")
            if oid in inserts.get(cname, {}):
                inserts[cname][oid] = value
            else:
                group(updates, cname)[oid] = value
    for cname, oids in second.deletes.items():
        for oid in oids:
            if oid in deletes.get(cname, {}):
                raise DeltaError(
                    f"compose: {oid} deleted by both deltas")
            if oid in inserts.get(cname, {}):
                del inserts[cname][oid]
            elif oid in updates.get(cname, {}):
                del updates[cname][oid]
                group(deletes, cname)[oid] = None
            else:
                group(deletes, cname)[oid] = None

    return Delta(inserts=inserts,
                 deletes={cname: tuple(oids)
                          for cname, oids in deletes.items() if oids},
                 updates=updates)


def dump_delta(delta: Delta, path: str) -> None:
    import json
    with open(path, "w") as handle:
        json.dump(delta_to_json(delta), handle, indent=2, sort_keys=True)


def load_delta(path: str, instance: Optional[Instance] = None,
               labels: Optional[Mapping[Tuple[str, str], Oid]] = None
               ) -> Delta:
    import json
    with open(path) as handle:
        return delta_from_json(json.load(handle), instance, labels)
