"""Schema diffing: propose evolution operators from two schema versions.

The front half of the paper's imagined "graphical schema manipulation
tools generating WOL transformation programs" (Section 6): given the old
and the new version of a schema, detect what changed — added, dropped and
renamed attributes, optional attributes made required — and assemble the
corresponding :class:`~repro.evolution.operators.Evolution`, from which the
WOL program follows.

Heuristics are deliberately conservative: an attribute counts as *renamed*
only when exactly one dropped and one added attribute share a type; an
optional-to-required change is recognised as ``{tau}`` becoming ``tau``.
Everything the diff cannot decide (the policy for optional-to-required,
defaults for added attributes) is surfaced as a required decision rather
than guessed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..model.keys import KeyedSchema
from ..model.types import RecordType, SetType, Type
from ..model.values import Value
from .operators import Evolution


class DiffError(Exception):
    """Raised when a diff cannot be turned into operators."""


@dataclass
class ClassDiff:
    """Changes to one class present in both versions."""

    class_name: str
    added: Dict[str, Type] = field(default_factory=dict)
    dropped: Dict[str, Type] = field(default_factory=dict)
    renamed: Dict[str, str] = field(default_factory=dict)
    made_required: Dict[str, Type] = field(default_factory=dict)
    retyped: Dict[str, Tuple[Type, Type]] = field(default_factory=dict)

    @property
    def unchanged(self) -> bool:
        return not (self.added or self.dropped or self.renamed
                    or self.made_required or self.retyped)


@dataclass
class SchemaDiff:
    """The full diff between two schema versions."""

    old: KeyedSchema
    new: KeyedSchema
    shared: Dict[str, ClassDiff] = field(default_factory=dict)
    added_classes: List[str] = field(default_factory=list)
    dropped_classes: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    def decisions_needed(self) -> List[str]:
        """Choices the user must make before a program can be generated."""
        needed: List[str] = []
        for diff in self.shared.values():
            for attr in sorted(diff.made_required):
                needed.append(
                    f"{diff.class_name}.{attr} became required: choose "
                    f"policy 'delete' or 'default' (paper Section 1)")
            for attr, ty in sorted(diff.added.items()):
                needed.append(
                    f"{diff.class_name}.{attr} was added (type {ty}): "
                    f"provide a default value")
            for attr, (old_ty, new_ty) in sorted(diff.retyped.items()):
                needed.append(
                    f"{diff.class_name}.{attr} changed type "
                    f"{old_ty} -> {new_ty}: not automatable")
        return needed

    def summary(self) -> str:
        lines: List[str] = []
        for cname in sorted(self.shared):
            diff = self.shared[cname]
            if diff.unchanged:
                lines.append(f"{cname}: unchanged")
                continue
            parts = []
            if diff.renamed:
                parts.append("renamed " + ", ".join(
                    f"{old}->{new}" for old, new in
                    sorted(diff.renamed.items())))
            if diff.dropped:
                parts.append("dropped " + ", ".join(sorted(diff.dropped)))
            if diff.added:
                parts.append("added " + ", ".join(sorted(diff.added)))
            if diff.made_required:
                parts.append("made required " + ", ".join(
                    sorted(diff.made_required)))
            if diff.retyped:
                parts.append("retyped " + ", ".join(sorted(diff.retyped)))
            lines.append(f"{cname}: " + "; ".join(parts))
        for cname in self.added_classes:
            lines.append(f"{cname}: new class (not automatable)")
        for cname in self.dropped_classes:
            lines.append(f"{cname}: dropped")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def to_evolution(self,
                     policies: Optional[Mapping[Tuple[str, str], str]] = None,
                     defaults: Optional[Mapping[Tuple[str, str], Value]] = None,
                     target_name: Optional[str] = None) -> Evolution:
        """Assemble the Evolution implementing this diff.

        ``policies`` supplies ``(class, attr) -> 'delete'|'default'`` for
        optional-to-required changes; ``defaults`` supplies values both
        for the 'default' policy and for added attributes.  Missing
        decisions raise :class:`DiffError` listing what is needed.
        """
        policies = dict(policies or {})
        defaults = dict(defaults or {})
        if self.added_classes:
            raise DiffError(
                f"new classes {self.added_classes} need hand-written "
                f"clauses; remove them from the target or write WOL")
        for diff in self.shared.values():
            if diff.retyped:
                raise DiffError(
                    f"class {diff.class_name}: type changes "
                    f"{sorted(diff.retyped)} are not automatable")

        evolution = Evolution(self.old,
                              target_name or self.new.schema.name)
        for cname in sorted(self.shared):
            diff = self.shared[cname]
            adds = {}
            for attr, ty in diff.added.items():
                value = defaults.get((cname, attr))
                if value is None:
                    raise DiffError(
                        f"{cname}.{attr} was added: provide a default "
                        f"via defaults[({cname!r}, {attr!r})]")
                adds[attr] = (ty, value)
            evolution.copy_class(
                cname,
                renames=diff.renamed,
                drops=tuple(sorted(diff.dropped)),
                adds=adds)
            for attr in sorted(diff.made_required):
                policy = policies.get((cname, attr))
                if policy is None:
                    raise DiffError(
                        f"{cname}.{attr} became required: choose a "
                        f"policy via policies[({cname!r}, {attr!r})]")
                evolution.make_required(
                    cname, attr, policy,
                    default=defaults.get((cname, attr)))
        return evolution


def diff_schemas(old: KeyedSchema, new: KeyedSchema) -> SchemaDiff:
    """Compute the conservative diff between two keyed schemas."""
    result = SchemaDiff(old, new)
    old_names = set(old.schema.class_names())
    new_names = set(new.schema.class_names())
    result.added_classes = sorted(new_names - old_names)
    result.dropped_classes = sorted(old_names - new_names)

    for cname in sorted(old_names & new_names):
        old_type = old.schema.class_type(cname)
        new_type = new.schema.class_type(cname)
        if not (isinstance(old_type, RecordType)
                and isinstance(new_type, RecordType)):
            raise DiffError(
                f"class {cname}: only record-typed classes can be "
                f"diffed")
        result.shared[cname] = _diff_class(cname, old_type, new_type)
    return result


def _diff_class(cname: str, old_type: RecordType,
                new_type: RecordType) -> ClassDiff:
    diff = ClassDiff(cname)
    old_fields = dict(old_type.fields)
    new_fields = dict(new_type.fields)

    for attr in sorted(set(old_fields) & set(new_fields)):
        old_ty, new_ty = old_fields[attr], new_fields[attr]
        if old_ty == new_ty:
            continue
        if isinstance(old_ty, SetType) and old_ty.element == new_ty:
            diff.made_required[attr] = new_ty
        else:
            diff.retyped[attr] = (old_ty, new_ty)
    dropped = {attr: old_fields[attr]
               for attr in set(old_fields) - set(new_fields)}
    added = {attr: new_fields[attr]
             for attr in set(new_fields) - set(old_fields)}

    # Conservative rename detection: a unique dropped/added pair with
    # exactly the same type.
    for old_attr in sorted(dropped):
        ty = dropped[old_attr]
        matches = [new_attr for new_attr, new_ty in sorted(added.items())
                   if new_ty == ty]
        if len(matches) == 1:
            dropped_match = [a for a, t in dropped.items()
                             if t == ty]
            if len(dropped_match) == 1:
                diff.renamed[old_attr] = matches[0]
                del added[matches[0]]
    for old_attr in diff.renamed:
        dropped.pop(old_attr, None)

    diff.dropped = dropped
    diff.added = added
    return diff
