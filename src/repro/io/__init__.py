"""JSON interchange for schemas and instances."""

from .json_io import (JsonIoError, dump_instance, dump_schema,
                      instance_from_json, instance_to_json, load_instance,
                      load_schema, schema_from_json, schema_to_json,
                      value_from_json, value_to_json)

__all__ = [
    "JsonIoError", "dump_instance", "dump_schema", "instance_from_json",
    "instance_to_json", "load_instance", "load_schema",
    "schema_from_json", "schema_to_json", "value_from_json",
    "value_to_json",
]
