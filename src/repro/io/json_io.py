"""JSON serialisation of schemas, keys and instances.

Transformations are long-lived artefacts run "many times" (Section 5), so
instances and schemas need a durable interchange format.  This module
round-trips the whole model through plain JSON:

* types render to their textual form (``(name: str, state: StateA)``) and
  parse back via :func:`repro.model.types.parse_type`;
* object identities serialise structurally: keyed oids as their key value,
  anonymous oids as stable local labels;
* values carry explicit tags (``{"$rec": ...}``, ``{"$var": ...}``, ...)
  so sets/lists/records/variants are unambiguous.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from ..model.instance import Instance, InstanceBuilder
from ..model.keys import KeyFunction, KeySpec, KeyedSchema
from ..model.schema import Schema
from ..model.types import parse_type
from ..model.values import (UNIT_VALUE, Oid, Record, UnitValue, Value,
                            Variant, WolList, WolSet)


class JsonIoError(Exception):
    """Raised on malformed serialised data."""


# ----------------------------------------------------------------------
# Values
# ----------------------------------------------------------------------

def value_to_json(value: Value, oid_encoder=None) -> Any:
    """Encode a WOL value as JSON-compatible data.

    ``oid_encoder`` optionally replaces the default ``$oid`` handling
    (e.g. to emit durable labels for anonymous oids instead of
    process-local serials); it receives the :class:`Oid` and must
    return the JSON mapping for it.  The mirror of ``oid_decoder`` on
    :func:`value_from_json` — one structural encoder, hooked at the
    identities.
    """
    if isinstance(value, bool) or isinstance(value, (int, float, str)):
        return value
    if isinstance(value, UnitValue):
        return {"$unit": True}
    if isinstance(value, Oid):
        if oid_encoder is not None:
            return oid_encoder(value)
        if value.is_keyed:
            return {"$oid": value.class_name,
                    "key": value_to_json(value.key)}
        return {"$oid": value.class_name, "serial": value.serial}
    if isinstance(value, Record):
        return {"$rec": {label: value_to_json(v, oid_encoder)
                         for label, v in value.fields}}
    if isinstance(value, Variant):
        return {"$var": value.label,
                "of": value_to_json(value.value, oid_encoder)}
    if isinstance(value, WolSet):
        encoded = [value_to_json(v, oid_encoder) for v in value]
        encoded.sort(key=json.dumps)
        return {"$set": encoded}
    if isinstance(value, WolList):
        return {"$list": [value_to_json(v, oid_encoder) for v in value]}
    raise JsonIoError(f"cannot encode value {value!r}")


def value_from_json(data: Any, oid_decoder=None) -> Value:
    """Decode JSON data produced by :func:`value_to_json`.

    ``oid_decoder`` optionally replaces the default ``$oid`` handling
    (e.g. to resolve label-addressed anonymous oids); it receives the
    raw ``$oid`` mapping and must return an :class:`Oid`.  There is one
    structural decoder — callers hook it instead of re-implementing the
    record/variant/set/list walk.
    """
    if isinstance(data, (bool, int, float, str)):
        return data
    if not isinstance(data, dict):
        raise JsonIoError(f"cannot decode value {data!r}")
    if "$unit" in data:
        return UNIT_VALUE
    if "$oid" in data:
        if oid_decoder is not None:
            return oid_decoder(data)
        class_name = data["$oid"]
        if "key" in data:
            return Oid.keyed(class_name, value_from_json(data["key"]))
        return Oid(class_name, serial=int(data["serial"]))
    if "$rec" in data:
        return Record(tuple(
            (label, value_from_json(v, oid_decoder))
            for label, v in data["$rec"].items()))
    if "$var" in data:
        return Variant(data["$var"],
                       value_from_json(data.get("of", {"$unit": 1}),
                                       oid_decoder))
    if "$set" in data:
        return WolSet(frozenset(value_from_json(v, oid_decoder)
                                for v in data["$set"]))
    if "$list" in data:
        return WolList(tuple(value_from_json(v, oid_decoder)
                             for v in data["$list"]))
    raise JsonIoError(f"cannot decode value {data!r}")


# ----------------------------------------------------------------------
# Schemas
# ----------------------------------------------------------------------

def schema_to_json(schema) -> Dict[str, Any]:
    """Encode a Schema or KeyedSchema."""
    if isinstance(schema, KeyedSchema):
        plain = schema.schema
        keys: Optional[Dict[str, Any]] = {
            cname: [{"label": label, "path": list(path)}
                    for label, path in
                    schema.keys.key_for(cname).components]
            for cname in schema.keys.classes()}
    else:
        plain = schema
        keys = None
    out: Dict[str, Any] = {
        "name": plain.name,
        "classes": {cname: str(ctype) for cname, ctype in plain},
    }
    if keys is not None:
        out["keys"] = keys
    return out


def schema_from_json(data: Dict[str, Any]):
    """Decode a Schema (or KeyedSchema when keys are present)."""
    try:
        classes = tuple((cname, parse_type(text))
                        for cname, text in data["classes"].items())
        schema = Schema(data["name"], classes)
    except KeyError as exc:
        raise JsonIoError(f"missing schema field {exc}") from exc
    keys = data.get("keys")
    if keys is None:
        return schema
    functions = {}
    for cname, components in keys.items():
        parsed = tuple((component.get("label"),
                        tuple(component["path"]))
                       for component in components)
        functions[cname] = KeyFunction(cname, parsed)
    return KeyedSchema(schema, KeySpec(functions))


# ----------------------------------------------------------------------
# Instances
# ----------------------------------------------------------------------

def dump_oid_encoder(instance: Instance):
    """The ``oid_encoder`` used by dumps: stable per-dump labels.

    Keyed oids encode as their key; anonymous oids get ``Class#n``
    labels by sorted extent order — the exact addressing
    :func:`instance_to_json` emits, exposed so other serialisers
    (query rows over the service, program result sets) name the same
    object the same way as a dump of the same instance.
    """
    labels: Dict[Oid, Any] = {}
    for cname in instance.schema.class_names():
        for index, oid in enumerate(
                sorted(instance.objects_of(cname), key=str)):
            if oid.is_keyed:
                labels[oid] = {"key": value_to_json(oid.key)}
            else:
                labels[oid] = {"label": f"{cname}#{index}"}

    def encode_oid(oid: Oid) -> Any:
        entry = labels.get(oid)
        if entry is None:
            raise JsonIoError(f"dangling reference {oid}")
        return {"$oid": oid.class_name, **entry}

    return encode_oid


def instance_to_json(instance: Instance) -> Dict[str, Any]:
    """Encode an instance (schema embedded).

    Anonymous oids get stable per-dump labels (``Class#n`` by sorted
    order) so dumps are deterministic and references stay consistent.
    """
    encode_oid = dump_oid_encoder(instance)

    def encode(value: Value) -> Any:
        if isinstance(value, Oid):
            return encode_oid(value)
        if isinstance(value, Record):
            return {"$rec": {label: encode(v)
                             for label, v in value.fields}}
        if isinstance(value, Variant):
            return {"$var": value.label, "of": encode(value.value)}
        if isinstance(value, WolSet):
            encoded = [encode(v) for v in value]
            encoded.sort(key=json.dumps)
            return {"$set": encoded}
        if isinstance(value, WolList):
            return {"$list": [encode(v) for v in value]}
        return value_to_json(value)

    objects: Dict[str, List[Dict[str, Any]]] = {}
    for cname in instance.schema.class_names():
        entries = []
        for oid in sorted(instance.objects_of(cname), key=str):
            entries.append({
                "id": encode_oid(oid),
                "value": encode(instance.value_of(oid)),
            })
        objects[cname] = entries

    return {"schema": schema_to_json(instance.schema),
            "objects": objects}


def instance_from_json(data: Dict[str, Any],
                       schema: Optional[Schema] = None,
                       labels: Optional[Dict[Tuple[str, str], Oid]] = None
                       ) -> Instance:
    """Decode an instance; ``schema`` overrides the embedded one.

    Anonymous objects get fresh serials on load, so their dump labels
    (``Class#n``) are the only durable way to address them from
    outside.  Pass a dict as ``labels`` to capture the exact
    ``(class, label) -> oid`` mapping of this load — deltas addressed
    by label (:func:`repro.evolution.delta.load_delta`) resolve through
    it; re-deriving the labels from the loaded instance would reorder
    whenever fresh serials sort differently than the dumped ones.
    """
    if schema is None:
        decoded = schema_from_json(data["schema"])
        schema = decoded.schema if isinstance(decoded, KeyedSchema) \
            else decoded
    builder = InstanceBuilder(schema)
    anonymous: Dict[Tuple[str, str], Oid] = \
        labels if labels is not None else {}

    def decode_oid(entry: Any) -> Oid:
        if not (isinstance(entry, dict) and "$oid" in entry):
            raise JsonIoError(f"expected an oid, got {entry!r}")
        cname = entry["$oid"]
        if "key" in entry:
            return Oid.keyed(cname, value_from_json(entry["key"]))
        label = entry.get("label")
        if label is None:
            return Oid(cname, serial=int(entry["serial"]))
        key = (cname, label)
        if key not in anonymous:
            anonymous[key] = Oid.fresh(cname)
        return anonymous[key]

    def decode(value: Any) -> Value:
        if isinstance(value, dict):
            if "$oid" in value:
                return decode_oid(value)
            if "$rec" in value:
                return Record(tuple(
                    (label, decode(v))
                    for label, v in value["$rec"].items()))
            if "$var" in value:
                return Variant(value["$var"],
                               decode(value.get("of", {"$unit": 1})))
            if "$set" in value:
                return WolSet(frozenset(decode(v)
                                        for v in value["$set"]))
            if "$list" in value:
                return WolList(tuple(decode(v) for v in value["$list"]))
        return value_from_json(value)

    for cname, entries in data.get("objects", {}).items():
        for entry in entries:
            oid = decode_oid(entry["id"])
            builder.put(oid, decode(entry["value"]))
    return builder.freeze()


# ----------------------------------------------------------------------
# File helpers
# ----------------------------------------------------------------------

def dump_instance(instance: Instance, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(instance_to_json(instance), handle, indent=2,
                  sort_keys=True)


def load_instance(path: str, schema: Optional[Schema] = None,
                  labels: Optional[Dict[Tuple[str, str], Oid]] = None
                  ) -> Instance:
    with open(path) as handle:
        return instance_from_json(json.load(handle), schema,
                                  labels=labels)


def dump_schema(schema, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(schema_to_json(schema), handle, indent=2, sort_keys=True)


def load_schema(path: str):
    with open(path) as handle:
        return schema_from_json(json.load(handle))
