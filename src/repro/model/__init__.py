"""The WOL data model (paper Section 2): types, schemas, keys, instances."""

from .types import (BOOL, FLOAT, INT, STR, UNIT, BaseType, ClassType,
                    ListType, RecordType, SetType, Type, TypeError_,
                    VariantType, list_of, parse_type, record, set_of,
                    variant)
from .values import (UNIT_VALUE, Oid, Record, Value, ValueError_, Variant,
                     WolList, WolSet, check_value, format_value, map_oids,
                     oids_in)
from .schema import Schema, SchemaError, merge_schemas, parse_schema
from .keys import (KeyError_, KeyFunction, KeySpec, KeyViolation, KeyedSchema,
                   attribute_key, attributes_key, key_violations,
                   satisfies_keys)
from .instance import (Instance, InstanceBuilder, InstanceError,
                       empty_instance)
from .isomorphism import find_isomorphism, isomorphic, rename_oids

__all__ = [
    "BOOL", "FLOAT", "INT", "STR", "UNIT", "BaseType", "ClassType",
    "ListType", "RecordType", "SetType", "Type", "TypeError_", "VariantType",
    "list_of", "parse_type", "record", "set_of", "variant",
    "UNIT_VALUE", "Oid", "Record", "Value", "ValueError_", "Variant",
    "WolList", "WolSet", "check_value", "format_value", "map_oids", "oids_in",
    "Schema", "SchemaError", "merge_schemas", "parse_schema",
    "KeyError_", "KeyFunction", "KeySpec", "KeyViolation", "KeyedSchema",
    "attribute_key", "attributes_key", "key_violations", "satisfies_keys",
    "Instance", "InstanceBuilder", "InstanceError", "empty_instance",
    "find_isomorphism", "isomorphic", "rename_oids",
]
