"""Instance isomorphism: equality up to renaming of object identities.

The paper's notion of the *unique smallest transformation* is "up to renaming
of object identities" (Section 3.2), and information-capacity arguments
(Section 4.3) compare instances modulo oid renaming.  This module decides
whether two instances of the same schema are isomorphic, i.e. whether there
is a bijection between their object identities, class by class, that makes
the valuations agree.

The search is a backtracking matcher guided by an oid-colouring refinement
(a light-weight analogue of the Weisfeiler-Lehman refinement used by graph
isomorphism solvers): oids are first partitioned by the shape of their value
with identities abstracted away, then matched within colour classes only.
Instances arising from transformations are usually keyed, making colour
classes tiny, so the search is effectively linear in practice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .instance import Instance
from .values import (Oid, Record, Value, Variant, WolList, WolSet, map_oids)


def _shape(value: Value, colour: Dict[Oid, int]) -> object:
    """A hashable abstraction of ``value`` with oids replaced by colours."""
    if isinstance(value, Oid):
        return ("oid", value.class_name, colour.get(value, 0))
    if isinstance(value, Record):
        return ("rec", tuple(
            (label, _shape(fval, colour)) for label, fval in value.fields))
    if isinstance(value, Variant):
        return ("var", value.label, _shape(value.value, colour))
    if isinstance(value, WolSet):
        return ("set", tuple(sorted(
            (repr(_shape(e, colour)) for e in value))))
    if isinstance(value, WolList):
        return ("list", tuple(_shape(e, colour) for e in value))
    return ("base", value)


def _refine_colours(instance: Instance) -> Dict[Oid, int]:
    """Iteratively colour oids by the shape of their values."""
    colour: Dict[Oid, int] = {oid: 0 for oid in instance.all_oids()}
    for _ in range(instance.size() + 1):
        signatures = {
            oid: (oid.class_name, _shape(instance.value_of(oid), colour))
            for oid in colour}
        # Palette indices must be *canonical* (derived from signature
        # content, not visit order) so colours are comparable across
        # instances.
        palette = {sig: rank for rank, sig in enumerate(
            sorted(set(signatures.values()), key=repr))}
        next_colour = {oid: palette[signatures[oid]] for oid in colour}
        if next_colour == colour:
            break
        colour = next_colour
    return colour


@dataclass
class _MatchState:
    forward: Dict[Oid, Oid]
    backward: Dict[Oid, Oid]


def _values_match(left: Value, right: Value, state: _MatchState) -> bool:
    """Structural match of two values under the current oid mapping.

    Unmapped oid pairs are tentatively added to the mapping; the caller is
    responsible for snapshotting/restoring state on backtrack.
    """
    if isinstance(left, Oid) or isinstance(right, Oid):
        if not (isinstance(left, Oid) and isinstance(right, Oid)):
            return False
        if left.class_name != right.class_name:
            return False
        if left in state.forward:
            return state.forward[left] == right
        if right in state.backward:
            return False
        state.forward[left] = right
        state.backward[right] = left
        return True
    if isinstance(left, Record) and isinstance(right, Record):
        if left.labels() != right.labels():
            return False
        return all(_values_match(left.get(label), right.get(label), state)
                   for label in left.labels())
    if isinstance(left, Variant) and isinstance(right, Variant):
        return (left.label == right.label
                and _values_match(left.value, right.value, state))
    if isinstance(left, WolList) and isinstance(right, WolList):
        if len(left) != len(right):
            return False
        return all(_values_match(l, r, state)
                   for l, r in zip(left.elements, right.elements,
                                strict=True))
    if isinstance(left, WolSet) and isinstance(right, WolSet):
        if len(left) != len(right):
            return False
        return _match_sets(sorted(left, key=str), sorted(right, key=str),
                           state)
    return left == right


def _match_sets(left: List[Value], right: List[Value],
                state: _MatchState) -> bool:
    """Backtracking bipartite match between two equal-size value lists."""
    if not left:
        return True
    head, rest = left[0], left[1:]
    for index, candidate in enumerate(right):
        snapshot = (dict(state.forward), dict(state.backward))
        if _values_match(head, candidate, state):
            if _match_sets(rest, right[:index] + right[index + 1:], state):
                return True
        state.forward, state.backward = snapshot
    return False


def find_isomorphism(left: Instance, right: Instance,
                     budget: int = 1_000_000) -> Optional[Dict[Oid, Oid]]:
    """An oid bijection making the instances equal, or None.

    ``budget`` caps the number of backtracking steps; exceeding it raises
    :class:`RuntimeError` rather than silently reporting non-isomorphism.
    """
    if left.schema.classes != right.schema.classes:
        return None
    if left.class_sizes() != right.class_sizes():
        return None

    left_colour = _refine_colours(left)
    right_colour = _refine_colours(right)

    # Group by (class, colour histogram signature): candidate targets for
    # each left oid are right oids of the same class whose colour class has
    # the same cardinality profile.
    def colour_groups(instance: Instance, colour: Dict[Oid, int]
                      ) -> Dict[Tuple[str, object], List[Oid]]:
        groups: Dict[Tuple[str, object], List[Oid]] = {}
        for oid in instance.all_oids():
            sig = (oid.class_name,
                   repr(_shape(instance.value_of(oid), colour)))
            groups.setdefault(sig, []).append(oid)
        return groups

    left_groups = colour_groups(left, left_colour)
    right_groups = colour_groups(right, right_colour)
    if set(left_groups) != set(right_groups):
        return None
    if any(len(left_groups[sig]) != len(right_groups[sig])
           for sig in left_groups):
        return None

    order = [oid for sig in sorted(left_groups, key=repr)
             for oid in sorted(left_groups[sig], key=str)]
    state = _MatchState({}, {})
    steps = [0]

    def candidates(oid: Oid) -> List[Oid]:
        sig = (oid.class_name, repr(_shape(left.value_of(oid), left_colour)))
        return right_groups[sig]

    def extend(position: int) -> bool:
        steps[0] += 1
        if steps[0] > budget:
            raise RuntimeError("isomorphism search budget exceeded")
        if position == len(order):
            return True
        oid = order[position]
        if oid in state.forward:
            # Already forced by an earlier value match; check consistency.
            target = state.forward[oid]
            snapshot = (dict(state.forward), dict(state.backward))
            if _values_match(left.value_of(oid), right.value_of(target),
                             state) and extend(position + 1):
                return True
            state.forward, state.backward = snapshot
            return False
        for target in candidates(oid):
            if target in state.backward:
                continue
            snapshot = (dict(state.forward), dict(state.backward))
            state.forward[oid] = target
            state.backward[target] = oid
            if _values_match(left.value_of(oid), right.value_of(target),
                             state) and extend(position + 1):
                return True
            state.forward, state.backward = snapshot
        return False

    if extend(0):
        return dict(state.forward)
    return None


def isomorphic(left: Instance, right: Instance) -> bool:
    """True iff the instances are equal up to renaming of oids."""
    return find_isomorphism(left, right) is not None


def rename_oids(instance: Instance, mapping: Dict[Oid, Oid]) -> Instance:
    """Apply an oid renaming to a whole instance.

    ``mapping`` must be injective on the instance's oids and preserve
    classes; unmapped oids keep their identity.
    """
    valuations: Dict[str, Dict[Oid, Value]] = {}
    for cname in instance.schema.class_names():
        valuations[cname] = {}
        for oid in instance.objects_of(cname):
            new_oid = mapping.get(oid, oid)
            if new_oid.class_name != oid.class_name:
                raise ValueError(
                    f"renaming moves {oid} across classes to {new_oid}")
            if new_oid in valuations[cname]:
                raise ValueError(f"renaming is not injective at {new_oid}")
            valuations[cname][new_oid] = map_oids(
                instance.value_of(oid), mapping)
    return Instance(instance.schema, valuations)
