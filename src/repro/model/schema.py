"""Schemas of the WOL data model (paper Section 2.1).

A schema consists of a finite set of classes and, for each class, the type of
the values associated with objects of that class.  The class type itself must
not be a class type (objects carry structured values, not bare references).

A textual schema language is provided for convenience::

    schema USCities {
      class CityA  = (name: str, state: StateA)    key name;
      class StateA = (name: str, capital: CityA)   key name;
    }

The ``key`` suffix attaches a surrogate-key specification (Section 2.2); see
:mod:`repro.model.keys`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .types import (ClassType, RecordType, Type, TypeError_, parse_type,
                    resolve_class_refs)


class SchemaError(Exception):
    """Raised for malformed schemas (dangling refs, bad class types...)."""


@dataclass(frozen=True)
class Schema:
    """A WOL schema: a finite map from class names to their value types."""

    name: str
    classes: Tuple[Tuple[str, Type], ...]
    _index: Dict[str, Type] = field(init=False, repr=False, compare=False,
                                    hash=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        names = [cname for cname, _ in self.classes]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate class names: {duplicates}")
        canonical = tuple(sorted(self.classes, key=lambda item: item[0]))
        object.__setattr__(self, "classes", canonical)
        object.__setattr__(self, "_index", dict(canonical))
        known = frozenset(names)
        for cname, ctype in self.classes:
            if isinstance(ctype, ClassType):
                raise SchemaError(
                    f"class {cname}: the associated type may not itself be "
                    f"a class type (got {ctype})")
            try:
                resolve_class_refs(ctype, known)
            except TypeError_ as exc:
                raise SchemaError(f"class {cname}: {exc}") from exc

    @staticmethod
    def of(name: str, **classes: Type) -> "Schema":
        return Schema(name, tuple(classes.items()))

    def class_names(self) -> Tuple[str, ...]:
        return tuple(cname for cname, _ in self.classes)

    def has_class(self, cname: str) -> bool:
        return cname in self._index

    def class_type(self, cname: str) -> Type:
        """The type ``tau^C`` of values carried by objects of class ``cname``."""
        try:
            return self._index[cname]
        except KeyError:
            raise SchemaError(
                f"schema {self.name!r} has no class {cname!r}") from None

    def attribute_type(self, cname: str, attr: str) -> Type:
        """The type of attribute ``attr`` of class ``cname``.

        Only defined when the class type is a record type, which is the common
        case in the paper's examples.
        """
        ctype = self.class_type(cname)
        if not isinstance(ctype, RecordType):
            raise SchemaError(
                f"class {cname} has non-record type {ctype}; "
                f"no attribute {attr!r}")
        try:
            return ctype.field_type(attr)
        except TypeError_ as exc:
            raise SchemaError(str(exc)) from exc

    def attributes(self, cname: str) -> Tuple[str, ...]:
        """Attribute labels of ``cname`` (empty if its type is not a record)."""
        ctype = self.class_type(cname)
        if isinstance(ctype, RecordType):
            return ctype.labels()
        return ()

    def references(self, cname: str) -> Tuple[str, ...]:
        """Classes referenced (at any depth) by the type of ``cname``."""
        return self.class_type(cname).class_names()

    def __iter__(self) -> Iterator[Tuple[str, Type]]:
        return iter(self.classes)

    def __str__(self) -> str:
        lines = [f"schema {self.name} {{"]
        for cname, ctype in self.classes:
            lines.append(f"  class {cname} = {ctype};")
        lines.append("}")
        return "\n".join(lines)


def merge_schemas(name: str, schemas: Iterable[Schema]) -> Schema:
    """Union several schemas into one (class names must not collide).

    Transformations may read from multiple source databases at once; the
    normaliser works against the merged source schema.
    """
    classes: List[Tuple[str, Type]] = []
    seen: Dict[str, str] = {}
    for schema in schemas:
        for cname, ctype in schema:
            if cname in seen:
                raise SchemaError(
                    f"class {cname!r} appears in both schema "
                    f"{seen[cname]!r} and schema {schema.name!r}")
            seen[cname] = schema.name
            classes.append((cname, ctype))
    return Schema(name, tuple(classes))


_SCHEMA_RE = re.compile(r"schema\s+([A-Za-z_][A-Za-z0-9_]*)\s*\{", re.S)
_CLASS_RE = re.compile(
    r"class\s+([A-Za-z_][A-Za-z0-9_]*)\s*=\s*", re.S)


def parse_schema(text: str):
    """Parse the textual schema language.

    Returns a :class:`repro.model.keys.KeyedSchema` when any ``key`` clause is
    present, otherwise a plain :class:`Schema`.  Comments run from ``--`` or
    ``#`` to end of line.
    """
    # Local import to avoid a cycle: keys.py imports Schema from here.
    from .keys import KeyedSchema, KeySpec, attribute_key, attributes_key

    stripped = _strip_comments(text)
    match = _SCHEMA_RE.search(stripped)
    if not match:
        raise SchemaError("expected 'schema <Name> { ... }'")
    schema_name = match.group(1)
    body_start = match.end()
    body_end = stripped.rfind("}")
    if body_end < body_start:
        raise SchemaError("unterminated schema body (missing '}')")
    body = stripped[body_start:body_end]

    classes: List[Tuple[str, Type]] = []
    key_attrs: Dict[str, Tuple[str, ...]] = {}
    for decl in _split_decls(body):
        cmatch = _CLASS_RE.match(decl)
        if not cmatch:
            raise SchemaError(f"cannot parse class declaration: {decl!r}")
        cname = cmatch.group(1)
        rest = decl[cmatch.end():].strip()
        key_part: Optional[str] = None
        kidx = _find_key_keyword(rest)
        if kidx is not None:
            key_part = rest[kidx + len("key"):].strip()
            rest = rest[:kidx].strip()
        classes.append((cname, parse_type(rest)))
        if kidx is not None:
            attrs = tuple(a.strip() for a in key_part.split(",") if a.strip())
            if not attrs:
                raise SchemaError(f"class {cname}: empty key clause")
            key_attrs[cname] = attrs

    schema = Schema(schema_name, tuple(classes))
    if not key_attrs:
        return schema

    specs = {}
    for cname, attrs in key_attrs.items():
        if len(attrs) == 1:
            specs[cname] = attribute_key(schema, cname, attrs[0])
        else:
            specs[cname] = attributes_key(schema, cname, attrs)
    return KeyedSchema(schema, KeySpec(specs))


def _strip_comments(text: str) -> str:
    lines = []
    for line in text.splitlines():
        for marker in ("--", "#"):
            idx = line.find(marker)
            if idx >= 0:
                line = line[:idx]
        lines.append(line)
    return "\n".join(lines)


def _split_decls(body: str) -> List[str]:
    """Split the schema body into class declarations at top-level ';'."""
    decls = []
    depth = 0
    current = []
    for ch in body:
        if ch in "({[<":
            depth += 1
        elif ch in ")}]>":
            depth -= 1
        if ch == ";" and depth == 0:
            decl = "".join(current).strip()
            if decl:
                decls.append(decl)
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        decls.append(tail)
    return decls


def _find_key_keyword(decl: str) -> Optional[int]:
    """Index of a top-level ``key`` keyword in a class declaration body."""
    depth = 0
    i = 0
    while i < len(decl):
        ch = decl[i]
        if ch in "({[<":
            depth += 1
        elif ch in ")}]>":
            depth -= 1
        elif depth == 0 and decl.startswith("key", i):
            before_ok = i == 0 or not (decl[i - 1].isalnum() or decl[i - 1] == "_")
            after = i + 3
            after_ok = after >= len(decl) or not (
                decl[after].isalnum() or decl[after] == "_")
            if before_ok and after_ok:
                return i
        i += 1
    return None
