"""Database instances of the WOL data model (paper Section 2.1).

An instance ``I`` of a schema ``S`` consists of a finite set of object
identities ``sigma^C`` for each class ``C``, and a valuation ``V^C`` mapping
each identity to a value of the class type ``tau^C``, such that every object
identity occurring in any stored value is itself part of the instance.

:class:`Instance` is immutable; :class:`InstanceBuilder` is the mutable
construction interface used by adapters, workload generators and the
execution engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from .schema import Schema
from .values import (Oid, Record, Value, ValueError_, check_value,
                     format_value, oids_in)


class InstanceError(Exception):
    """Raised when an instance violates well-formedness."""


@dataclass(frozen=True)
class Instance:
    """An immutable database instance.

    ``valuations`` maps each class name to a mapping from the class's object
    identities to their values.  Every class of the schema is present (with an
    empty mapping when the class has no objects).
    """

    schema: Schema
    valuations: Mapping[str, Mapping[Oid, Value]]

    def __post_init__(self) -> None:
        frozen: Dict[str, Dict[Oid, Value]] = {}
        for cname in self.schema.class_names():
            frozen[cname] = dict(self.valuations.get(cname, {}))
        for cname in self.valuations:
            if cname not in frozen:
                raise InstanceError(
                    f"instance stores class {cname!r} absent from "
                    f"schema {self.schema.name!r}")
        object.__setattr__(self, "valuations", frozen)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def objects_of(self, cname: str) -> Tuple[Oid, ...]:
        """The object identities ``sigma^C`` of class ``cname``."""
        if cname not in self.valuations:
            raise InstanceError(
                f"schema {self.schema.name!r} has no class {cname!r}")
        return tuple(self.valuations[cname])

    def value_of(self, oid: Oid) -> Value:
        """The stored value ``V^C(oid)``."""
        try:
            return self.valuations[oid.class_name][oid]
        except KeyError:
            raise InstanceError(
                f"object {oid} is not part of this instance") from None

    def has_object(self, oid: Oid) -> bool:
        return (oid.class_name in self.valuations
                and oid in self.valuations[oid.class_name])

    def attribute(self, oid: Oid, attr: str) -> Value:
        """Project attribute ``attr`` from the value of ``oid``.

        This is the paper's ``x.a`` notation: take ``V^C(x)``, which must be
        a record, and project the field.
        """
        value = self.value_of(oid)
        if not isinstance(value, Record):
            raise InstanceError(
                f"object {oid} carries non-record value "
                f"{format_value(value)}; cannot project {attr!r}")
        return value.get(attr)

    def all_oids(self) -> Iterator[Oid]:
        for cname in sorted(self.valuations):
            yield from self.valuations[cname]

    def size(self) -> int:
        """Total number of objects across all classes."""
        return sum(len(objs) for objs in self.valuations.values())

    def class_sizes(self) -> Dict[str, int]:
        return {cname: len(objs) for cname, objs in self.valuations.items()}

    # ------------------------------------------------------------------
    # Well-formedness
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check instance well-formedness; raise :class:`InstanceError`.

        Checks per Section 2.1: every stored value inhabits its class type
        and every object identity occurring in a stored value is itself in
        the instance, and oids are filed under their own class.
        """
        for cname, objs in self.valuations.items():
            ctype = self.schema.class_type(cname)
            for oid, value in objs.items():
                if oid.class_name != cname:
                    raise InstanceError(
                        f"object {oid} filed under class {cname}")
                try:
                    check_value(value, ctype)
                except ValueError_ as exc:
                    raise InstanceError(
                        f"class {cname}, object {oid}: {exc}") from exc
                for ref in oids_in(value):
                    if not self.has_object(ref):
                        raise InstanceError(
                            f"class {cname}, object {oid}: value references "
                            f"{ref}, which is not in the instance")

    def is_valid(self) -> bool:
        try:
            self.validate()
        except InstanceError:
            return False
        return True

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def builder(self) -> "InstanceBuilder":
        """A mutable copy of this instance."""
        builder = InstanceBuilder(self.schema)
        for cname, objs in self.valuations.items():
            for oid, value in objs.items():
                builder.put(oid, value)
        return builder

    def restrict(self, class_names: Iterable[str]) -> "Instance":
        """Sub-instance keeping only the objects of the given classes.

        The schema is unchanged (class types may reference dropped classes),
        so the result may dangle; callers wanting a well-formed result should
        validate it.
        """
        keep = set(class_names)
        for cname in keep:
            if not self.schema.has_class(cname):
                raise InstanceError(
                    f"schema {self.schema.name!r} has no class {cname!r}")
        return Instance(self.schema, {
            cname: dict(objs) for cname, objs in self.valuations.items()
            if cname in keep})

    def __str__(self) -> str:
        lines = [f"instance of {self.schema.name}:"]
        for cname in sorted(self.valuations):
            objs = self.valuations[cname]
            lines.append(f"  {cname} ({len(objs)} objects)")
            for oid in sorted(objs, key=str):
                lines.append(f"    {oid} -> {format_value(objs[oid])}")
        return "\n".join(lines)


class InstanceBuilder:
    """Mutable builder for :class:`Instance`.

    Supports both anonymous objects (:meth:`new`) and Skolem-keyed objects
    (:meth:`make`), the latter being idempotent: asking twice for the same
    class and key returns the same identity, which is how WOL's ``Mk^C``
    Skolem functions behave.
    """

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._valuations: Dict[str, Dict[Oid, Value]] = {
            cname: {} for cname in schema.class_names()}

    def _class_store(self, cname: str) -> Dict[Oid, Value]:
        try:
            return self._valuations[cname]
        except KeyError:
            raise InstanceError(
                f"schema {self.schema.name!r} has no class {cname!r}"
            ) from None

    def new(self, cname: str, value: Value) -> Oid:
        """Insert a fresh anonymous object of class ``cname``."""
        oid = Oid.fresh(cname)
        self._class_store(cname)[oid] = value
        return oid

    def make(self, cname: str, key: Value, value: Optional[Value] = None) -> Oid:
        """Get-or-create the keyed object ``Mk^C(key)``.

        When ``value`` is given and the object already exists with a
        different value, an :class:`InstanceError` is raised — two clauses
        may not disagree about the same object.
        """
        oid = Oid.keyed(cname, key)
        store = self._class_store(cname)
        if oid in store:
            if value is not None and store[oid] != value:
                raise InstanceError(
                    f"conflicting values for {oid}: "
                    f"{format_value(store[oid])} vs {format_value(value)}")
        else:
            store[oid] = value if value is not None else Record(())
        return oid

    def put(self, oid: Oid, value: Value) -> Oid:
        """Insert or overwrite ``oid`` with ``value``."""
        self._class_store(oid.class_name)[oid] = value
        return oid

    def set_attribute(self, oid: Oid, attr: str, value: Value) -> None:
        """Set one attribute of a record-valued object.

        Raises on conflict with an existing different value for ``attr`` —
        this is how the engine detects non-functional transformation
        programs.
        """
        store = self._class_store(oid.class_name)
        current = store.get(oid, Record(()))
        if not isinstance(current, Record):
            raise InstanceError(
                f"object {oid} carries non-record value; "
                f"cannot set attribute {attr!r}")
        if current.has(attr) and current.get(attr) != value:
            raise InstanceError(
                f"conflicting values for {oid}.{attr}: "
                f"{format_value(current.get(attr))} vs {format_value(value)}")
        store[oid] = current.with_field(attr, value)

    def has_object(self, oid: Oid) -> bool:
        return (oid.class_name in self._valuations
                and oid in self._valuations[oid.class_name])

    def value_of(self, oid: Oid) -> Value:
        try:
            return self._valuations[oid.class_name][oid]
        except KeyError:
            raise InstanceError(
                f"object {oid} is not part of this builder") from None

    def objects_of(self, cname: str) -> Tuple[Oid, ...]:
        return tuple(self._class_store(cname))

    def freeze(self, validate: bool = True) -> Instance:
        """Produce the immutable instance (validated by default)."""
        instance = Instance(self.schema, {
            cname: dict(objs) for cname, objs in self._valuations.items()})
        if validate:
            instance.validate()
        return instance


def empty_instance(schema: Schema) -> Instance:
    """The empty instance of ``schema``."""
    return Instance(schema, {})
