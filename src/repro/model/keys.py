"""Surrogate keys and keyed schemas (paper Section 2.2).

A *key specification* ``K`` for a schema assigns to each class ``C`` a
function ``K^C`` mapping the objects of ``C`` in an instance to values of a
class-free type ``kappa^C``.  An instance satisfies the specification iff
``K^C`` is injective on every class — equal keys imply equal objects.

Key functions here are *path-based*: each key component follows a chain of
attributes starting from the object, dereferencing object identities along
the way.  This covers the paper's examples, e.g. for European cities::

    K^CityE(c)  = (name = c.name, country_name = c.country.name)
    K^CountryE(c) = c.name
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

from .schema import Schema
from .types import ClassType, RecordType, Type, TypeError_
from .values import Oid, Record, Value, format_value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .instance import Instance


class KeyError_(Exception):
    """Raised for malformed key specifications or key violations."""


Path = Tuple[str, ...]


@dataclass(frozen=True)
class KeyFunction:
    """A surrogate-key function for one class.

    ``components`` associates output labels with attribute paths.  With a
    single component labelled ``None`` the key value is the bare path value;
    otherwise the key value is a record of the labelled components.
    """

    class_name: str
    components: Tuple[Tuple[Optional[str], Path], ...]

    def __post_init__(self) -> None:
        if not self.components:
            raise KeyError_(f"key for {self.class_name} has no components")
        labels = [label for label, _ in self.components]
        if len(self.components) > 1 and None in labels:
            raise KeyError_(
                f"key for {self.class_name}: multi-component keys need "
                f"labels on every component")
        if len(set(labels)) != len(labels):
            raise KeyError_(
                f"key for {self.class_name}: duplicate component labels")

    def key_type(self, schema: Schema) -> Type:
        """The key type ``kappa^C`` induced by the component paths."""
        parts = [(label, _path_type(schema, self.class_name, path))
                 for label, path in self.components]
        for label, ty in parts:
            if ty.involves_class():
                raise KeyError_(
                    f"key for {self.class_name}: component "
                    f"{label or '.'.join(self.components[0][1])} has type "
                    f"{ty}, but key types may not involve classes")
        if len(parts) == 1 and parts[0][0] is None:
            return parts[0][1]
        return RecordType(tuple((label, ty) for label, ty in parts))

    def apply(self, instance: "Instance", oid: Oid) -> Value:
        """Compute the key value of ``oid`` in ``instance``."""
        parts = [(label, _follow_path(instance, oid, path))
                 for label, path in self.components]
        if len(parts) == 1 and parts[0][0] is None:
            return parts[0][1]
        return Record(tuple((label, value) for label, value in parts))

    def __str__(self) -> str:
        def render(label: Optional[str], path: Path) -> str:
            dotted = ".".join(path)
            return dotted if label is None else f"{label} = x.{dotted}"

        inner = ", ".join(render(label, path)
                          for label, path in self.components)
        return f"K^{self.class_name}(x) = {inner}"


def _path_type(schema: Schema, class_name: str, path: Path) -> Type:
    """Type obtained by following ``path`` from objects of ``class_name``."""
    if not path:
        raise KeyError_(f"key for {class_name}: empty attribute path")
    current: Type = ClassType(class_name)
    for attr in path:
        if isinstance(current, ClassType):
            current = schema.class_type(current.name)
        if not isinstance(current, RecordType):
            raise KeyError_(
                f"key for {class_name}: cannot project {attr!r} "
                f"from non-record type {current}")
        try:
            current = current.field_type(attr)
        except TypeError_ as exc:
            raise KeyError_(f"key for {class_name}: {exc}") from exc
    if isinstance(current, ClassType):
        raise KeyError_(
            f"key for {class_name}: path {'.'.join(path)} ends at class "
            f"type {current}; extend the path to a value attribute")
    return current


def _follow_path(instance: "Instance", oid: Oid, path: Path) -> Value:
    current: Value = oid
    for attr in path:
        if isinstance(current, Oid):
            current = instance.value_of(current)
        if not isinstance(current, Record):
            raise KeyError_(
                f"cannot project {attr!r} from {format_value(current)}")
        current = current.get(attr)
    return current


def attribute_key(schema: Schema, class_name: str, attr: str) -> KeyFunction:
    """Key on a single (possibly dotted) attribute path, e.g. ``name``."""
    path = tuple(attr.split("."))
    fn = KeyFunction(class_name, ((None, path),))
    fn.key_type(schema)  # validate eagerly
    return fn


def attributes_key(schema: Schema, class_name: str,
                   attrs: Tuple[str, ...]) -> KeyFunction:
    """Key on several attribute paths; the key value is a record.

    Dotted paths get their dots replaced by underscores in the record label,
    mirroring the paper's ``country_name = z.country.name``.
    """
    components = []
    for attr in attrs:
        path = tuple(attr.split("."))
        label = "_".join(path)
        components.append((label, path))
    fn = KeyFunction(class_name, tuple(components))
    fn.key_type(schema)
    return fn


@dataclass(frozen=True)
class KeySpec:
    """A key specification: key functions for (a subset of) the classes."""

    functions: Mapping[str, KeyFunction]

    def __post_init__(self) -> None:
        for cname, fn in self.functions.items():
            if fn.class_name != cname:
                raise KeyError_(
                    f"key function for {fn.class_name} registered "
                    f"under class {cname}")
        object.__setattr__(self, "functions", dict(self.functions))

    def __hash__(self) -> int:
        return hash(tuple(sorted(self.functions)))

    def has_key(self, class_name: str) -> bool:
        return class_name in self.functions

    def key_for(self, class_name: str) -> KeyFunction:
        try:
            return self.functions[class_name]
        except KeyError:
            raise KeyError_(f"no key function for class {class_name}") from None

    def classes(self) -> Tuple[str, ...]:
        return tuple(sorted(self.functions))


@dataclass(frozen=True)
class KeyedSchema:
    """A schema together with a key specification (paper Section 2.2)."""

    schema: Schema
    keys: KeySpec

    def __post_init__(self) -> None:
        for cname in self.keys.classes():
            if not self.schema.has_class(cname):
                raise KeyError_(
                    f"key specification mentions unknown class {cname!r}")
            # Validate the key type is well formed and class-free.
            self.keys.key_for(cname).key_type(self.schema)

    @property
    def name(self) -> str:
        return self.schema.name

    def __str__(self) -> str:
        lines = [str(self.schema)]
        for cname in self.keys.classes():
            lines.append(str(self.keys.key_for(cname)))
        return "\n".join(lines)


@dataclass(frozen=True)
class KeyViolation:
    """Two distinct objects of one class sharing a key value."""

    class_name: str
    key_value: Value
    first: Oid
    second: Oid

    def __str__(self) -> str:
        return (f"key violation in class {self.class_name}: objects "
                f"{self.first} and {self.second} share key "
                f"{format_value(self.key_value)}")


def key_violations(instance: "Instance", keys: KeySpec) -> List[KeyViolation]:
    """All key violations of ``instance`` against ``keys``.

    The instance satisfies the specification iff the result is empty.
    """
    violations: List[KeyViolation] = []
    for cname in keys.classes():
        if not instance.schema.has_class(cname):
            continue
        fn = keys.key_for(cname)
        seen: Dict[Value, Oid] = {}
        for oid in sorted(instance.objects_of(cname), key=str):
            key_value = fn.apply(instance, oid)
            if key_value in seen and seen[key_value] != oid:
                violations.append(
                    KeyViolation(cname, key_value, seen[key_value], oid))
            else:
                seen[key_value] = oid
    return violations


def satisfies_keys(instance: "Instance", keys: KeySpec) -> bool:
    """True iff ``instance`` satisfies the key specification."""
    return not key_violations(instance, keys)
