"""Type system of the WOL data model (paper Section 2.1).

The types over a set of classes ``C`` consist of:

* base types ``b`` (``int``, ``str``, ``bool``, ``float`` and the trivial
  ``unit`` type used for argument-less variant choices such as ``ins_male()``),
* class types ``C`` for each class name, denoting object identities,
* set types ``{tau}``,
* list types ``[tau]`` (the paper admits lists alongside sets),
* record types ``(a1: tau1, ..., ak: tauk)``,
* variant types ``<<a1: tau1, ..., ak: tauk>>``.

All type objects are immutable and hashable so they can be used as dictionary
keys during type inference, and structural equality is definitional equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Tuple


class TypeError_(Exception):
    """Raised when a type expression is malformed or used inconsistently."""


@dataclass(frozen=True)
class Type:
    """Abstract base class for WOL types."""

    def is_ground(self) -> bool:
        """Return True when the type contains no type variables."""
        return all(child.is_ground() for child in self.children())

    def children(self) -> Tuple["Type", ...]:
        """Immediate component types (empty for leaves)."""
        return ()

    def walk(self) -> Iterator["Type"]:
        """Yield this type and every nested component type, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def class_names(self) -> Tuple[str, ...]:
        """All class names mentioned anywhere inside this type, in order."""
        seen = []
        for node in self.walk():
            if isinstance(node, ClassType) and node.name not in seen:
                seen.append(node.name)
        return tuple(seen)

    def involves_class(self) -> bool:
        """True if any class type occurs in this type.

        Key types must not involve classes (paper Section 2.2), so this check
        is used when validating key specifications.
        """
        return any(isinstance(node, ClassType) for node in self.walk())


@dataclass(frozen=True)
class BaseType(Type):
    """A base type such as ``int`` or ``str``."""

    name: str

    _VALID = frozenset({"int", "str", "bool", "float", "unit"})

    def __post_init__(self) -> None:
        if self.name not in self._VALID:
            raise TypeError_(f"unknown base type {self.name!r}; "
                             f"expected one of {sorted(self._VALID)}")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ClassType(Type):
    """The type of object identities of a named class."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or not self.name[0].isalpha():
            raise TypeError_(f"invalid class name {self.name!r}")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class SetType(Type):
    """A finite set of elements of a common type."""

    element: Type

    def children(self) -> Tuple[Type, ...]:
        return (self.element,)

    def __str__(self) -> str:
        return "{%s}" % self.element


@dataclass(frozen=True)
class ListType(Type):
    """A finite list (ordered, duplicates allowed)."""

    element: Type

    def children(self) -> Tuple[Type, ...]:
        return (self.element,)

    def __str__(self) -> str:
        return "[%s]" % self.element


def _check_labels(kind: str, fields: Tuple[Tuple[str, Type], ...]) -> None:
    labels = [label for label, _ in fields]
    if len(set(labels)) != len(labels):
        duplicates = sorted({l for l in labels if labels.count(l) > 1})
        raise TypeError_(f"duplicate {kind} labels: {duplicates}")
    for label in labels:
        if not label or not (label[0].isalpha() or label[0] == "_"):
            raise TypeError_(f"invalid {kind} label {label!r}")


@dataclass(frozen=True)
class RecordType(Type):
    """A record type ``(a1: tau1, ..., ak: tauk)``.

    Field order is preserved for printing but ignored for equality: two record
    types with the same field set are the same type.
    """

    fields: Tuple[Tuple[str, Type], ...]
    _index: Dict[str, Type] = field(init=False, repr=False, compare=False,
                                    hash=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        _check_labels("record", self.fields)
        canonical = tuple(sorted(self.fields, key=lambda item: item[0]))
        object.__setattr__(self, "fields", canonical)
        object.__setattr__(self, "_index", dict(canonical))

    def labels(self) -> Tuple[str, ...]:
        return tuple(label for label, _ in self.fields)

    def field_type(self, label: str) -> Type:
        try:
            return self._index[label]
        except KeyError:
            raise TypeError_(
                f"record type {self} has no field {label!r}") from None

    def has_field(self, label: str) -> bool:
        return label in self._index

    def children(self) -> Tuple[Type, ...]:
        return tuple(ty for _, ty in self.fields)

    def __str__(self) -> str:
        inner = ", ".join(f"{label}: {ty}" for label, ty in self.fields)
        return f"({inner})"


@dataclass(frozen=True)
class VariantType(Type):
    """A variant type ``<<a1: tau1, ..., ak: tauk>>``.

    A value of this type is a pair of a choice label and a value of the
    corresponding choice type.
    """

    choices: Tuple[Tuple[str, Type], ...]
    _index: Dict[str, Type] = field(init=False, repr=False, compare=False,
                                    hash=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if not self.choices:
            raise TypeError_("variant type must have at least one choice")
        _check_labels("variant", self.choices)
        canonical = tuple(sorted(self.choices, key=lambda item: item[0]))
        object.__setattr__(self, "choices", canonical)
        object.__setattr__(self, "_index", dict(canonical))

    def labels(self) -> Tuple[str, ...]:
        return tuple(label for label, _ in self.choices)

    def choice_type(self, label: str) -> Type:
        try:
            return self._index[label]
        except KeyError:
            raise TypeError_(
                f"variant type {self} has no choice {label!r}") from None

    def has_choice(self, label: str) -> bool:
        return label in self._index

    def children(self) -> Tuple[Type, ...]:
        return tuple(ty for _, ty in self.choices)

    def __str__(self) -> str:
        inner = ", ".join(f"{label}: {ty}" for label, ty in self.choices)
        return f"<<{inner}>>"


# Convenient singletons for the base types.
INT = BaseType("int")
STR = BaseType("str")
BOOL = BaseType("bool")
FLOAT = BaseType("float")
UNIT = BaseType("unit")


def record(**fields: Type) -> RecordType:
    """Build a record type from keyword arguments: ``record(name=STR)``."""
    return RecordType(tuple(fields.items()))


def variant(**choices: Type) -> VariantType:
    """Build a variant type from keyword arguments: ``variant(male=UNIT)``."""
    return VariantType(tuple(choices.items()))


def set_of(element: Type) -> SetType:
    """Build a set type over ``element``."""
    return SetType(element)


def list_of(element: Type) -> ListType:
    """Build a list type over ``element``."""
    return ListType(element)


def resolve_class_refs(ty: Type, known_classes: frozenset) -> None:
    """Check that every class type inside ``ty`` names a known class.

    Raises :class:`TypeError_` listing the first dangling reference.
    """
    for node in ty.walk():
        if isinstance(node, ClassType) and node.name not in known_classes:
            raise TypeError_(
                f"type {ty} refers to unknown class {node.name!r}")


def parse_type(text: str) -> Type:
    """Parse a textual type expression.

    Grammar (whitespace-insensitive)::

        type    := base | Class | '{' type '}' | '[' type ']'
                 | '(' fields? ')' | '<<' fields '>>'
        fields  := label ':' type (',' label ':' type)*
        base    := 'int' | 'str' | 'bool' | 'float' | 'unit'

    Class names are capitalised identifiers; anything that is neither a base
    type nor a structured type is treated as a class reference.
    """
    parser = _TypeParser(text)
    ty = parser.parse_type()
    parser.expect_end()
    return ty


class _TypeParser:
    """Tiny recursive-descent parser for :func:`parse_type`."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def _peek(self, token: str) -> bool:
        self._skip_ws()
        return self.text.startswith(token, self.pos)

    def _eat(self, token: str) -> bool:
        if self._peek(token):
            self.pos += len(token)
            return True
        return False

    def _expect(self, token: str) -> None:
        if not self._eat(token):
            raise TypeError_(
                f"expected {token!r} at position {self.pos} in {self.text!r}")

    def _ident(self) -> str:
        self._skip_ws()
        start = self.pos
        while self.pos < len(self.text) and (
                self.text[self.pos].isalnum() or self.text[self.pos] == "_"):
            self.pos += 1
        if start == self.pos:
            raise TypeError_(
                f"expected identifier at position {start} in {self.text!r}")
        return self.text[start:self.pos]

    def _fields(self, closer: str) -> Tuple[Tuple[str, Type], ...]:
        fields = []
        if not self._peek(closer):
            while True:
                label = self._ident()
                self._expect(":")
                fields.append((label, self.parse_type()))
                if not self._eat(","):
                    break
        self._expect(closer)
        return tuple(fields)

    def parse_type(self) -> Type:
        if self._eat("{"):
            element = self.parse_type()
            self._expect("}")
            return SetType(element)
        if self._eat("["):
            element = self.parse_type()
            self._expect("]")
            return ListType(element)
        if self._eat("<<"):
            return VariantType(self._fields(">>"))
        if self._eat("("):
            return RecordType(self._fields(")"))
        name = self._ident()
        if name in BaseType._VALID:
            return BaseType(name)
        return ClassType(name)

    def expect_end(self) -> None:
        self._skip_ws()
        if self.pos != len(self.text):
            raise TypeError_(
                f"trailing input at position {self.pos} in {self.text!r}")
