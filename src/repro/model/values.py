"""Values of the WOL data model (paper Section 2.1).

Values are the things stored in database instances: base values, object
identities, records, variants, sets and lists.  All values are immutable and
hashable, so sets of values and value-keyed dictionaries work out of the box,
and the Skolem-keyed object identities of the execution engine can be
hash-consed.

The Python representations are:

============  =======================================
WOL value     Python representation
============  =======================================
base value    ``int`` / ``str`` / ``bool`` / ``float``
unit          :data:`UNIT_VALUE` (singleton)
object id     :class:`Oid`
record        :class:`Record`
variant       :class:`Variant`
set           :class:`WolSet`
list          :class:`WolList`
============  =======================================
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple, Union

from .types import (BOOL, FLOAT, INT, STR, UNIT, BaseType, ClassType,
                    ListType, RecordType, SetType, Type, TypeError_,
                    VariantType)


class ValueError_(Exception):
    """Raised when a value is malformed or fails a type check."""


@dataclass(frozen=True)
class UnitValue:
    """The single value of the ``unit`` type (argument-less variants)."""

    def __str__(self) -> str:
        return "()"


UNIT_VALUE = UnitValue()

_OID_COUNTER = itertools.count(1)


@dataclass(frozen=True)
class Oid:
    """An object identity.

    Object identities belong to a class and are either *anonymous* (created
    with a fresh serial number, unrelated to any value) or *keyed* (created by
    a Skolem function from a key value, so that equal keys give equal
    identities — the paper's ``Mk^C`` functions).
    """

    class_name: str
    key: Optional["Value"] = None
    serial: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.key is None) == (self.serial is None):
            raise ValueError_(
                "an Oid needs exactly one of a key or a serial number")

    def __hash__(self) -> int:
        # Oids are dict keys everywhere (instances, indexes, pending
        # stores, intern tables) and keyed identities hash a whole key
        # record each time — cache the hash on first use.
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            value = hash((self.class_name, self.key, self.serial))
            object.__setattr__(self, "_hash", value)
            return value

    def __getstate__(self):
        # str hashes are salted per process: never ship a cached hash
        # across a pickle boundary (the parallel engine does).  The
        # cached rendering is dropped too — it is pure payload.
        state = dict(self.__dict__)
        state.pop("_hash", None)
        state.pop("_str", None)
        return state

    @staticmethod
    def fresh(class_name: str) -> "Oid":
        """Create a new anonymous object identity of ``class_name``."""
        return Oid(class_name, serial=next(_OID_COUNTER))

    @staticmethod
    def keyed(class_name: str, key: "Value") -> "Oid":
        """Create (or re-create) the identity determined by ``key``."""
        return Oid(class_name, key=key)

    @staticmethod
    def keyed_unchecked(class_name: str, key: "Value") -> "Oid":
        """:meth:`keyed` without the one-of-key-or-serial validation.

        The vectorized executor mints keyed identities in bulk; the
        shape is fixed at compile time, so the per-instance check is
        dead weight.  ``key`` must not be None.
        """
        oid = object.__new__(Oid)
        fields = oid.__dict__
        fields["class_name"] = class_name
        fields["key"] = key
        fields["serial"] = None
        return oid

    @property
    def is_keyed(self) -> bool:
        return self.key is not None

    def __str__(self) -> str:
        # The deterministic collection order sorts by textual form, so
        # set-heavy workloads render each oid many times — cache it.
        try:
            return self._str  # type: ignore[attr-defined]
        except AttributeError:
            if self.is_keyed:
                text = f"&{self.class_name}[{format_value(self.key)}]"
            else:
                text = f"&{self.class_name}#{self.serial}"
            object.__setattr__(self, "_str", text)
            return text


@dataclass(frozen=True)
class Record:
    """A record value with named fields.

    Fields are stored sorted by label so equality and hashing are
    order-insensitive, matching record-type equality.
    """

    fields: Tuple[Tuple[str, "Value"], ...]
    _index: Dict[str, "Value"] = field(init=False, repr=False, compare=False,
                                       hash=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        labels = [label for label, _ in self.fields]
        if len(set(labels)) != len(labels):
            raise ValueError_(f"duplicate record field labels in {labels}")
        canonical = tuple(sorted(self.fields, key=lambda item: item[0]))
        object.__setattr__(self, "fields", canonical)
        object.__setattr__(self, "_index", dict(canonical))

    def __hash__(self) -> int:
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            value = hash(self.fields)
            object.__setattr__(self, "_hash", value)
            return value

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_hash", None)  # per-process str-hash salt
        state.pop("_str", None)
        return state

    @staticmethod
    def of(**fields: "Value") -> "Record":
        return Record(tuple(fields.items()))

    @staticmethod
    def presorted(fields: Tuple[Tuple[str, "Value"], ...]) -> "Record":
        """Construct from fields already sorted by distinct labels.

        The vectorized executor builds key records in bulk with a
        label layout fixed at compile time; this skips the per-row
        re-validation and re-sort of ``__post_init__``.  Callers must
        guarantee sortedness and distinctness — an unsorted layout
        would break record equality.
        """
        record = object.__new__(Record)
        state = record.__dict__
        state["fields"] = fields
        state["_index"] = dict(fields)
        return record

    def labels(self) -> Tuple[str, ...]:
        return tuple(label for label, _ in self.fields)

    def get(self, label: str) -> "Value":
        try:
            return self._index[label]
        except KeyError:
            raise ValueError_(f"record {self} has no field {label!r}") from None

    def has(self, label: str) -> bool:
        return label in self._index

    def with_field(self, label: str, value: "Value") -> "Record":
        """Return a copy with ``label`` set (added or replaced)."""
        updated = dict(self.fields)
        updated[label] = value
        return Record(tuple(updated.items()))

    def __str__(self) -> str:
        try:
            return self._str  # type: ignore[attr-defined]
        except AttributeError:
            inner = ", ".join(
                f"{label} = {format_value(value)}"
                for label, value in self.fields)
            text = f"({inner})"
            object.__setattr__(self, "_str", text)
            return text


@dataclass(frozen=True)
class Variant:
    """A variant value: a choice label paired with a carried value."""

    label: str
    value: "Value" = UNIT_VALUE

    def __str__(self) -> str:
        if self.value == UNIT_VALUE:
            return f"ins_{self.label}()"
        return f"ins_{self.label}({format_value(self.value)})"


@dataclass(frozen=True)
class WolSet:
    """A finite set value."""

    elements: frozenset

    def __post_init__(self) -> None:
        if not isinstance(self.elements, frozenset):
            object.__setattr__(self, "elements", frozenset(self.elements))

    @staticmethod
    def of(*elements: "Value") -> "WolSet":
        return WolSet(frozenset(elements))

    def __iter__(self) -> Iterator["Value"]:
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def __contains__(self, value: "Value") -> bool:
        return value in self.elements

    def __str__(self) -> str:
        inner = ", ".join(sorted(format_value(v) for v in self.elements))
        return "{%s}" % inner


@dataclass(frozen=True)
class WolList:
    """A finite list value (ordered, duplicates allowed)."""

    elements: Tuple["Value", ...]

    def __post_init__(self) -> None:
        if not isinstance(self.elements, tuple):
            object.__setattr__(self, "elements", tuple(self.elements))

    @staticmethod
    def of(*elements: "Value") -> "WolList":
        return WolList(tuple(elements))

    def __iter__(self) -> Iterator["Value"]:
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def __str__(self) -> str:
        inner = ", ".join(format_value(v) for v in self.elements)
        return "[%s]" % inner


Value = Union[int, str, bool, float, UnitValue, Oid, Record, Variant,
              WolSet, WolList]


def format_value(value: Value) -> str:
    """Human-readable rendering of any WOL value."""
    if isinstance(value, str):
        return f'"{value}"'
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def type_of_base(value: Value) -> Optional[BaseType]:
    """The base type of a Python scalar, or None for structured values."""
    # bool must precede int: Python bools are ints.
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT
    if isinstance(value, float):
        return FLOAT
    if isinstance(value, str):
        return STR
    if isinstance(value, UnitValue):
        return UNIT
    return None


def check_value(value: Value, ty: Type) -> None:
    """Check that ``value`` inhabits ``ty``; raise :class:`ValueError_` if not.

    Object identities are checked against their class name only — whether an
    oid actually occurs in the instance is the instance well-formedness check
    (:meth:`repro.model.instance.Instance.validate`), not a value-level one.
    """
    if isinstance(ty, BaseType):
        actual = type_of_base(value)
        if actual != ty:
            raise ValueError_(
                f"value {format_value(value)} is not of base type {ty}")
        return
    if isinstance(ty, ClassType):
        if not isinstance(value, Oid) or value.class_name != ty.name:
            raise ValueError_(
                f"value {format_value(value)} is not an oid of class {ty}")
        return
    if isinstance(ty, SetType):
        if not isinstance(value, WolSet):
            raise ValueError_(f"value {format_value(value)} is not a set")
        for element in value:
            check_value(element, ty.element)
        return
    if isinstance(ty, ListType):
        if not isinstance(value, WolList):
            raise ValueError_(f"value {format_value(value)} is not a list")
        for element in value:
            check_value(element, ty.element)
        return
    if isinstance(ty, RecordType):
        if not isinstance(value, Record):
            raise ValueError_(f"value {format_value(value)} is not a record")
        expected = set(ty.labels())
        actual = set(value.labels())
        if expected != actual:
            raise ValueError_(
                f"record {value} has fields {sorted(actual)}, "
                f"type {ty} expects {sorted(expected)}")
        for label, fty in ty.fields:
            check_value(value.get(label), fty)
        return
    if isinstance(ty, VariantType):
        if not isinstance(value, Variant):
            raise ValueError_(f"value {format_value(value)} is not a variant")
        if not ty.has_choice(value.label):
            raise ValueError_(
                f"variant {value} uses choice {value.label!r}, "
                f"not among {list(ty.labels())}")
        check_value(value.value, ty.choice_type(value.label))
        return
    raise TypeError_(f"unknown type node {ty!r}")


def oids_in(value: Value) -> Iterator[Oid]:
    """Yield every object identity occurring (recursively) in ``value``."""
    if isinstance(value, Oid):
        yield value
    elif isinstance(value, Record):
        for _, fval in value.fields:
            yield from oids_in(fval)
    elif isinstance(value, Variant):
        yield from oids_in(value.value)
    elif isinstance(value, (WolSet, WolList)):
        for element in value:
            yield from oids_in(element)


def map_oids(value: Value, mapping: Dict[Oid, Oid]) -> Value:
    """Return ``value`` with every oid replaced through ``mapping``.

    Oids absent from ``mapping`` are left unchanged.  Used by the isomorphism
    checker and by adapters that re-key identities on import/export.
    """
    if isinstance(value, Oid):
        return mapping.get(value, value)
    if isinstance(value, Record):
        return Record(tuple(
            (label, map_oids(fval, mapping)) for label, fval in value.fields))
    if isinstance(value, Variant):
        return Variant(value.label, map_oids(value.value, mapping))
    if isinstance(value, WolSet):
        return WolSet(frozenset(map_oids(e, mapping) for e in value))
    if isinstance(value, WolList):
        return WolList(tuple(map_oids(e, mapping) for e in value))
    return value
