"""Renaming classes across schemas and instances.

Transformations in WOL run between *disjoint* class namespaces (the merged
schema of Section 3 has one flat namespace), but real schema evolution
usually keeps class names.  This utility renames classes in a schema and,
consistently, in an instance — rebuilding object identities (including
keyed identities whose keys embed other identities) and every stored
value.
"""

from __future__ import annotations

from typing import Dict, Mapping

from .instance import Instance
from .keys import KeyFunction, KeySpec, KeyedSchema
from .schema import Schema
from .types import (ClassType, ListType, RecordType, SetType, Type,
                    VariantType)
from .values import Oid, Record, Value, Variant, WolList, WolSet


def rename_type(ty: Type, mapping: Mapping[str, str]) -> Type:
    """Rename class references inside a type."""
    if isinstance(ty, ClassType):
        return ClassType(mapping.get(ty.name, ty.name))
    if isinstance(ty, SetType):
        return SetType(rename_type(ty.element, mapping))
    if isinstance(ty, ListType):
        return ListType(rename_type(ty.element, mapping))
    if isinstance(ty, RecordType):
        return RecordType(tuple(
            (label, rename_type(fty, mapping)) for label, fty in ty.fields))
    if isinstance(ty, VariantType):
        return VariantType(tuple(
            (label, rename_type(cty, mapping))
            for label, cty in ty.choices))
    return ty


def rename_schema(schema: Schema, mapping: Mapping[str, str]) -> Schema:
    """Rename classes of a schema (types rewritten consistently)."""
    return Schema(schema.name, tuple(
        (mapping.get(cname, cname), rename_type(ctype, mapping))
        for cname, ctype in schema))


def rename_keyed_schema(keyed: KeyedSchema,
                        mapping: Mapping[str, str]) -> KeyedSchema:
    schema = rename_schema(keyed.schema, mapping)
    functions = {}
    for cname in keyed.keys.classes():
        fn = keyed.keys.key_for(cname)
        new_name = mapping.get(cname, cname)
        functions[new_name] = KeyFunction(new_name, fn.components)
    return KeyedSchema(schema, KeySpec(functions))


class _Renamer:
    def __init__(self, mapping: Mapping[str, str]) -> None:
        self.mapping = dict(mapping)
        self._oids: Dict[Oid, Oid] = {}

    def oid(self, old: Oid) -> Oid:
        cached = self._oids.get(old)
        if cached is not None:
            return cached
        cname = self.mapping.get(old.class_name, old.class_name)
        if old.is_keyed:
            new = Oid.keyed(cname, self.value(old.key))
        else:
            new = Oid(cname, serial=old.serial)
        self._oids[old] = new
        return new

    def value(self, value: Value) -> Value:
        if isinstance(value, Oid):
            return self.oid(value)
        if isinstance(value, Record):
            return Record(tuple(
                (label, self.value(v)) for label, v in value.fields))
        if isinstance(value, Variant):
            return Variant(value.label, self.value(value.value))
        if isinstance(value, WolSet):
            return WolSet(frozenset(self.value(v) for v in value))
        if isinstance(value, WolList):
            return WolList(tuple(self.value(v) for v in value))
        return value


def rename_instance_classes(instance: Instance,
                            mapping: Mapping[str, str]) -> Instance:
    """Rename classes in an instance, rebuilding identities and values.

    Keyed identities are re-keyed recursively: a key embedding an oid of a
    renamed class gets that oid renamed too, so Skolem-generated identities
    stay consistent.
    """
    renamer = _Renamer(mapping)
    schema = rename_schema(instance.schema, mapping)
    valuations: Dict[str, Dict[Oid, Value]] = {}
    for cname in instance.schema.class_names():
        new_name = mapping.get(cname, cname)
        valuations[new_name] = {
            renamer.oid(oid): renamer.value(instance.value_of(oid))
            for oid in instance.objects_of(cname)}
    return Instance(schema, valuations)
