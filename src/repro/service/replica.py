"""Follower side of leader→follower WAL replication.

The warehouse store is a replicated state machine waiting to happen:
the leader serialises every write into an ordered, CRC-checked WAL,
and deltas apply deterministically — so a follower that replays the
same records over the same snapshot *is* the leader, one long-poll
behind.  This module runs that follower:

* **Seed** — fetch the leader's live snapshot by its content address
  (``GET /snapshot/<name>``, digest re-verified after transfer), lay
  it down as a local store generation, and open it.  The snapshot's
  ``base_seq`` watermark is the replication cursor's starting point.
* **Tail** — long-poll ``GET /wal?from=<applied+1>``, append each
  record to the *local* WAL (the follower is itself durable and
  restarts from its own store), and drive the decoded delta through
  the warm session's incremental engine — the IndexPool rebases per
  batch, exactly as on the leader.
* **Catch up** — when the leader compacted past the follower's cursor
  (``reset: true``), reseed from the new snapshot and swap the warm
  session's store in place under the write lock; readers never observe
  the swap mid-flight.

:class:`ReplicaSession` is a :class:`~repro.service.session.
WarehouseSession` that serves ``/query``, ``/program``, ``/check`` and
``/target`` locally but answers every write with 409
``read_only_replica`` pointing at the leader — horizontal *read*
scale-out, one writer.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional
from urllib import request as urlrequest
from urllib.error import HTTPError

from ..obs.events import log_event
from ..obs.metrics import REGISTRY
from ..obs.trace import current_trace_id
from ..store.snapshot import snapshot_name, write_current
from ..store.store import StoreError, WAL_NAME, WarehouseStore
from ..store.wal import WriteAheadLog
from .session import ServiceError, WarehouseSession

#: Distributed-trace id header, forwarded on leader polls so a traced
#: request that triggers follower I/O stays one trace end to end.
TRACE_HEADER = "X-Repro-Trace"


class ReplicaError(Exception):
    """Raised when the leader is unreachable or answers garbage."""


@dataclass
class ReplicationState:
    """What the tailing loop has observed (rides in ``/stats``)."""

    leader: str                      #: base URL of the leader.
    leader_seq: int = 0              #: leader's seq at the last poll.
    records_replicated: int = 0      #: WAL records applied locally.
    polls: int = 0                   #: completed /wal polls.
    resyncs: int = 0                 #: snapshot-seeded catch-ups.
    connected: bool = False          #: did the last poll succeed?
    last_error: Optional[str] = None


class ReplicaSession(WarehouseSession):
    """A read-only warm session kept current by replicated WAL records.

    Reads are served exactly like the leader's (same planned/columnar
    query paths over the same warm IndexPool); writes are refused with
    409 so a misdirected client learns the leader's address instead of
    forking history.
    """

    role = "replica"

    def __init__(self, morphase, store: WarehouseStore,
                 leader_url: str,
                 defaults: Optional[Dict] = None) -> None:
        super().__init__(morphase, store, defaults=defaults)
        self.leader_url = leader_url
        self.replication = ReplicationState(leader=leader_url)

    # ------------------------------------------------------------------
    # Writes: refused
    # ------------------------------------------------------------------
    def _read_only(self) -> ServiceError:
        return ServiceError(
            f"this node is a read replica; send writes to the leader "
            f"at {self.leader_url}", status=409,
            code="read_only_replica",
            details={"leader": self.leader_url})

    def ingest_json(self, data: Dict[str, Any]):
        raise self._read_only()

    def ingest(self, delta):
        raise self._read_only()

    # ------------------------------------------------------------------
    # Replication apply path
    # ------------------------------------------------------------------
    def replicate(self, records: List[Dict[str, Any]]) -> int:
        """Append and apply a batch of leader WAL records, in order.

        Each record is decoded against the local store (the leader's
        durable labels resolve against the snapshot-derived label map),
        appended to the local WAL — the follower restarts from its own
        disk — and the whole batch is composed into one incremental
        apply, like a leader group-commit.  Records at or below the
        local seq are duplicate deliveries (poll overlap) and skipped;
        a gap means the feed and the cursor disagree and poisons
        nothing: the caller reseeds from the snapshot.
        """
        batch = []
        with self._intake:
            self._check_alive()
            for record in records:
                seq = int(record["seq"])
                if seq <= self.store.seq:
                    continue
                if seq != self.store.seq + 1:
                    raise ReplicaError(
                        f"replication gap: local store is at seq "
                        f"{self.store.seq}, leader sent {seq}")
                delta = self.store.decode_delta(record["payload"])
                appended = self.store.append(delta)
                if appended != seq:
                    raise ReplicaError(
                        f"leader record {seq} decoded to an empty "
                        f"delta — the feed is corrupt")
                batch.append((seq, delta))
            if batch:
                try:
                    self._apply_batch(batch)
                except Exception as exc:
                    # Same poisoning as the leader's group commit: the
                    # durable log and the warm state disagree now, and
                    # only a restart (full warm rebuild) reconciles.
                    self._failure = str(exc)
                    raise
                with self._cond:
                    self._applied_seq = batch[-1][0]
                    self._cond.notify_all()
                self.replication.records_replicated += len(batch)
        if batch:
            self._notify_wal()  # replicas can be chained: wake our own tailers
        return len(batch)

    def replace_store(self, store: WarehouseStore) -> None:
        """Swap in a freshly seeded store (snapshot-seeded catch-up).

        The warm transform/audit state is rebuilt over the new store
        under the write lock, so concurrent readers see either the old
        generation or the new one — never a half-attached session.
        """
        with self._intake:
            old = self.store
            with self._state_lock.write():
                self._attach_store(store)
            old.close()
        self.replication.resyncs += 1
        log_event("replica_reseed", leader=self.leader_url,
                  base_seq=store.base_seq, seq=store.seq,
                  resyncs=self.replication.resyncs)
        self._notify_wal()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def publish_metrics(self) -> None:
        super().publish_metrics()
        state = self.replication
        gauge = REGISTRY.gauge
        gauge("repro_replication_lag",
              "Leader seq minus locally applied seq at the last poll."
              ).set(max(0, state.leader_seq - self._applied_seq))
        gauge("repro_replication_leader_seq",
              "Leader sequence number at the last poll.").set(
            state.leader_seq)
        gauge("repro_replication_records",
              "Leader WAL records replicated into this node.").set(
            state.records_replicated)
        gauge("repro_replication_polls",
              "Completed /wal polls against the leader.").set(
            state.polls)
        gauge("repro_replication_resyncs",
              "Snapshot-seeded catch-ups (leader compacted past us)."
              ).set(state.resyncs)
        gauge("repro_replication_connected",
              "1 when the last leader poll succeeded.").set(
            1 if state.connected else 0)

    def stats_json(self) -> Dict[str, Any]:
        stats = super().stats_json()
        state = self.replication
        stats["replication"] = {
            "leader": state.leader,
            "leader_seq": state.leader_seq,
            "applied_seq": self._applied_seq,
            "lag": max(0, state.leader_seq - self._applied_seq),
            "records_replicated": state.records_replicated,
            "polls": state.polls,
            "resyncs": state.resyncs,
            "connected": state.connected,
            "last_error": state.last_error,
        }
        return stats


class WalReplica:
    """Bootstrap plus tailing loop: one follower of one leader.

    Usage::

        replica = WalReplica(morphase, "http://leader:8973", "replica/")
        session = replica.start()          # seed + background tailing
        server = make_server(session, port=8974)

    ``start()`` runs :meth:`step` on a daemon thread; tests and the
    benchmarks can instead call :meth:`bootstrap` + :meth:`step`
    directly for deterministic, single-threaded replication.
    """

    def __init__(self, morphase, leader_url: str, store_dir: str,
                 defaults: Optional[Dict] = None,
                 poll_wait: float = 5.0, poll_limit: int = 500,
                 timeout: float = 60.0, retry_seconds: float = 0.5,
                 fsync: bool = False) -> None:
        self.morphase = morphase
        self.leader_url = leader_url.rstrip("/")
        self.store_dir = store_dir
        self.defaults = defaults
        self.poll_wait = poll_wait
        self.poll_limit = poll_limit
        self.timeout = timeout
        self.retry_seconds = retry_seconds
        self.fsync = fsync
        self.session: Optional[ReplicaSession] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Leader I/O
    # ------------------------------------------------------------------
    def _fetch(self, path: str) -> Any:
        """GET one leader endpoint; unwrap the envelope or raise."""
        url = self.leader_url + path
        headers: Dict[str, str] = {}
        trace_id = current_trace_id()
        if trace_id is not None:
            headers[TRACE_HEADER] = trace_id
        req = urlrequest.Request(url, headers=headers)
        try:
            with urlrequest.urlopen(req, timeout=self.timeout) as resp:
                document = json.loads(resp.read().decode("utf-8"))
        except HTTPError as exc:
            try:
                error = json.loads(exc.read().decode("utf-8")
                                   ).get("error", {})
            except (ValueError, AttributeError):
                error = {}
            raise ReplicaError(
                f"leader answered HTTP {exc.code} for {path}: "
                f"{error.get('message', exc.reason)}") from exc
        except (OSError, ValueError) as exc:
            raise ReplicaError(
                f"cannot reach leader at {url}: {exc}") from exc
        if not (isinstance(document, dict) and document.get("ok")):
            raise ReplicaError(
                f"leader answered a failure envelope for {path}: "
                f"{document!r}")
        return document["result"]

    # ------------------------------------------------------------------
    # Seeding
    # ------------------------------------------------------------------
    def _seed_store(self) -> WarehouseStore:
        """Fetch the leader's live snapshot; lay down a local store.

        The snapshot is content-addressed: its digest is re-verified
        after the transfer, so a truncated or tampered document never
        becomes a store generation.  Write order is snapshot file →
        WAL reset → ``CURRENT`` flip: dying in between leaves either
        the old generation (stale but coherent — the next tail poll
        reseeds) or the new one.
        """
        meta = self._fetch("/wal?from=1&limit=0&wait=0")
        name = meta["snapshot"]
        document = self._fetch(f"/snapshot/{name}")
        content = json.dumps(document, sort_keys=True,
                             separators=(",", ":")).encode("utf-8")
        if snapshot_name(content) != name:
            raise ReplicaError(
                f"snapshot {name} failed its content check after "
                f"transfer — refusing to seed from it")
        os.makedirs(self.store_dir, exist_ok=True)
        path = os.path.join(self.store_dir, name)
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(content)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        WriteAheadLog(os.path.join(self.store_dir, WAL_NAME)).reset()
        # The watermark comes from the snapshot document itself, not
        # the /wal poll — the leader may have compacted between the
        # two fetches, and the document is the self-consistent truth
        # about which sequence it subsumes.
        write_current(self.store_dir, name,
                      base_seq=int(document["base_seq"]), wal=WAL_NAME)
        return self.morphase.open_store(self.store_dir,
                                        fsync=self.fsync)

    def bootstrap(self) -> ReplicaSession:
        """Open (or seed) the local store and build the warm session.

        A store left by a previous run is reused — the follower
        resumes tailing from its own durable position instead of
        re-downloading a snapshot it already holds; if the leader has
        compacted past that position in the meantime, the first
        :meth:`step` reseeds.
        """
        if self.session is not None:
            return self.session
        if WarehouseStore.exists(self.store_dir):
            store = self.morphase.open_store(self.store_dir,
                                             fsync=self.fsync)
        else:
            store = self._seed_store()
        self.session = ReplicaSession(self.morphase, store,
                                      leader_url=self.leader_url,
                                      defaults=self.defaults)
        return self.session

    # ------------------------------------------------------------------
    # Tailing
    # ------------------------------------------------------------------
    def step(self, wait: Optional[float] = None) -> int:
        """One poll-and-apply round; returns records applied.

        ``wait`` overrides the long-poll window (0 makes the call
        non-blocking — the test and benchmark mode).
        """
        session = self.bootstrap()
        wait = self.poll_wait if wait is None else wait
        from_seq = session.store.seq + 1
        response = self._fetch(
            f"/wal?from={from_seq}&limit={self.poll_limit}"
            f"&wait={wait:g}")
        state = session.replication
        state.polls += 1
        state.leader_seq = int(response["seq"])
        state.connected = True
        state.last_error = None
        if response.get("reset"):
            # The leader compacted past our cursor: the records we
            # need no longer exist anywhere — catch up from the
            # snapshot that subsumed them.
            session.replace_store(self._seed_store())
            return 0
        if response["records"]:
            return session.replicate(response["records"])
        return 0

    def catch_up(self, deadline_seconds: float = 60.0) -> int:
        """Step until the local seq reaches the leader's (tests/CLI).

        Returns the converged sequence number; raises
        :class:`ReplicaError` when the deadline passes first.
        """
        session = self.bootstrap()
        deadline = time.monotonic() + deadline_seconds
        while True:
            self.step(wait=0.0)
            state = session.replication
            if session.store.seq >= state.leader_seq:
                return session.store.seq
            if time.monotonic() > deadline:
                raise ReplicaError(
                    f"replica did not catch up within "
                    f"{deadline_seconds}s (local seq "
                    f"{session.store.seq}, leader "
                    f"{state.leader_seq})")

    def run(self) -> None:
        """The tailing loop body (runs on the :meth:`start` thread)."""
        while not self._stop.is_set():
            try:
                self.step()
            except (ReplicaError, ServiceError, StoreError,
                    OSError) as exc:
                if self.session is not None:
                    state = self.session.replication
                    if state.connected:
                        # Log the edge (up → down), not every retry —
                        # an unreachable leader would otherwise flood
                        # the event log at the retry cadence.
                        log_event("replica_outage",
                                  leader=self.leader_url,
                                  error=str(exc))
                    state.connected = False
                    state.last_error = str(exc)
                self._stop.wait(self.retry_seconds)

    def start(self) -> ReplicaSession:
        """Bootstrap, then tail the leader on a daemon thread."""
        session = self.bootstrap()
        self._thread = threading.Thread(target=self.run, daemon=True,
                                        name="wal-replica")
        self._thread.start()
        return session

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            # The thread may be parked in a leader-side long poll; the
            # join bound covers one full poll plus slack.
            self._thread.join(timeout=self.poll_wait
                              + self.timeout + 5.0)
            self._thread = None

    def close(self) -> None:
        self.stop()
        if self.session is not None:
            self.session.close()


__all__ = ["ReplicaError", "ReplicaSession", "ReplicationState",
           "WalReplica"]
