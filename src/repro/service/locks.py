"""A writer-preferring read-write lock (stdlib threading only).

The service's workload is many concurrent queries against a target
instance that changes only when a delta batch lands.  Plain mutual
exclusion would serialise the queries; this lock lets any number of
readers share the warm state while writers get exclusivity — and
*priority*, so a steady query stream cannot starve ingestion.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from ..obs.metrics import LATENCY_BUCKETS, REGISTRY

#: How long acquirers waited for the session read-write lock — the
#: direct saturation signal ("readers stalled behind a batch apply" /
#: "a writer starved behind a query storm").
_WAIT_SECONDS = REGISTRY.histogram(
    "repro_rwlock_wait_seconds",
    "Time spent waiting to acquire the session read-write lock.",
    ("mode",), buckets=LATENCY_BUCKETS)
_WAIT_READ = _WAIT_SECONDS.labels("read")
_WAIT_WRITE = _WAIT_SECONDS.labels("write")


class ReadWriteLock:
    """Many concurrent readers, one exclusive (and preferred) writer."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        start = time.perf_counter()
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        _WAIT_READ.observe(time.perf_counter() - start)

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        start = time.perf_counter()
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True
        _WAIT_WRITE.observe(time.perf_counter() - start)

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    @contextmanager
    def read(self):
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
