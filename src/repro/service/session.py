"""The warm warehouse session: one compiled program, served many times.

:class:`WarehouseSession` ties a :class:`~repro.store.WarehouseStore`
to a :class:`~repro.morphase.system.Morphase` and keeps everything a
request would otherwise pay for *warm* across requests: the compiled
normal form, the planned join orders, the shared index pool, the
incremental transform state (target + per-clause effect counts) and
the incremental audit state (the live violation set).

Construction rebuilds warmth from durable state the cheap way: one
batch run over the store's *snapshot* instance, then the recovered WAL
tail re-applied through the incremental engine — each replayed delta
patches the index pool via ``IndexPool.rebase`` instead of rebuilding
indexes from scratch.

Writes group-commit: every ingested delta is individually durable (WAL
append first), but a burst of deltas queued while a batch is applying
is composed (:func:`repro.evolution.delta.compose_deltas`) and applied
as *one* incremental step — callers block only until the batch holding
their delta lands.  Reads (query/check/stats) share a
writer-preferring read-write lock, so they run concurrently with each
other and never observe a half-applied batch.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from functools import reduce
from typing import Any, Dict, List, Optional, Tuple

from ..evolution.delta import Delta, compose_deltas
from ..io.json_io import instance_to_json
from ..obs.metrics import BATCH_BUCKETS, LATENCY_BUCKETS, REGISTRY, Counter
from ..obs.trace import span
from ..store.store import WarehouseStore
from .locks import ReadWriteLock

_BATCH_SIZE = REGISTRY.histogram(
    "repro_commit_batch_size",
    "Deltas composed into one group-commit batch.",
    buckets=BATCH_BUCKETS)
_BATCH_APPLY_SECONDS = REGISTRY.histogram(
    "repro_commit_apply_seconds",
    "Wall time applying one composed batch through the incremental "
    "engine (under the write lock).", buckets=LATENCY_BUCKETS)


class ServiceError(Exception):
    """Raised for session misuse or a spent (poisoned) session.

    ``status`` is the HTTP status the front end should map this to:
    400 for malformed requests, 404 for unknown names, 422 for inputs
    that parsed but failed validation, 503 for a spent session, 500
    for a server-side apply failure observed by a waiting writer.
    ``code`` optionally pins the machine-readable envelope error code
    (the server derives a default from ``status`` otherwise) and
    ``details`` rides along in the error envelope (e.g. a diagnostics
    report).
    """

    def __init__(self, message: str, status: int = 400,
                 code: Optional[str] = None,
                 details: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.details = details


@dataclass
class IngestResult:
    """What one acknowledged delta ingestion observed."""

    seq: int                  #: WAL sequence number of this delta.
    applied_seq: int          #: highest seq applied when we returned.
    batch_size: int           #: deltas in the batch that landed ours.
    violations: int           #: live violation count after the batch.


class SessionCounters:
    """Service-level statistics (exposed by ``/stats``).

    Request counters are backed by :class:`repro.obs.metrics.Counter`
    atomics — the old dataclass fields were bumped with bare ``+=``
    under the *read* lock, so two concurrent handlers could lose
    increments (a read-modify-write race).  Reads stay plain attribute
    access (``counters.queries``), so ``/stats`` and the tests are
    unchanged.  Counters are per-session on purpose: a process hosting
    a leader and a follower (tests, demos) must not blend their
    request counts.
    """

    _COUNTER_FIELDS = ("ingested", "batches", "queries", "body_queries",
                       "programs", "checks", "lints", "snapshots")

    def __init__(self) -> None:
        self._atomics = {name: Counter()
                         for name in self._COUNTER_FIELDS}
        self._max_lock = threading.Lock()
        self._max_batch = 0
        self.rebuild_ms = 0.0
        self.replayed_on_open = 0
        self.apply_ms_total = 0.0
        self.last_batch_ms = 0.0
        self.started_at = time.time()

    def inc(self, name: str, amount: int = 1) -> None:
        """Atomically bump one request counter."""
        self._atomics[name].inc(amount)

    def note_batch(self, size: int) -> None:
        """Record one applied batch's size (count, running max)."""
        self._atomics["batches"].inc()
        self._atomics["ingested"].inc(size)
        with self._max_lock:
            if size > self._max_batch:
                self._max_batch = size

    @property
    def max_batch(self) -> int:
        with self._max_lock:
            return self._max_batch

    def __getattr__(self, name: str):
        atomics = self.__dict__.get("_atomics")
        if atomics is not None and name in atomics:
            return int(atomics[name].value)
        raise AttributeError(name)


#: Longest a ``/wal`` long-poll may park one handler thread, whatever
#: the client asked for.
MAX_WAL_WAIT = 30.0

#: Most records one ``/wal`` response carries (a follower just polls
#: again — bounding the batch bounds response size and lock-free list
#: slicing).
MAX_WAL_BATCH = 1000


class WarehouseSession:
    """A long-lived, thread-safe Morphase serving session."""

    #: What this node answers in ``/stats`` and ``/metrics``
    #: (:class:`~repro.service.replica.ReplicaSession` overrides).
    role = "leader"

    def __init__(self, morphase, store: WarehouseStore,
                 defaults: Optional[Dict] = None) -> None:
        self.morphase = morphase
        self._defaults = defaults
        self.counters = SessionCounters()

        self._state_lock = ReadWriteLock()
        self._intake = threading.Lock()     # serialises WAL appends
        self._cond = threading.Condition()  # batch hand-off
        # /wal long-poll hand-off: notified whenever the store's
        # sequence number advances (ingest, replication) or the store
        # itself is swapped (replica reseed).
        self._wal_cond = threading.Condition()
        self._pending: List[Tuple[int, Delta]] = []
        self._applying = False
        self._failure: Optional[str] = None
        self._attach_store(store)

    def _attach_store(self, store: WarehouseStore) -> None:
        """Warm-rebuild this session's derived state over ``store``.

        Batch-run once over the snapshot base, then drive the
        recovered WAL tail through the incremental engine — the index
        pool is rebased per delta, never rebuilt.  Called from
        ``__init__`` and again (under the write lock) when a replica
        reseeds itself from a fresh leader snapshot.
        """
        start = time.perf_counter()
        self.store = store
        self.transform = self.morphase.begin_incremental(
            store.base_instance, defaults=self._defaults)
        self.audit = self.morphase.begin_incremental_audit(
            store.base_instance)
        for _seq, delta in store.tail:
            self.transform.apply_delta(delta)
            self.audit.apply_delta(delta)
        self.counters.replayed_on_open = len(store.tail)
        self.counters.rebuild_ms = (time.perf_counter() - start) * 1000
        self._applied_seq = store.seq
        # Serialised target document, keyed by the applied sequence
        # number it renders — the target only changes at batch
        # boundaries, so reads between them share one encoding.
        self._target_cache: Optional[Tuple[int, Dict[str, Any]]] = None
        # Warm query state over the *target*: a shared IndexPool (whose
        # indexes amortise across /query?body= and /program requests)
        # and the dump oid-encoder, both invalidated at batch
        # boundaries like the target document.
        self._warm_cache: Optional[Tuple[int, Any, Any]] = None

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def ingest_json(self, data: Dict[str, Any]) -> IngestResult:
        """Decode a label-addressed delta document and ingest it."""
        with self._intake:
            self._check_alive()
            with span("decode-delta"):
                delta = self.store.decode_delta(data)
            with span("wal-append") as append_span:
                seq = self.store.append(delta)
                append_span.set(seq=seq)
            if not delta.is_empty():
                with self._cond:
                    self._pending.append((seq, delta))
        self._notify_wal()
        return self._await_applied(seq)

    def ingest(self, delta: Delta) -> IngestResult:
        """Durably ingest one delta (decoded form)."""
        with self._intake:
            self._check_alive()
            seq = self.store.append(delta)
            if not delta.is_empty():
                with self._cond:
                    self._pending.append((seq, delta))
        self._notify_wal()
        return self._await_applied(seq)

    def _notify_wal(self) -> None:
        """Wake /wal long-polls: the durable sequence advanced."""
        with self._wal_cond:
            self._wal_cond.notify_all()

    @property
    def spent(self) -> Optional[str]:
        """Why the session can no longer apply writes (None = healthy)."""
        return self._failure

    def _check_alive(self) -> None:
        if self._failure is not None:
            raise ServiceError(
                f"session is spent ({self._failure}); restart the "
                f"service to rebuild from the store", status=503)

    def _await_applied(self, seq: int) -> IngestResult:
        """Group commit: one thread applies the whole queued burst."""
        batch_size = 0
        with self._cond:
            while self._applied_seq < seq:
                if self._failure is not None:
                    raise ServiceError(
                        f"delta batch failed to apply: {self._failure}",
                        status=500)
                if self._applying or not self._pending:
                    self._cond.wait(timeout=0.5)
                    continue
                batch = self._pending
                self._pending = []
                self._applying = True
                self._cond.release()
                try:
                    self._apply_batch(batch)
                except Exception as exc:
                    self._cond.acquire()
                    self._applying = False
                    self._failure = str(exc)
                    self._cond.notify_all()
                    raise
                self._cond.acquire()
                self._applying = False
                self._applied_seq = batch[-1][0]
                batch_size = len(batch)
                self._cond.notify_all()
        with self._state_lock.read():
            violations = len(self.audit.violations())
        return IngestResult(seq=seq, applied_seq=self._applied_seq,
                            batch_size=batch_size,
                            violations=violations)

    def _apply_batch(self, batch: List[Tuple[int, Delta]]) -> None:
        composed = reduce(compose_deltas,
                          (delta for _seq, delta in batch))
        start = time.perf_counter()
        with span("commit", batch=len(batch),
                  seq=batch[-1][0]), self._state_lock.write():
            self.transform.apply_delta(composed)
            self.audit.apply_delta(composed)
        elapsed = (time.perf_counter() - start) * 1000
        _BATCH_SIZE.observe(len(batch))
        _BATCH_APPLY_SECONDS.observe(elapsed / 1000.0)
        self.counters.note_batch(len(batch))
        self.counters.apply_ms_total += elapsed
        self.counters.last_batch_ms = elapsed

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    @property
    def target(self):
        return self.transform.target

    @property
    def applied_seq(self) -> int:
        """Highest sequence number applied to the warm state.

        The monotonic-read watermark: a response carrying this value in
        ``X-Repro-Seq`` promises every delta at or below it is visible.
        """
        return self._applied_seq

    # ------------------------------------------------------------------
    # Replication feed
    # ------------------------------------------------------------------
    def wal_records_from(self, from_seq: int, limit: int = 500,
                         wait: float = 0.0) -> Dict[str, Any]:
        """Serve intact WAL records for ``GET /wal?from=<seq>``.

        Returns the envelope result document: ``records`` (at most
        ``limit`` of ``{"seq", "payload"}``, starting at ``from_seq``),
        the server's current ``seq``/``base_seq``/``snapshot``, and
        ``reset`` — true when ``from_seq`` was compacted away, telling
        the follower to reseed from ``GET /snapshot/<snapshot>``.

        With ``wait > 0`` and no record at ``from_seq`` yet, the call
        long-polls (bounded by :data:`MAX_WAL_WAIT`) until an append
        lands or the wait expires — an idle follower then holds one
        cheap parked request instead of hot-polling.
        """
        if from_seq < 1:
            raise ServiceError(
                "'from' must be a sequence number >= 1")
        if limit < 0:
            raise ServiceError("'limit' must be >= 0")
        if wait < 0:
            raise ServiceError("'wait' must be >= 0 seconds")
        limit = min(limit, MAX_WAL_BATCH)
        deadline = time.monotonic() + min(wait, MAX_WAL_WAIT)
        if limit:
            with self._wal_cond:
                # Checking under the condition closes the lost-wakeup
                # window: appenders notify under the same lock.  A
                # compacted-away ``from_seq`` stops the wait — the
                # answer (reseed) is already known.
                while (self.store.seq < from_seq
                       and from_seq > self.store.base_seq):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._wal_cond.wait(timeout=min(remaining, 1.0))
        store = self.store  # a replica reseed may swap the store
        if from_seq <= store.base_seq:
            return {"from": from_seq, "reset": True, "records": [],
                    "seq": store.seq, "base_seq": store.base_seq,
                    "snapshot": store.snapshot_file}
        records = store.export_records(from_seq, limit) if limit else []
        return {"from": from_seq, "reset": False,
                "records": [{"seq": seq, "payload": payload}
                            for seq, payload in records],
                "seq": store.seq, "base_seq": store.base_seq,
                "snapshot": store.snapshot_file}

    def _target_document(self) -> Dict[str, Any]:
        """The serialised target, cached per applied batch.

        Called under the read lock; concurrent rebuilds are idempotent
        (same seq renders the same document) so the last writer
        winning is harmless.
        """
        cached = self._target_cache
        if cached is not None and cached[0] == self._applied_seq:
            return cached[1]
        document = instance_to_json(self.transform.target)
        self._target_cache = (self._applied_seq, document)
        return document

    def target_json(self) -> Dict[str, Any]:
        with self._state_lock.read():
            self.counters.inc("queries")
            return self._target_document()

    def query_json(self, class_name: str) -> Dict[str, Any]:
        """The target extent of one class (dump-labelled entries)."""
        with self._state_lock.read():
            self.counters.inc("queries")
            target = self.transform.target
            if not target.schema.has_class(class_name):
                raise ServiceError(
                    f"target schema has no class {class_name!r} "
                    f"(classes: {', '.join(target.schema.class_names())})",
                    status=404)
            document = self._target_document()
        return {"class": class_name,
                "count": len(document["objects"][class_name]),
                "objects": document["objects"][class_name]}

    def _warm_query_state(self):
        """(IndexPool, oid-encoder) over the target, cached per batch.

        Called under the read lock.  The pool's indexes amortise
        across every ``/query?body=`` and ``/program`` request between
        two batch boundaries — this cache is exactly the "warm session"
        advantage ``benchmarks/bench_program.py`` measures.
        """
        cached = self._warm_cache
        if cached is not None and cached[0] == self._applied_seq:
            return cached[1], cached[2]
        from ..io.json_io import dump_oid_encoder
        from ..semantics.match import IndexPool
        target = self.transform.target
        pool = IndexPool(target)
        encoder = dump_oid_encoder(target)
        self._warm_cache = (self._applied_seq, pool, encoder)
        return pool, encoder

    def query_body_json(self, body: str,
                        project: Optional[str] = None) -> Dict[str, Any]:
        """Run a WOL conjunctive body against the warm target.

        ``body`` is the atom list of :meth:`repro.query.Query.parse`;
        ``project`` an optional comma-separated projection.  Rows come
        back JSON-encoded with dump oid labels, duplicate-free, in
        canonical (sorted JSON) order — the same row semantics as one
        ``query`` statement of a program.
        """
        import json as _json

        from ..io.json_io import value_to_json
        from ..lang.parser import ParseError
        from ..query.query import Query, QueryError
        text = f"{project} | {body}" if project else body
        with self._state_lock.read():
            self.counters.inc("queries")
            self.counters.inc("body_queries")
            target = self.transform.target
            with span("parse"):
                try:
                    parsed = Query.parse(
                        text, classes=target.schema.class_names())
                except QueryError as exc:
                    parse_failure = isinstance(exc.__cause__, ParseError)
                    raise ServiceError(
                        str(exc),
                        status=400 if parse_failure else 422,
                        code="parse_error" if parse_failure
                        else "validation_failed") from exc
            pool, encoder = self._warm_query_state()
            columns = parsed.projection or parsed.variables()
            by_key: Dict[str, Dict[str, Any]] = {}
            with span("execute") as execute_span:
                for row in parsed.run_planned(target, pool=pool):
                    encoded = {name: value_to_json(value, encoder)
                               for name, value in row.items()}
                    by_key.setdefault(
                        _json.dumps(encoded, sort_keys=True), encoded)
                execute_span.set(rows=len(by_key))
        rows = [by_key[key] for key in sorted(by_key)]
        return {"body": body, "columns": list(columns),
                "count": len(rows), "rows": rows}

    def program_json(self, document: Dict[str, Any]) -> Dict[str, Any]:
        """Compile and run a query program against the warm target.

        ``document`` carries the program as ``{"text": "<DSL>"}`` or
        ``{"ast": {<canonical JSON AST>}}`` (exactly one), plus
        optional ``"columnar": false`` and ``"explain": true``.
        Program parse failures surface as 400, validation failures as
        422 with the WOL5xx diagnostics in the error details.
        """
        from ..program import (ProgramParseError, ProgramValidationError,
                               QueryProgram, compile_program,
                               parse_program_text, run_compiled)
        text = document.get("text")
        ast = document.get("ast")
        if (text is None) == (ast is None):
            raise ServiceError(
                "the request must carry exactly one of 'text' (DSL "
                "source) or 'ast' (canonical JSON AST)")
        columnar = document.get("columnar", True)
        if not isinstance(columnar, bool):
            raise ServiceError("'columnar' must be a boolean")
        explain = document.get("explain", False)
        if not isinstance(explain, bool):
            raise ServiceError("'explain' must be a boolean")
        unknown = set(document) - {"text", "ast", "columnar", "explain"}
        if unknown:
            raise ServiceError(
                f"unknown request field(s): {', '.join(sorted(unknown))}")
        try:
            if text is not None:
                if not isinstance(text, str):
                    raise ServiceError("'text' must be a string")
                program = parse_program_text(text)
            else:
                program = QueryProgram.from_json(ast)
        except ProgramParseError as exc:
            raise ServiceError(str(exc), status=400,
                               code="parse_error") from exc

        with self._state_lock.read():
            self.counters.inc("queries")
            self.counters.inc("programs")
            target = self.transform.target
            pool, encoder = self._warm_query_state()
            with span("compile"):
                try:
                    compiled = compile_program(program, target,
                                               pool=pool)
                except ProgramValidationError as exc:
                    raise ServiceError(
                        str(exc), status=422, code="validation_failed",
                        details={"diagnostics":
                                 exc.report.to_json()}) from exc
            outcome = run_compiled(compiled, target, columnar=columnar,
                                   oid_encoder=encoder)
        response = outcome.to_json()
        if compiled.report.diagnostics:
            response["diagnostics"] = compiled.report.to_json()
        if explain:
            response["explain"] = compiled.explain()
        return response

    def check_json(self) -> Dict[str, Any]:
        with self._state_lock.read():
            self.counters.inc("checks")
            violations = self.audit.violations()
        return {"ok": not violations,
                "count": len(violations),
                "violations": [str(v) for v in violations]}

    def lint_json(self, document: Dict[str, Any]) -> Dict[str, Any]:
        """Statically analyze a WOL program against this session's schemas.

        ``document`` carries ``{"program": "<WOL text>"}`` — typically a
        candidate program an operator wants validated against the live
        schemas before deploying it.  Without a ``program`` field the
        session's *own* program is analyzed (its preflight report).
        Returns the :class:`~repro.analysis.DiagnosticReport` JSON; the
        front end maps ``ok: false`` (error diagnostics) to HTTP 400.
        """
        self.counters.inc("lints")
        text = document.get("program")
        if text is None:
            return self.morphase.preflight_report().to_json()
        if not isinstance(text, str):
            raise ServiceError("'program' must be a WOL program string")
        from ..analysis import analyze_text
        report = analyze_text(text, self.morphase.source_schemas,
                              self.morphase.target_schema)
        return report.to_json()

    def publish_metrics(self) -> None:
        """Mirror per-session statistics into the process registry.

        Called by ``GET /metrics`` right before rendering, so each
        node's scrape reflects the session it serves — the counters
        themselves stay per-session (a process hosting both a leader
        and a follower, as the tests do, must not blend them).
        """
        counters = self.counters
        gauge = REGISTRY.gauge
        gauge("repro_session_role",
              "1 for the role this node serves.",
              ("role",)).labels(self.role).set(1)
        gauge("repro_session_applied_seq",
              "Highest WAL sequence applied to the warm state."
              ).set(self._applied_seq)
        gauge("repro_session_ingested",
              "Deltas ingested by the serving session.").set(
            counters.ingested)
        gauge("repro_session_batches",
              "Group-commit batches applied.").set(counters.batches)
        gauge("repro_session_queries",
              "Read requests served (target/query/program).").set(
            counters.queries)
        gauge("repro_session_programs",
              "Query programs served.").set(counters.programs)
        gauge("repro_session_checks",
              "Constraint checks served.").set(counters.checks)
        gauge("repro_session_snapshots",
              "Compactions requested through this session.").set(
            counters.snapshots)
        gauge("repro_session_uptime_seconds",
              "Seconds since the serving session was opened.").set(
            time.time() - counters.started_at)

    def stats_json(self) -> Dict[str, Any]:
        with self._state_lock.read():
            counters = self.counters
            mean_batch_ms = (counters.apply_ms_total / counters.batches
                             if counters.batches else 0.0)
            return {
                "role": self.role,
                "uptime_seconds": round(
                    time.time() - counters.started_at, 3),
                "seq": self.store.seq,
                "applied_seq": self._applied_seq,
                "ingested": counters.ingested,
                "batches": counters.batches,
                "max_batch": counters.max_batch,
                "mean_batch_ms": round(mean_batch_ms, 3),
                "last_batch_ms": round(counters.last_batch_ms, 3),
                "queries": counters.queries,
                "body_queries": counters.body_queries,
                "programs": counters.programs,
                "checks": counters.checks,
                "lints": counters.lints,
                "snapshots": counters.snapshots,
                "rebuild_ms": round(counters.rebuild_ms, 3),
                "replayed_on_open": counters.replayed_on_open,
                "spent": self._failure,
                # Vectorization counters of the most recent delta
                # propagation (zeros before the first ingest or with
                # columnar execution disabled).
                "vectorized_steps": self.transform.stats.vectorized_steps,
                "fallback_steps": self.transform.stats.fallback_steps,
                "vectorized_rows": self.transform.stats.vectorized_rows,
                "max_batch_rows": self.transform.stats.max_batch_rows,
                "store": self.store.stats(),
            }

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Compact the store at the current sequence number."""
        with self._intake:
            with self._cond:
                while (self._applied_seq < self.store.seq
                       and self._failure is None):
                    self._cond.wait(timeout=0.5)
            name = self.store.snapshot()
            self.counters.inc("snapshots")
            return {"snapshot": name, "base_seq": self.store.base_seq}

    def close(self) -> None:
        self.store.close()
