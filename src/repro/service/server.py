"""HTTP/JSON front end over one warm :class:`WarehouseSession`.

Pure stdlib (``http.server.ThreadingHTTPServer``): every request runs
in its own thread, readers proceed concurrently under the session's
read-write lock, and writers group-commit through its batcher.

Endpoints::

    GET  /health            liveness + current sequence number
    GET  /stats             service, batching and store statistics
    GET  /target            full target instance (JSON interchange)
    GET  /query?class=C     one target class extent
    GET  /check             live source-constraint violation set
    POST /ingest            body: delta JSON (label-addressed) -> seq
    POST /snapshot          compact the store (snapshot + WAL reset)
    POST /lint              body: {"program": "<WOL text>"} -> static
                            analysis diagnostics (400 when the program
                            has error-severity findings; an empty JSON
                            object lints the session's own program)

Error mapping: malformed requests and undecodable deltas are 400,
unknown routes/classes 404, a spent session 503, anything else 500 —
all as ``{"error": ...}`` JSON documents.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..evolution.delta import DeltaError
from ..store.store import StoreError
from .session import ServiceError, WarehouseSession

#: Cap on request bodies — a delta document, not a bulk load.
MAX_BODY_BYTES = 64 * 1024 * 1024


class ServiceServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one warehouse session."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int],
                 session: WarehouseSession,
                 verbose: bool = False) -> None:
        super().__init__(address, _Handler)
        self.session = session
        self.verbose = verbose

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def make_server(session: WarehouseSession, host: str = "127.0.0.1",
                port: int = 0, verbose: bool = False) -> ServiceServer:
    """Bind a service server (``port=0`` picks an ephemeral port)."""
    return ServiceServer((host, port), session, verbose=verbose)


class _Handler(BaseHTTPRequestHandler):
    server: ServiceServer  # narrowed for route handlers
    protocol_version = "HTTP/1.1"
    # Response headers and body land in separate writes; without
    # TCP_NODELAY, Nagle + the peer's delayed ACK turn every keep-alive
    # request after the first into a ~40 ms stall.
    disable_nagle_algorithm = True

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        if self.server.verbose:
            super().log_message(format, *args)

    def _reply(self, status: int, document: Dict[str, Any]) -> None:
        body = json.dumps(document, indent=2, sort_keys=True
                          ).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            # Declared, not just done: the peer must know this
            # keep-alive connection ends after the response.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._reply(status, {"error": message})

    def _read_body(self) -> Optional[Dict[str, Any]]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            self._error(400, "request body required")
            return None
        if length > MAX_BODY_BYTES:
            # The oversized body is not drained; leaving it queued
            # would desynchronise the keep-alive connection (the next
            # request would be parsed out of body bytes), so close.
            self.close_connection = True
            self._error(400, f"request body over {MAX_BODY_BYTES} bytes")
            return None
        raw = self.rfile.read(length)
        try:
            document = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            self._error(400, f"request body is not JSON: {exc}")
            return None
        if not isinstance(document, dict):
            self._error(400, "request body must be a JSON object")
            return None
        return document

    def _dispatch(self, handler, *args) -> None:
        try:
            status, document = handler(*args)
        except (DeltaError, StoreError) as exc:
            self._error(400, str(exc))
        except ServiceError as exc:
            self._error(exc.status, str(exc))
        except Exception as exc:  # noqa: BLE001 - service boundary
            self._error(500, f"{type(exc).__name__}: {exc}")
        else:
            self._reply(status, document)

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        session = self.server.session
        if parsed.path == "/health":
            self._dispatch(lambda: self._health(session))
        elif parsed.path == "/stats":
            self._dispatch(lambda: (200, session.stats_json()))
        elif parsed.path == "/target":
            self._dispatch(lambda: (200, session.target_json()))
        elif parsed.path == "/query":
            params = parse_qs(parsed.query)
            names = params.get("class")
            if not names:
                self._error(400, "query requires ?class=<TargetClass>")
                return
            self._dispatch(lambda: (200, session.query_json(names[0])))
        elif parsed.path == "/check":
            self._dispatch(lambda: self._check(session))
        else:
            self._error(404, f"no route {parsed.path}")

    @staticmethod
    def _health(session: WarehouseSession
                ) -> Tuple[int, Dict[str, Any]]:
        spent = session.spent
        document = {"ok": spent is None, "seq": session.store.seq}
        if spent is not None:
            document["spent"] = spent
        return (200 if spent is None else 503), document

    @staticmethod
    def _check(session: WarehouseSession
               ) -> Tuple[int, Dict[str, Any]]:
        document = session.check_json()
        return (200 if document["ok"] else 409), document

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        session = self.server.session
        if parsed.path == "/ingest":
            document = self._read_body()
            if document is None:
                return
            self._dispatch(lambda: self._ingest(session, document))
        elif parsed.path == "/snapshot":
            self._dispatch(lambda: (200, session.snapshot()))
        elif parsed.path == "/lint":
            document = self._read_body()
            if document is None:
                return
            self._dispatch(lambda: self._lint(session, document))
        else:
            self._error(404, f"no route {parsed.path}")

    @staticmethod
    def _lint(session: WarehouseSession, document: Dict[str, Any]
              ) -> Tuple[int, Dict[str, Any]]:
        payload = session.lint_json(document)
        return (200 if payload["ok"] else 400), payload

    @staticmethod
    def _ingest(session: WarehouseSession, document: Dict[str, Any]
                ) -> Tuple[int, Dict[str, Any]]:
        result = session.ingest_json(document)
        return 200, {
            "seq": result.seq,
            "applied_seq": result.applied_seq,
            "batch_size": result.batch_size,
            "violations": result.violations,
        }
