"""HTTP/JSON front end over one warm :class:`WarehouseSession`.

Pure stdlib (``http.server.ThreadingHTTPServer``): every request runs
in its own thread, readers proceed concurrently under the session's
read-write lock, and writers group-commit through its batcher.

Endpoints::

    GET  /health            liveness + current sequence number
    GET  /stats             service, batching and store statistics
    GET  /metrics           process metrics, Prometheus text format
                            (the one non-envelope endpoint)
    GET  /target            full target instance (JSON interchange)
    GET  /query?body=B      conjunctive WOL query over the warm target
         [&project=X,Y]     (planned + columnar; canonical row order)
    GET  /query?class=C     one target class extent (deprecated — use
                            ?body= or the client's ``extent()``)
    GET  /check             live source-constraint violation set
    GET  /wal?from=N        WAL records from sequence N on (replication
         [&limit=M][&wait=S]  feed; long-polls up to S seconds when N
                            is not written yet; ``reset: true`` tells a
                            follower N was compacted away and it must
                            reseed from the snapshot)
    GET  /snapshot/<name>   one content-addressed snapshot document
                            (the follower seed; name from /wal, /stats)
    POST /program           body: {"text": "<DSL>"} or {"ast": {...}}
                            -> compile + run a query program
    POST /ingest            body: delta JSON (label-addressed) -> seq
    POST /snapshot          compact the store (snapshot + WAL reset)
    POST /lint              body: {"program": "<WOL text>"} -> static
                            analysis diagnostics (an empty JSON object
                            lints the session's own program)

Every response — success or failure — is the versioned envelope::

    {"version": 1, "ok": true,  "result": {...}}
    {"version": 1, "ok": false, "error": {"code": "...",
                                          "message": "...",
                                          "details": {...}?}}

Error codes map statuses one-to-one: ``bad_request``/``parse_error``
(400: the request or program never parsed), ``not_found`` (404),
``validation_failed`` (422: parsed but statically rejected — WOL5xx
diagnostics ride in ``details``), ``conflict`` (409: the node cannot
serve this request *yet* or *at all* in its role — a replica behind
the requested ``X-Repro-Seq`` answers ``replica_behind``, a replica
asked to write answers ``read_only_replica`` with the leader's URL in
``details``), ``session_spent`` (503) and ``internal_error`` (500).
``/check`` and ``/lint`` always answer 200: a report full of findings
is a successful report, not a transport failure.

**Tracing** (``X-Repro-Trace`` / ``?trace=1``): a request carrying the
trace header runs under a span tree adopting that id (so a client's
trace stitches across leader and follower hops); adding ``?trace=1``
to any endpoint embeds the serialised tree as a ``trace`` field in
the success envelope.  Traced responses echo the id in the header.

**Monotonic reads** (``X-Repro-Seq``): every response carries the
serving node's applied sequence number in an ``X-Repro-Seq`` header.
A client that sends the highest value it has seen back as a request
header declares "answer from state at least this new" — a replica
still catching up answers 409 ``replica_behind`` instead of silently
serving stale state, and the client retries until the replica's
applied seq passes the token.
"""

from __future__ import annotations

import json
import logging
import os
import re
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..evolution.delta import DeltaError
from ..obs.events import emit_slow_query, log_event
from ..obs.metrics import LATENCY_BUCKETS, REGISTRY, SIZE_BUCKETS
from ..obs.trace import start_trace
from ..store.store import StoreError
from .session import ServiceError, WarehouseSession

#: Cap on request bodies — a delta document, not a bulk load.
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Distributed-trace id header: a client (or an upstream node) sends
#: one to stitch its span tree to this node's; every traced response
#: echoes it.
TRACE_HEADER = "X-Repro-Trace"

#: Endpoints whose latency counts as a "query" for the slow-query log.
_READ_ENDPOINTS = frozenset({"/query", "/target", "/check", "/program"})

_REQUESTS_TOTAL = REGISTRY.counter(
    "repro_http_requests_total",
    "HTTP requests served, by method, endpoint and status.",
    ("method", "endpoint", "status"))
_REQUEST_SECONDS = REGISTRY.histogram(
    "repro_http_request_seconds",
    "End-to-end request handling latency.",
    ("method", "endpoint"), buckets=LATENCY_BUCKETS)
_REQUEST_BYTES = REGISTRY.histogram(
    "repro_http_request_bytes", "Request body sizes.",
    ("endpoint",), buckets=SIZE_BUCKETS)
_RESPONSE_BYTES = REGISTRY.histogram(
    "repro_http_response_bytes", "Response body sizes.",
    ("endpoint",), buckets=SIZE_BUCKETS)
_IN_FLIGHT = REGISTRY.gauge(
    "repro_http_in_flight", "Requests currently being handled.")

#: Known routes, for bounded metric label cardinality — anything else
#: (404 probes included) lands under ``other``.
_GET_ROUTES = frozenset({"/health", "/stats", "/metrics", "/target",
                         "/query", "/check", "/wal"})
_POST_ROUTES = frozenset({"/ingest", "/program", "/snapshot", "/lint"})


def _route_label(method: str, path: str) -> str:
    if method == "GET" and path.startswith("/snapshot/"):
        return "/snapshot/:name"
    routes = _GET_ROUTES if method == "GET" else _POST_ROUTES
    return path if path in routes else "other"

#: Version stamp of the response envelope (every endpoint, every
#: status).
API_VERSION = 1

#: Default machine-readable error code per HTTP status; a
#: :class:`ServiceError` with an explicit ``code`` overrides.
CODE_FOR_STATUS = {
    400: "bad_request",
    404: "not_found",
    409: "conflict",
    422: "validation_failed",
    500: "internal_error",
    503: "session_spent",
}

#: The monotonic-read session token header (request and response).
SEQ_HEADER = "X-Repro-Seq"

#: Snapshot files are content-addressed and flat — anything else in a
#: ``GET /snapshot/<name>`` path is refused before touching the disk.
SNAPSHOT_NAME = re.compile(r"^snap-[0-9a-f]{24}\.json$")


def envelope_ok(result: Any) -> Dict[str, Any]:
    """The success envelope around one endpoint result."""
    return {"version": API_VERSION, "ok": True, "result": result}


def envelope_error(code: str, message: str,
                   details: Optional[Dict[str, Any]] = None
                   ) -> Dict[str, Any]:
    """The failure envelope around one error."""
    error: Dict[str, Any] = {"code": code, "message": message}
    if details is not None:
        error["details"] = details
    return {"version": API_VERSION, "ok": False, "error": error}


class ServiceServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one warehouse session."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int],
                 session: WarehouseSession,
                 verbose: bool = False,
                 slow_query_ms: float = 500.0) -> None:
        super().__init__(address, _Handler)
        self.session = session
        self.verbose = verbose
        #: Read requests slower than this emit a ``slow_query`` event.
        self.slow_query_ms = slow_query_ms

    def handle_error(self, request, client_address) -> None:
        """Keep peer hang-ups out of the log.

        A follower killed mid-``/wal`` long-poll (or any client that
        drops its socket before the response lands) surfaces here as a
        broken pipe — routine connection churn, not a server error
        worth a stack trace.
        """
        import sys
        exc = sys.exc_info()[1]
        if isinstance(exc, (BrokenPipeError, ConnectionResetError)):
            return
        super().handle_error(request, client_address)

    @property
    def url(self) -> str:
        """A URL clients can actually connect to.

        A wildcard bind (``0.0.0.0``/``::``) is a listening address,
        not a destination — mapped to the matching loopback host so
        the CLI banner, the demo and replica bootstrap URLs work
        verbatim.
        """
        host, port = self.server_address[:2]
        if host in ("0.0.0.0", ""):
            host = "127.0.0.1"
        elif host == "::":
            host = "::1"
        if ":" in host:  # bare IPv6 literals need brackets in URLs
            host = f"[{host}]"
        return f"http://{host}:{port}"


def make_server(session: WarehouseSession, host: str = "127.0.0.1",
                port: int = 0, verbose: bool = False,
                slow_query_ms: float = 500.0) -> ServiceServer:
    """Bind a service server (``port=0`` picks an ephemeral port)."""
    return ServiceServer((host, port), session, verbose=verbose,
                         slow_query_ms=slow_query_ms)


class _Handler(BaseHTTPRequestHandler):
    server: ServiceServer  # narrowed for route handlers
    protocol_version = "HTTP/1.1"
    # Response headers and body land in separate writes; without
    # TCP_NODELAY, Nagle + the peer's delayed ACK turn every keep-alive
    # request after the first into a ~40 ms stall.
    disable_nagle_algorithm = True

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        if self.server.verbose:
            super().log_message(format, *args)

    # Per-request observability state, initialised by _handle before
    # any route code runs.
    _trace = None
    _want_trace = False
    _status: Optional[int] = None
    _response_size = 0

    def _reply(self, status: int, document: Dict[str, Any]) -> None:
        trace = self._trace
        if (trace is not None and self._want_trace
                and isinstance(document, dict)):
            # The root span is still open (this very write is part of
            # it) — stamp its duration as of serialisation time so the
            # embedded tree is complete and self-consistent.
            root = trace.root
            root.duration_ms = (time.perf_counter()
                                - root._t0) * 1000.0
            document = dict(document)
            document["trace"] = trace.to_json()
        body = json.dumps(document, indent=2, sort_keys=True
                          ).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        # The monotonic-read token: what sequence number this answer
        # reflects.  Clients echo their highest seen value back as a
        # request header to refuse stale replica reads.
        self.send_header(SEQ_HEADER,
                         str(self.server.session.applied_seq))
        if trace is not None:
            self.send_header(TRACE_HEADER, trace.trace_id)
        if self.close_connection:
            # Declared, not just done: the peer must know this
            # keep-alive connection ends after the response.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)
        self._status = status
        self._response_size = len(body)
        if status >= 500:
            error = (document.get("error", {})
                     if isinstance(document, dict) else {})
            log_event("http_5xx", level=logging.ERROR,
                      endpoint=self.path, status=status,
                      code=error.get("code"),
                      message=error.get("message"),
                      trace_id=(trace.trace_id if trace else None))

    def _error(self, status: int, message: str,
               code: Optional[str] = None,
               details: Optional[Dict[str, Any]] = None) -> None:
        resolved = code or CODE_FOR_STATUS.get(status, "internal_error")
        self._reply(status, envelope_error(resolved, message,
                                           details=details))

    def _read_body(self) -> Optional[Dict[str, Any]]:
        raw_length = self.headers.get("Content-Length")
        try:
            length = int(raw_length or 0)
        except ValueError:
            # A malformed length is a protocol-level parse failure,
            # answered as one — not an unhandled ValueError resetting
            # the connection.  The body cannot be framed without a
            # length, so the keep-alive connection must close.
            self.close_connection = True
            self._error(400, f"malformed Content-Length header: "
                             f"{raw_length!r}", code="parse_error")
            return None
        if length <= 0:
            self._error(400, "request body required")
            return None
        if length > MAX_BODY_BYTES:
            # The oversized body is not drained; leaving it queued
            # would desynchronise the keep-alive connection (the next
            # request would be parsed out of body bytes), so close.
            self.close_connection = True
            self._error(400, f"request body over {MAX_BODY_BYTES} bytes")
            return None
        raw = self.rfile.read(length)
        try:
            document = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            self._error(400, f"request body is not JSON: {exc}",
                        code="parse_error")
            return None
        if not isinstance(document, dict):
            self._error(400, "request body must be a JSON object",
                        code="parse_error")
            return None
        return document

    def _dispatch(self, handler, *args) -> None:
        try:
            status, result = handler(*args)
        except (DeltaError, StoreError) as exc:
            self._error(400, str(exc))
        except ServiceError as exc:
            self._error(exc.status, str(exc), code=exc.code,
                        details=exc.details)
        except Exception as exc:  # noqa: BLE001 - service boundary
            self._error(500, f"{type(exc).__name__}: {exc}")
        else:
            self._reply(status, envelope_ok(result))

    def _check_read_token(self) -> bool:
        """Enforce the ``X-Repro-Seq`` monotonic-read token, if sent.

        Returns False (after answering) when the request asked for
        state newer than this node has applied — a replica still
        catching up answers 409 ``replica_behind`` and the client
        retries rather than reading backwards in time.
        """
        raw = self.headers.get(SEQ_HEADER)
        if raw is None:
            return True
        try:
            wanted = int(raw)
        except ValueError:
            self._error(400, f"malformed {SEQ_HEADER} header: {raw!r}",
                        code="parse_error")
            return False
        applied = self.server.session.applied_seq
        if applied < wanted:
            self._error(409, f"this node has applied seq {applied}, "
                             f"behind the requested {wanted}; retry "
                             f"shortly", code="replica_behind",
                        details={"applied_seq": applied,
                                 "requested_seq": wanted})
            return False
        return True

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._handle("POST")

    def _handle(self, method: str) -> None:
        """Instrumented dispatch around one request.

        Opens a trace when the request carries an ``X-Repro-Trace``
        header (adopting the upstream id) or asks with ``?trace=1``
        (the serialised tree then rides the envelope), and records the
        request into the latency/size/in-flight metrics, the
        slow-query log, and the DEBUG-level ``http_request`` event.
        """
        parsed = urlparse(self.path)
        params = parse_qs(parsed.query)
        endpoint = _route_label(method, parsed.path)
        upstream = self.headers.get(TRACE_HEADER)
        self._trace = None
        self._want_trace = params.get("trace", ["0"])[0] in ("1", "true")
        self._status = None
        self._response_size = 0
        raw_length = self.headers.get("Content-Length")
        try:
            request_bytes = int(raw_length) if raw_length else 0
        except ValueError:
            request_bytes = 0
        start = time.perf_counter()
        _IN_FLIGHT.inc()
        try:
            if upstream or self._want_trace:
                with start_trace(f"{method} {parsed.path}",
                                 trace_id=upstream or None) as trace:
                    self._trace = trace
                    self._route(method, parsed, params)
            else:
                self._route(method, parsed, params)
        finally:
            _IN_FLIGHT.dec()
            elapsed = time.perf_counter() - start
            status = self._status if self._status is not None else 500
            _REQUESTS_TOTAL.labels(method, endpoint, str(status)).inc()
            _REQUEST_SECONDS.labels(method, endpoint).observe(elapsed)
            if request_bytes > 0:
                _REQUEST_BYTES.labels(endpoint).observe(request_bytes)
            if self._response_size:
                _RESPONSE_BYTES.labels(endpoint).observe(
                    self._response_size)
            correlate = ({"trace_id": self._trace.trace_id}
                         if self._trace is not None else {})
            elapsed_ms = elapsed * 1000.0
            if (parsed.path in _READ_ENDPOINTS
                    and elapsed_ms > self.server.slow_query_ms):
                emit_slow_query(parsed.path, elapsed_ms,
                                self.server.slow_query_ms,
                                status=status, **correlate)
            log_event("http_request", level=logging.DEBUG,
                      method=method, endpoint=parsed.path,
                      status=status, ms=round(elapsed_ms, 3),
                      **correlate)

    def _route(self, method: str, parsed, params: Dict[str, list]
               ) -> None:
        session = self.server.session
        if method == "GET" and parsed.path == "/metrics":
            # Scrapes are unconditional: a replica behind the read
            # token must still expose its metrics (that lag is the
            # point of scraping it).
            self._metrics(session)
            return
        if not self._check_read_token():
            return
        if method == "POST":
            self._route_post(session, parsed, params)
            return
        if parsed.path == "/health":
            self._dispatch(lambda: self._health(session))
        elif parsed.path == "/stats":
            self._dispatch(lambda: (200, session.stats_json()))
        elif parsed.path == "/target":
            self._dispatch(lambda: (200, session.target_json()))
        elif parsed.path == "/query":
            self._query(session, params)
        elif parsed.path == "/check":
            self._dispatch(lambda: (200, session.check_json()))
        elif parsed.path == "/wal":
            self._wal(session, params)
        elif parsed.path.startswith("/snapshot/"):
            self._snapshot_file(session,
                                parsed.path[len("/snapshot/"):])
        else:
            self._error(404, f"no route {parsed.path}")

    def _metrics(self, session: WarehouseSession) -> None:
        """``GET /metrics``: the registry in Prometheus text format.

        The one non-envelope endpoint — Prometheus scrapers speak the
        text exposition format, not our JSON envelope.
        """
        session.publish_metrics()
        body = REGISTRY.render().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type",
                         "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)
        self._status = 200
        self._response_size = len(body)

    def _wal(self, session: WarehouseSession,
             params: Dict[str, list]) -> None:
        def number(name, default, convert):
            values = params.get(name)
            if not values:
                return default, None
            try:
                return convert(values[0]), None
            except ValueError:
                return None, f"'{name}' must be a number, got " \
                             f"{values[0]!r}"

        from_seq, problem = number("from", None, int)
        if problem is None and from_seq is None:
            problem = "/wal requires ?from=<first sequence wanted>"
        if problem is None:
            limit, problem = number("limit", 500, int)
        if problem is None:
            wait, problem = number("wait", 0.0, float)
        if problem is not None:
            self._error(400, problem)
            return
        self._dispatch(lambda: (200, session.wal_records_from(
            from_seq, limit=limit, wait=wait)))

    def _snapshot_file(self, session: WarehouseSession,
                       name: str) -> None:
        if not SNAPSHOT_NAME.match(name):
            self._error(400, f"malformed snapshot name {name!r}")
            return

        def load() -> Tuple[int, Dict[str, Any]]:
            path = os.path.join(session.store.path, name)
            try:
                with open(path, "rb") as handle:
                    content = handle.read()
            except OSError:
                raise ServiceError(
                    f"no snapshot {name} in this store (it may have "
                    f"been pruned; re-fetch /wal for the live name)",
                    status=404) from None
            return 200, json.loads(content.decode("utf-8"))

        self._dispatch(load)

    def _query(self, session: WarehouseSession,
               params: Dict[str, list]) -> None:
        bodies = params.get("body")
        names = params.get("class")
        if (bodies is None) == (names is None):
            self._error(400, "query requires exactly one of "
                             "?body=<WOL atoms> (conjunctive query) or "
                             "?class=<TargetClass> (extent dump)")
            return
        if bodies is not None:
            projects = params.get("project")
            project = projects[0] if projects else None
            self._dispatch(lambda: (
                200, session.query_body_json(bodies[0],
                                             project=project)))
        else:
            self._dispatch(lambda: (200, session.query_json(names[0])))

    @staticmethod
    def _health(session: WarehouseSession
                ) -> Tuple[int, Dict[str, Any]]:
        spent = session.spent
        if spent is not None:
            raise ServiceError(
                f"session is spent ({spent}); restart the service to "
                f"rebuild from the store", status=503,
                code="session_spent",
                details={"seq": session.store.seq, "spent": spent})
        return 200, {"seq": session.store.seq}

    def _route_post(self, session: WarehouseSession, parsed,
                    params: Dict[str, list]) -> None:
        if parsed.path == "/ingest":
            document = self._read_body()
            if document is None:
                return
            self._dispatch(lambda: self._ingest(session, document))
        elif parsed.path == "/program":
            document = self._read_body()
            if document is None:
                return
            self._dispatch(lambda: (200, session.program_json(document)))
        elif parsed.path == "/snapshot":
            self._dispatch(lambda: (200, session.snapshot()))
        elif parsed.path == "/lint":
            document = self._read_body()
            if document is None:
                return
            self._dispatch(lambda: (200, session.lint_json(document)))
        else:
            self._error(404, f"no route {parsed.path}")

    @staticmethod
    def _ingest(session: WarehouseSession, document: Dict[str, Any]
                ) -> Tuple[int, Dict[str, Any]]:
        result = session.ingest_json(document)
        return 200, {
            "seq": result.seq,
            "applied_seq": result.applied_seq,
            "batch_size": result.batch_size,
            "violations": result.violations,
        }
