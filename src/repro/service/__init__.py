"""Concurrent service layer: a long-lived Morphase session over HTTP.

The paper's closing scenario (Section 6) is a transformed warehouse
*maintained* in front of evolving sources — a system, not a batch job.
This package is that system's front door: one warm
:class:`~repro.service.session.WarehouseSession` holds the compiled
program, the shared index pool and the incremental transform/audit
state across requests; a stdlib ``ThreadingHTTPServer`` exposes
ingest/query/check/snapshot/stats endpoints; a read-write lock lets
queries run concurrently while delta ingestion group-commits bursts
into single incremental applications.

The service also scales reads horizontally: a leader streams its WAL
over ``GET /wal`` (long-polled, bounded), and
:class:`~repro.service.replica.WalReplica` runs a follower that seeds
itself from the leader's content-addressed snapshot, replays the feed
through its own incremental session, and serves queries locally —
monotonic reads guaranteed by the ``X-Repro-Seq`` token the client
echoes.
"""

from .locks import ReadWriteLock
from .session import IngestResult, ServiceError, WarehouseSession
from .server import (API_VERSION, ServiceServer, envelope_error,
                     envelope_ok, make_server)
from .client import (ServiceClient, ServiceClientError,
                     ServiceConflictError, ServiceParseError,
                     ServiceValidationError)
from .replica import (ReplicaError, ReplicaSession, ReplicationState,
                      WalReplica)

__all__ = [
    "ReadWriteLock",
    "IngestResult", "ServiceError", "WarehouseSession",
    "API_VERSION", "ServiceServer", "make_server",
    "envelope_ok", "envelope_error",
    "ServiceClient", "ServiceClientError", "ServiceConflictError",
    "ServiceParseError", "ServiceValidationError",
    "ReplicaError", "ReplicaSession", "ReplicationState", "WalReplica",
]
