"""Concurrent service layer: a long-lived Morphase session over HTTP.

The paper's closing scenario (Section 6) is a transformed warehouse
*maintained* in front of evolving sources — a system, not a batch job.
This package is that system's front door: one warm
:class:`~repro.service.session.WarehouseSession` holds the compiled
program, the shared index pool and the incremental transform/audit
state across requests; a stdlib ``ThreadingHTTPServer`` exposes
ingest/query/check/snapshot/stats endpoints; a read-write lock lets
queries run concurrently while delta ingestion group-commits bursts
into single incremental applications.
"""

from .locks import ReadWriteLock
from .session import IngestResult, ServiceError, WarehouseSession
from .server import (API_VERSION, ServiceServer, envelope_error,
                     envelope_ok, make_server)
from .client import (ServiceClient, ServiceClientError, ServiceParseError,
                     ServiceValidationError)

__all__ = [
    "ReadWriteLock",
    "IngestResult", "ServiceError", "WarehouseSession",
    "API_VERSION", "ServiceServer", "make_server",
    "envelope_ok", "envelope_error",
    "ServiceClient", "ServiceClientError", "ServiceParseError",
    "ServiceValidationError",
]
