"""A minimal JSON client for the warehouse service (urllib only).

Used by the tests, the benchmarks and ``examples/service_demo.py`` —
and small enough to copy into any consumer that cannot add
dependencies either.

Every server response is the versioned envelope
(:data:`repro.service.server.API_VERSION`); the client unwraps it, so
methods return the bare ``result`` document and failures raise typed
errors carrying the envelope's machine-readable ``code``:

* :class:`ServiceParseError` — ``parse_error`` (HTTP 400): the
  request, query body or program never parsed;
* :class:`ServiceValidationError` — ``validation_failed`` (HTTP 422):
  it parsed but static validation rejected it (WOL5xx diagnostics in
  ``details``);
* :class:`ServiceConflictError` — HTTP 409: the node's state or role
  conflicts with the request (``replica_behind``: this replica has not
  yet applied the sequence the client already observed;
  ``read_only_replica``: a write was sent to a follower);
* :class:`ServiceClientError` — everything else (``bad_request``,
  ``not_found``, ``session_spent``, ``internal_error``).

The client also implements the service's **monotonic read** protocol:
every response carries the node's applied sequence number in the
``X-Repro-Seq`` header, the client remembers the highest value it has
seen and echoes it on subsequent requests.  A replica that has not
caught up to that point answers 409 ``replica_behind``, and the client
transparently retries (bounded by ``behind_wait``) until the replica
catches up — so reads through one client never travel backwards in
time, even when load-balanced across followers mid-replication.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Optional, Sequence
from urllib import request as urlrequest
from urllib.error import HTTPError
from urllib.parse import quote

from ..obs.trace import current_trace_id

#: Monotonic-read token header (kept literal so this module stays
#: copy-paste standalone).
SEQ_HEADER = "X-Repro-Seq"

#: Distributed-trace id header.  When a trace is active in the calling
#: process (``repro.obs.trace``), every request carries its id — the
#: server adopts it, so client → leader → follower hops share one
#: trace id end to end.
TRACE_HEADER = "X-Repro-Trace"

#: Longest slice of a non-JSON error body quoted in the raised error.
_BODY_SNIPPET_BYTES = 512


class ServiceClientError(Exception):
    """A non-2xx service response, decoded from the error envelope.

    ``code``/``message``/``details`` mirror the envelope's ``error``
    object; ``document`` keeps the whole response body for callers
    that need the raw form.
    """

    def __init__(self, status: int, document: Dict[str, Any]) -> None:
        error = document.get("error")
        if isinstance(error, dict):
            self.code: str = error.get("code", "internal_error")
            self.message: str = error.get("message", str(error))
            self.details: Optional[Dict[str, Any]] = error.get("details")
        else:  # not an envelope (proxy error, pre-envelope server)
            self.code = "internal_error"
            self.message = str(error if error is not None else document)
            self.details = None
        super().__init__(f"HTTP {status} [{self.code}]: {self.message}")
        self.status = status
        self.document = document


class ServiceParseError(ServiceClientError):
    """The request or program was not syntactically well-formed (400)."""


class ServiceValidationError(ServiceClientError):
    """The input parsed but failed static validation (422).

    ``diagnostics`` is the WOL5xx report JSON when the server attached
    one.
    """

    @property
    def diagnostics(self) -> Optional[Dict[str, Any]]:
        if self.details is None:
            return None
        return self.details.get("diagnostics")


class ServiceConflictError(ServiceClientError):
    """The node's state or role conflicts with the request (409).

    ``code`` distinguishes the cases: ``replica_behind`` (this node
    has not applied the sequence the client observed elsewhere — the
    client retries these itself) and ``read_only_replica`` (a write
    reached a follower; ``details["leader"]`` names where to send it).
    """


def _typed_error(status: int,
                 document: Dict[str, Any]) -> ServiceClientError:
    error = document.get("error")
    code = error.get("code") if isinstance(error, dict) else None
    if code == "parse_error":
        return ServiceParseError(status, document)
    if code == "validation_failed":
        return ServiceValidationError(status, document)
    if status == 409:
        return ServiceConflictError(status, document)
    return ServiceClientError(status, document)


class ServiceClient:
    """Talk to one running :class:`~repro.service.server.ServiceServer`."""

    def __init__(self, base_url: str, timeout: float = 30.0,
                 monotonic: bool = True,
                 behind_wait: float = 10.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        #: Echo the monotonic-read token on every request.  Turn off
        #: for a client that genuinely wants whatever a replica has
        #: (e.g. a lag probe).
        self.monotonic = monotonic
        #: Longest to retry a 409 ``replica_behind`` before giving up
        #: and raising it — the bound on how stale a replica may be
        #: before monotonic reads through this client fail instead of
        #: waiting.
        self.behind_wait = behind_wait
        #: Highest applied sequence number any response has reported.
        self.last_seq = 0
        #: The ``trace`` document of the most recent response (None
        #: when the last response carried none) — ask for one with the
        #: ``trace=True`` flag on reads and render it with
        #: :func:`repro.obs.trace.render_trace_json`.
        self.last_trace: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    def _call(self, method: str, path: str,
              body: Optional[Dict[str, Any]] = None) -> Any:
        deadline = time.monotonic() + self.behind_wait
        while True:
            try:
                return self._call_once(method, path, body)
            except ServiceConflictError as exc:
                if (exc.code == "replica_behind" and self.monotonic
                        and time.monotonic() < deadline):
                    time.sleep(0.05)  # the replica is catching up
                    continue
                raise

    def _observe(self, headers: Any) -> None:
        """Advance the monotonic token from a response's seq header."""
        value = headers.get(SEQ_HEADER) if headers is not None else None
        if value is not None:
            try:
                self.last_seq = max(self.last_seq, int(value))
            except ValueError:
                pass  # a proxy mangled the header; keep our token

    def _call_once(self, method: str, path: str,
                   body: Optional[Dict[str, Any]] = None) -> Any:
        data = (json.dumps(body).encode("utf-8")
                if body is not None else None)
        headers: Dict[str, str] = {}
        if data is not None:
            headers["Content-Type"] = "application/json"
        if self.monotonic and self.last_seq:
            headers[SEQ_HEADER] = str(self.last_seq)
        trace_id = current_trace_id()
        if trace_id is not None:
            headers[TRACE_HEADER] = trace_id
        req = urlrequest.Request(
            self.base_url + path, data=data, method=method,
            headers=headers)
        try:
            with urlrequest.urlopen(req, timeout=self.timeout) as resp:
                self._observe(resp.headers)
                document = json.loads(resp.read().decode("utf-8"))
        except HTTPError as exc:
            raw = exc.read()
            try:
                document = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                document = None
            if not isinstance(document, dict):
                # Not our envelope (a proxy error page, a crashed
                # worker's traceback): quote what the server actually
                # said instead of discarding the only evidence.
                snippet = raw[:_BODY_SNIPPET_BYTES].decode(
                    "utf-8", errors="replace").strip()
                message = (f"{exc}: {snippet}" if snippet else str(exc))
                document = {"error": {"code": "internal_error",
                                      "message": message}}
            raise _typed_error(exc.code, document) from exc
        if isinstance(document, dict):
            self.last_trace = document.get("trace")
            if "result" in document:
                return document["result"]
        return document

    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._call("GET", "/health")

    def stats(self) -> Dict[str, Any]:
        return self._call("GET", "/stats")

    def metrics(self) -> str:
        """Scrape ``GET /metrics`` (Prometheus text, not an envelope)."""
        req = urlrequest.Request(self.base_url + "/metrics")
        with urlrequest.urlopen(req, timeout=self.timeout) as resp:
            return resp.read().decode("utf-8")

    def target(self, trace: bool = False) -> Dict[str, Any]:
        return self._call(
            "GET", "/target?trace=1" if trace else "/target")

    def query(self, body: str,
              project: Optional[Sequence[str]] = None,
              trace: bool = False) -> Dict[str, Any]:
        """Run a conjunctive WOL query against the warm target.

        ``body`` is a WOL atom list (the text after ``|`` in
        :meth:`repro.query.Query.parse`); ``project`` optionally names
        the output columns.  Returns ``{"columns", "count", "rows"}``
        with rows duplicate-free in canonical order.

        This replaces the old ``query(class_name)`` extent dump, which
        lives on as :meth:`extent`.
        """
        path = f"/query?body={quote(body)}"
        if project:
            path += f"&project={quote(','.join(project))}"
        if trace:
            path += "&trace=1"
        return self._call("GET", path)

    def extent(self, class_name: str) -> Dict[str, Any]:
        """One target class extent (dump-labelled entries).

        .. deprecated:: the ``/query?class=`` form predates the
           conjunctive query API; prefer ``query(body="X in C")`` or
           :meth:`target` for full dumps.  Kept because extent dumps
           stay the cheapest way to page one class.
        """
        return self._call("GET", f"/query?class={quote(class_name)}")

    def program(self, text: Optional[str] = None,
                ast: Optional[Dict[str, Any]] = None,
                columnar: bool = True,
                explain: bool = False,
                trace: bool = False) -> Dict[str, Any]:
        """Compile and run a query program on the warm session.

        Pass exactly one of ``text`` (the DSL source) or ``ast`` (the
        canonical JSON AST, :meth:`repro.program.QueryProgram.to_json`).
        Returns the program result document (``result`` statement name,
        ``columns``, ``rows``, per-statement ``statements`` traces,
        optional ``explain``).  Parse failures raise
        :class:`ServiceParseError`; validation failures raise
        :class:`ServiceValidationError` with the WOL5xx diagnostics.
        """
        if (text is None) == (ast is None):
            raise ValueError("pass exactly one of text= or ast=")
        body: Dict[str, Any] = {}
        if text is not None:
            body["text"] = text
        else:
            body["ast"] = ast
        if not columnar:
            body["columnar"] = False
        if explain:
            body["explain"] = True
        return self._call(
            "POST", "/program?trace=1" if trace else "/program",
            body=body)

    def check(self, trace: bool = False) -> Dict[str, Any]:
        return self._call("GET", "/check?trace=1" if trace else "/check")

    def ingest(self, delta_document: Dict[str, Any]) -> Dict[str, Any]:
        return self._call("POST", "/ingest", body=delta_document)

    def lint(self, program: Optional[str] = None) -> Dict[str, Any]:
        """Lint ``program`` (or the session's own program when None).

        Always a report — a program full of findings is a successful
        lint (HTTP 200), not a transport failure.
        """
        body: Dict[str, Any] = (
            {} if program is None else {"program": program})
        return self._call("POST", "/lint", body=body)

    def snapshot(self) -> Dict[str, Any]:
        return self._call("POST", "/snapshot", body={})

    # ------------------------------------------------------------------
    # Replication feed
    # ------------------------------------------------------------------
    def wal(self, from_seq: int, limit: int = 500,
            wait: float = 0.0) -> Dict[str, Any]:
        """Fetch WAL records starting at ``from_seq`` (the feed a
        follower tails).

        ``wait > 0`` long-polls until a record lands at ``from_seq``
        or the window expires.  The result carries ``records``,
        ``seq``/``base_seq``/``snapshot``, and ``reset`` — true when
        ``from_seq`` was compacted away and the caller must reseed
        from :meth:`snapshot_file`.
        """
        return self._call(
            "GET", f"/wal?from={from_seq}&limit={limit}&wait={wait:g}")

    def snapshot_file(self, name: str) -> Dict[str, Any]:
        """Fetch one content-addressed snapshot document by name."""
        return self._call("GET", f"/snapshot/{quote(name)}")
