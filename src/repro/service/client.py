"""A minimal JSON client for the warehouse service (urllib only).

Used by the tests, the benchmarks and ``examples/service_demo.py`` —
and small enough to copy into any consumer that cannot add
dependencies either.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional
from urllib import request as urlrequest
from urllib.error import HTTPError
from urllib.parse import quote


class ServiceClientError(Exception):
    """A non-2xx service response, carrying the decoded error body."""

    def __init__(self, status: int, document: Dict[str, Any]) -> None:
        super().__init__(f"HTTP {status}: "
                         f"{document.get('error', document)}")
        self.status = status
        self.document = document


class ServiceClient:
    """Talk to one running :class:`~repro.service.server.ServiceServer`."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _call(self, method: str, path: str,
              body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        data = (json.dumps(body).encode("utf-8")
                if body is not None else None)
        req = urlrequest.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"}
            if data is not None else {})
        try:
            with urlrequest.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except HTTPError as exc:
            try:
                document = json.loads(exc.read().decode("utf-8"))
            except ValueError:
                document = {"error": str(exc)}
            raise ServiceClientError(exc.code, document) from exc

    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._call("GET", "/health")

    def stats(self) -> Dict[str, Any]:
        return self._call("GET", "/stats")

    def target(self) -> Dict[str, Any]:
        return self._call("GET", "/target")

    def query(self, class_name: str) -> Dict[str, Any]:
        return self._call("GET", f"/query?class={quote(class_name)}")

    def check(self) -> Dict[str, Any]:
        try:
            return self._call("GET", "/check")
        except ServiceClientError as exc:
            if exc.status == 409:  # violations present is a report,
                return exc.document  # not a transport failure
            raise

    def ingest(self, delta_document: Dict[str, Any]) -> Dict[str, Any]:
        return self._call("POST", "/ingest", body=delta_document)

    def lint(self, program: Optional[str] = None) -> Dict[str, Any]:
        """Lint ``program`` (or the session's own program when None).

        A 400 response still carries the diagnostics report — that is
        the "program has errors" outcome, not a transport failure.
        """
        body: Dict[str, Any] = (
            {} if program is None else {"program": program})
        try:
            return self._call("POST", "/lint", body=body)
        except ServiceClientError as exc:
            if exc.status == 400 and "diagnostics" in exc.document:
                return exc.document
            raise

    def snapshot(self) -> Dict[str, Any]:
        return self._call("POST", "/snapshot", body={})
