"""The text DSL of query programs — a serialisation of the JSON AST.

Concrete syntax (statements end with ``;``, comments run from ``--`` or
``#`` to end of line)::

    program capitals;                          -- optional header

    caps  = query { N | X in CityE, X.is_capital = true, N = X.name };
    all   = query { N | X in CityE, N = X.name };
    other = difference all, caps;
    both  = union caps, other;
    top   = limit both 10;
    names = project both -> N;

The ``query`` operator's braces carry exactly the text
:meth:`repro.query.Query.parse` accepts — an optional projection list
before ``|``, then a WOL atom list — so the query sub-language is the
clause-body language of the paper, unchanged.  Braces nest (WOL set
patterns may contain ``{}``); the parser scans to the balancing brace.

:func:`parse_program_text` and :func:`format_program` round-trip:
``parse_program_text(format_program(p)) == p`` for every program ``p``,
and formatting a parsed text yields the canonical rendering of its AST.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from .ast import (DifferenceOp, IntersectOp, LimitOp, Op, ProgramParseError,
                  ProjectOp, QueryOp, QueryProgram, Statement, UnionOp,
                  is_statement_name)

_COMMENT = re.compile(r"(--|#)[^\n]*")
_NAME = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_INT = re.compile(r"-?[0-9]+")


class _Scanner:
    """A cursor over the program text with WOL-style comment skipping."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def skip_space(self) -> None:
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch.isspace():
                self.pos += 1
                continue
            match = _COMMENT.match(self.text, self.pos)
            if match:
                self.pos = match.end()
                continue
            break

    def at_end(self) -> bool:
        self.skip_space()
        return self.pos >= len(self.text)

    def error(self, message: str) -> ProgramParseError:
        line = self.text.count("\n", 0, self.pos) + 1
        return ProgramParseError(f"line {line}: {message}")

    def take_name(self, what: str) -> str:
        self.skip_space()
        match = _NAME.match(self.text, self.pos)
        if not match:
            raise self.error(f"expected {what}")
        self.pos = match.end()
        return match.group()

    def take_int(self) -> int:
        self.skip_space()
        match = _INT.match(self.text, self.pos)
        if not match:
            raise self.error("expected an integer")
        self.pos = match.end()
        return int(match.group())

    def take(self, literal: str) -> None:
        self.skip_space()
        if not self.text.startswith(literal, self.pos):
            raise self.error(f"expected {literal!r}")
        self.pos += len(literal)

    def try_take(self, literal: str) -> bool:
        self.skip_space()
        if self.text.startswith(literal, self.pos):
            self.pos += len(literal)
            return True
        return False

    def take_braced(self) -> str:
        """The text between a balanced ``{`` ... ``}`` pair."""
        self.take("{")
        depth = 1
        start = self.pos
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                if depth == 0:
                    body = self.text[start:self.pos]
                    self.pos += 1
                    return body.strip()
            self.pos += 1
        raise self.error("unterminated '{' in query operator")

    def take_name_list(self) -> Tuple[str, ...]:
        names = [self.take_name("a statement name")]
        while self.try_take(","):
            names.append(self.take_name("a statement name"))
        return tuple(names)


def parse_program_text(text: str) -> QueryProgram:
    """Parse the text DSL into its :class:`QueryProgram` AST."""
    scanner = _Scanner(text)
    name = None
    statements: List[Statement] = []
    first = True
    while not scanner.at_end():
        word = scanner.take_name("a statement name (or 'program')")
        scanner.skip_space()
        if first and word == "program" \
                and not scanner.text.startswith("=", scanner.pos):
            name = scanner.take_name("a program name")
            scanner.take(";")
            first = False
            continue
        first = False
        scanner.take("=")
        statements.append(Statement(name=word, op=_parse_op(scanner)))
        scanner.take(";")
    return QueryProgram(statements=tuple(statements), name=name)


def _parse_op(scanner: _Scanner) -> Op:
    operator = scanner.take_name("an operator")
    if operator == "query":
        body_text = scanner.take_braced()
        project: Tuple[str, ...] = ()
        if "|" in body_text:
            head, _, body = body_text.partition("|")
            names = tuple(part.strip() for part in head.split(",")
                          if part.strip())
            if names != ("*",):
                if not all(is_statement_name(part) for part in names):
                    raise scanner.error(
                        f"bad projection list {head.strip()!r}")
                project = names
            body_text = body.strip()
        return QueryOp(body=body_text, project=project)
    if operator == "union":
        return UnionOp(sources=scanner.take_name_list())
    if operator == "intersect":
        return IntersectOp(sources=scanner.take_name_list())
    if operator == "difference":
        sources = scanner.take_name_list()
        if len(sources) != 2:
            raise scanner.error(
                f"'difference' takes exactly two inputs, got "
                f"{len(sources)}")
        return DifferenceOp(left=sources[0], right=sources[1])
    if operator == "project":
        source = scanner.take_name("a statement name")
        scanner.take("->")
        return ProjectOp(source=source,
                         columns=scanner.take_name_list())
    if operator == "limit":
        source = scanner.take_name("a statement name")
        return LimitOp(source=source, count=scanner.take_int())
    raise scanner.error(
        f"unknown operator {operator!r} (one of: query, union, "
        f"intersect, difference, project, limit)")


def format_statement(statement: Statement) -> str:
    """The canonical text rendering of one statement (no terminator)."""
    op = statement.op
    if isinstance(op, QueryOp):
        if op.project:
            inner = f"{', '.join(op.project)} | {op.body}"
        else:
            inner = op.body
        rendered = f"query {{ {inner} }}"
    elif isinstance(op, UnionOp):
        rendered = f"union {', '.join(op.sources)}"
    elif isinstance(op, IntersectOp):
        rendered = f"intersect {', '.join(op.sources)}"
    elif isinstance(op, DifferenceOp):
        rendered = f"difference {op.left}, {op.right}"
    elif isinstance(op, ProjectOp):
        rendered = f"project {op.source} -> {', '.join(op.columns)}"
    elif isinstance(op, LimitOp):
        rendered = f"limit {op.source} {op.count}"
    else:  # pragma: no cover - exhaustive over Op
        raise ProgramParseError(f"cannot format operator {op!r}")
    return f"{statement.name} = {rendered};"


def format_program(program: QueryProgram) -> str:
    """The canonical text DSL rendering of a program AST."""
    lines: List[str] = []
    if program.name is not None:
        lines.append(f"program {program.name};")
        lines.append("")
    lines.extend(format_statement(s) for s in program.statements)
    return "\n".join(lines) + ("\n" if lines else "")
