"""Composable query programs over warehouse instances.

The query-program DSL (ROADMAP open item: "a composable query DSL
served over the API") — statically-bounded named statements, each a WOL
conjunctive query or a set-algebra fold of earlier results, with a
canonical versioned JSON AST (:mod:`~repro.program.ast`), a text form
that round-trips through it (:mod:`~repro.program.parser`), WOL5xx
static validation (:mod:`~repro.program.validate`), and planned /
columnar / shardable execution (:mod:`~repro.program.compile`,
:mod:`~repro.program.interp`).  Served as ``POST /program`` by
:mod:`repro.service` and as ``repro program`` on the CLI.
"""

from .ast import (ALL_OPS, MAX_STATEMENTS, PROGRAM_VERSION, DifferenceOp,
                  IntersectOp, LimitOp, Op, ProgramError, ProgramParseError,
                  ProgramValidationError, ProjectOp, QueryOp, QueryProgram,
                  Statement, UnionOp)
from .compile import CompiledProgram, CompiledStatement, compile_program
from .interp import (ProgramResult, ResultSet, StatementTrace, run_compiled,
                     run_program)
from .parser import format_program, format_statement, parse_program_text
from .validate import check_program, validate_program, validate_text

__all__ = [
    "PROGRAM_VERSION", "MAX_STATEMENTS", "ALL_OPS",
    "ProgramError", "ProgramParseError", "ProgramValidationError",
    "QueryOp", "UnionOp", "IntersectOp", "DifferenceOp", "ProjectOp",
    "LimitOp", "Op", "Statement", "QueryProgram",
    "parse_program_text", "format_program", "format_statement",
    "validate_program", "check_program", "validate_text",
    "compile_program", "CompiledProgram", "CompiledStatement",
    "run_program", "run_compiled", "ProgramResult", "ResultSet",
    "StatementTrace",
]
