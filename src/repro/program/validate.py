"""Static validation of query programs (the WOL5xx diagnostics).

Validation is purely static: it reads the AST and the class vocabulary,
never an instance.  Every finding is a
:class:`~repro.analysis.Diagnostic` carrying a WOL5xx code from the
shared :data:`repro.analysis.CODES` registry, anchored to the statement
(``clause`` = statement name, ``clause_index`` = its position), so the
service, the CLI and the tests all render program findings with the
same machinery as the transformation analyzer's.

The checks, in registry order:

========  ============================================================
WOL501    program bounds (non-empty, ≤ ``MAX_STATEMENTS``, identifier
          statement names)
WOL502    duplicate statement names
WOL503    operator inputs must name an *earlier* statement (no forward
          or self references — the language has no recursion)
WOL504    query bodies must parse, be range-restricted and project
          bound variables (delegated to :meth:`repro.query.Query.parse`)
WOL505    union/intersect/difference inputs must agree on columns
WOL506    project may only select columns its input produces
WOL507    limit counts must be non-negative
WOL508    (warning) statements that feed nothing and are not the result
========  ============================================================
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional

from ..analysis.diagnostics import Diagnostic, DiagnosticReport
from ..query.query import Query, QueryError
from .ast import (MAX_STATEMENTS, DifferenceOp, IntersectOp, LimitOp,
                  ProgramParseError, ProgramValidationError, ProjectOp,
                  QueryOp, QueryProgram, Statement, UnionOp,
                  is_statement_name)

#: The pass name recorded on validation reports.
PASS_NAME = "program"


def validate_program(program: QueryProgram,
                     classes: Optional[Iterable[str]] = None
                     ) -> DiagnosticReport:
    """Statically validate ``program``; returns the full report.

    ``classes`` is the class vocabulary query bodies parse against
    (pass the serving instance's ``schema.class_names()``); omitting it
    skips only the class-name resolution inside bodies, never the
    structural checks.
    """
    diagnostics: List[Diagnostic] = []
    class_list = list(classes) if classes is not None else None

    if not program.statements:
        diagnostics.append(Diagnostic(
            "WOL501", "program has no statements"))
    if len(program.statements) > MAX_STATEMENTS:
        diagnostics.append(Diagnostic(
            "WOL501",
            f"program has {len(program.statements)} statements, over "
            f"the limit of {MAX_STATEMENTS}"))

    # Columns each statement produces; None = unknown (the statement
    # itself failed, so dependents skip column checks instead of
    # cascading spurious mismatches).
    columns: Dict[str, Optional[FrozenSet[str]]] = {}
    consumed: Dict[str, bool] = {}

    for index, statement in enumerate(program.statements):
        produced = _validate_statement(statement, index, columns,
                                       consumed, class_list, diagnostics)
        if statement.name not in columns:
            columns[statement.name] = produced
            consumed.setdefault(statement.name, False)

    result = program.result_name
    for index, statement in enumerate(program.statements):
        if statement.name != result and not consumed.get(statement.name):
            diagnostics.append(Diagnostic(
                "WOL508",
                f"statement {statement.name!r} feeds no later statement "
                f"and is not the program result",
                clause=statement.name, clause_index=index,
                suggestion="drop it, or move it last to make it the "
                           "result"))

    return DiagnosticReport(diagnostics=diagnostics,
                            passes_run=(PASS_NAME,))


def _validate_statement(statement: Statement, index: int,
                        columns: Dict[str, Optional[FrozenSet[str]]],
                        consumed: Dict[str, bool],
                        classes: Optional[List[str]],
                        diagnostics: List[Diagnostic]
                        ) -> Optional[FrozenSet[str]]:
    """Check one statement; returns the column set it produces."""
    name = statement.name
    op = statement.op

    if not is_statement_name(name):
        diagnostics.append(Diagnostic(
            "WOL501", f"statement name {name!r} is not an identifier",
            clause=name, clause_index=index))
    if name in columns:
        diagnostics.append(Diagnostic(
            "WOL502", f"statement name {name!r} is already bound",
            clause=name, clause_index=index,
            suggestion="rename one of the two statements"))

    # Inputs must reference earlier statements (defined strictly before
    # this one) — undefined, forward and self references all land here.
    input_columns: List[Optional[FrozenSet[str]]] = []
    for source in op.inputs():
        if source not in columns:
            diagnostics.append(Diagnostic(
                "WOL503",
                f"input {source!r} names no earlier statement "
                f"(statements may only reference results defined "
                f"above)",
                clause=name, clause_index=index))
            input_columns.append(None)
        else:
            consumed[source] = True
            input_columns.append(columns[source])

    if isinstance(op, QueryOp):
        try:
            text = (f"{', '.join(op.project)} | {op.body}"
                    if op.project else op.body)
            query = Query.parse(text, classes=classes)
        except QueryError as exc:
            diagnostics.append(Diagnostic(
                "WOL504", str(exc), clause=name, clause_index=index))
            return None
        return frozenset(query.projection or query.variables())

    if isinstance(op, (UnionOp, IntersectOp)):
        if len(op.sources) < 2:
            diagnostics.append(Diagnostic(
                "WOL503",
                f"{op.op} needs at least two inputs, got "
                f"{len(op.sources)}",
                clause=name, clause_index=index))
        return _common_columns(op.op, name, index, input_columns,
                               diagnostics)

    if isinstance(op, DifferenceOp):
        return _common_columns(op.op, name, index, input_columns,
                               diagnostics)

    if isinstance(op, ProjectOp):
        source_columns = input_columns[0] if input_columns else None
        if not op.columns:
            diagnostics.append(Diagnostic(
                "WOL506", "project selects no columns",
                clause=name, clause_index=index))
            return None
        if source_columns is not None:
            unknown = [c for c in op.columns if c not in source_columns]
            if unknown:
                diagnostics.append(Diagnostic(
                    "WOL506",
                    f"project selects {', '.join(repr(c) for c in unknown)}"
                    f", but {op.source!r} produces columns "
                    f"{sorted(source_columns)}",
                    clause=name, clause_index=index))
                return None
        return frozenset(op.columns)

    if isinstance(op, LimitOp):
        if op.count < 0:
            diagnostics.append(Diagnostic(
                "WOL507", f"limit count {op.count} is negative",
                clause=name, clause_index=index))
        return input_columns[0] if input_columns else None

    raise AssertionError(f"unhandled operator {op!r}")  # pragma: no cover


def _common_columns(op_name: str, name: str, index: int,
                    input_columns: List[Optional[FrozenSet[str]]],
                    diagnostics: List[Diagnostic]
                    ) -> Optional[FrozenSet[str]]:
    """The shared column set of a set operation's inputs (WOL505)."""
    known = [c for c in input_columns if c is not None]
    if not known or len(known) != len(input_columns):
        return known[0] if known else None
    first = known[0]
    for other in known[1:]:
        if other != first:
            diagnostics.append(Diagnostic(
                "WOL505",
                f"{op_name} inputs produce different columns: "
                f"{sorted(first)} vs {sorted(other)}",
                clause=name, clause_index=index,
                suggestion="project the inputs to a shared column "
                           "list first"))
            return None
    return first


def validate_text(text: str,
                  classes: Optional[Iterable[str]] = None
                  ) -> DiagnosticReport:
    """Validate text-DSL source, folding parse failures into the report.

    A program that does not parse yields a single WOL500 diagnostic
    instead of an exception — the "everything is a report" entry point
    for linters and editors, mirroring the analyzer's WOL100 gate.
    """
    from .parser import parse_program_text
    try:
        program = parse_program_text(text)
    except ProgramParseError as exc:
        return DiagnosticReport(
            diagnostics=[Diagnostic("WOL500", str(exc))],
            passes_run=(PASS_NAME,))
    return validate_program(program, classes=classes)


def check_program(program: QueryProgram,
                  classes: Optional[Iterable[str]] = None
                  ) -> DiagnosticReport:
    """Validate and *enforce*: raise on error-severity findings.

    Returns the report (which may still carry warnings) when the
    program is executable; raises :class:`ProgramValidationError`
    carrying it otherwise.  The service's 422 path and the compiler
    both come through here.
    """
    report = validate_program(program, classes=classes)
    if report.errors():
        raise ProgramValidationError(report)
    return report
