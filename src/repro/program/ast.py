"""The canonical JSON AST of the query-program DSL.

A *query program* is a statically-bounded composition of named
statements.  Each statement either runs a WOL conjunctive body (the
``query`` operator, syntax and semantics of :class:`repro.query.Query`)
or applies set algebra — ``union``, ``intersect``, ``difference``,
``project``, ``limit`` — to the result sets of *earlier* statements.
There is no iteration, no recursion and no forward reference, so every
program has a statically-determinable maximum operation count.

The JSON AST is the canonical representation::

    {"version": 1,
     "name": "capitals",
     "statements": [
       {"name": "caps", "op": "query",
        "body": "X in CityE, X.is_capital = true, N = X.name",
        "project": ["N"]},
       {"name": "top", "op": "limit", "input": "caps", "count": 10}]}

The text DSL (:mod:`repro.program.parser`) is a serialisation of this
AST; both forms compile to the same execution.  ``QueryProgram`` is a
frozen value: :meth:`QueryProgram.to_json` is deterministic (every
field always present, statements in program order) and
:meth:`QueryProgram.from_json` rejects anything it would not itself
emit — unknown operators, missing fields, wrong field types — with a
:class:`ProgramParseError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

#: Version stamp of the canonical AST (the wire format's ``version``).
PROGRAM_VERSION = 1

#: Bound on statements per program — the language is statically bounded,
#: and the service must not compile unbounded work per request.
MAX_STATEMENTS = 64

#: The fixed operator vocabulary.
OP_QUERY = "query"
OP_UNION = "union"
OP_INTERSECT = "intersect"
OP_DIFFERENCE = "difference"
OP_PROJECT = "project"
OP_LIMIT = "limit"

ALL_OPS = (OP_QUERY, OP_UNION, OP_INTERSECT, OP_DIFFERENCE,
           OP_PROJECT, OP_LIMIT)


class ProgramError(Exception):
    """Base class for query-program failures."""


class ProgramParseError(ProgramError):
    """The program text / JSON AST is not syntactically well-formed.

    The service maps this to HTTP 400 — the request never reached
    validation.
    """


class ProgramValidationError(ProgramError):
    """The program parsed but failed static validation.

    Carries the full :class:`~repro.analysis.DiagnosticReport` (WOL5xx
    codes); the service maps this to HTTP 422 with the diagnostics in
    the error envelope.
    """

    def __init__(self, report) -> None:
        errors = report.errors()
        detail = "; ".join(str(d) for d in errors[:3])
        more = f" (+{len(errors) - 3} more)" if len(errors) > 3 else ""
        super().__init__(
            f"program failed validation with {len(errors)} error(s): "
            f"{detail}{more}")
        self.report = report


# ----------------------------------------------------------------------
# Operators
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class QueryOp:
    """Run a WOL conjunctive body; project ``project`` (empty = all)."""

    body: str
    project: Tuple[str, ...] = ()

    op = OP_QUERY

    def inputs(self) -> Tuple[str, ...]:
        return ()

    def to_json(self) -> Dict[str, Any]:
        return {"op": OP_QUERY, "body": self.body,
                "project": list(self.project)}


@dataclass(frozen=True)
class UnionOp:
    """Set union of two or more earlier statements' result sets."""

    sources: Tuple[str, ...]

    op = OP_UNION

    def inputs(self) -> Tuple[str, ...]:
        return self.sources

    def to_json(self) -> Dict[str, Any]:
        return {"op": OP_UNION, "inputs": list(self.sources)}


@dataclass(frozen=True)
class IntersectOp:
    """Set intersection of two or more earlier statements' result sets."""

    sources: Tuple[str, ...]

    op = OP_INTERSECT

    def inputs(self) -> Tuple[str, ...]:
        return self.sources

    def to_json(self) -> Dict[str, Any]:
        return {"op": OP_INTERSECT, "inputs": list(self.sources)}


@dataclass(frozen=True)
class DifferenceOp:
    """Rows of ``left`` not present in ``right``."""

    left: str
    right: str

    op = OP_DIFFERENCE

    def inputs(self) -> Tuple[str, ...]:
        return (self.left, self.right)

    def to_json(self) -> Dict[str, Any]:
        return {"op": OP_DIFFERENCE, "inputs": [self.left, self.right]}


@dataclass(frozen=True)
class ProjectOp:
    """Narrow an earlier result set to ``columns`` (dropping duplicates)."""

    source: str
    columns: Tuple[str, ...]

    op = OP_PROJECT

    def inputs(self) -> Tuple[str, ...]:
        return (self.source,)

    def to_json(self) -> Dict[str, Any]:
        return {"op": OP_PROJECT, "input": self.source,
                "columns": list(self.columns)}


@dataclass(frozen=True)
class LimitOp:
    """The first ``count`` rows of an earlier result set's canonical order."""

    source: str
    count: int

    op = OP_LIMIT

    def inputs(self) -> Tuple[str, ...]:
        return (self.source,)

    def to_json(self) -> Dict[str, Any]:
        return {"op": OP_LIMIT, "input": self.source, "count": self.count}


Op = Union[QueryOp, UnionOp, IntersectOp, DifferenceOp, ProjectOp,
           LimitOp]


@dataclass(frozen=True)
class Statement:
    """One named step: ``name = op``."""

    name: str
    op: Op

    def to_json(self) -> Dict[str, Any]:
        return {"name": self.name, **self.op.to_json()}


@dataclass(frozen=True)
class QueryProgram:
    """A whole query program (the AST root)."""

    statements: Tuple[Statement, ...]
    name: Optional[str] = None

    @property
    def result_name(self) -> Optional[str]:
        """The statement whose result set the program returns (the last)."""
        return self.statements[-1].name if self.statements else None

    def statement_names(self) -> Tuple[str, ...]:
        return tuple(statement.name for statement in self.statements)

    def to_json(self) -> Dict[str, Any]:
        """The canonical JSON AST (deterministic field set and order)."""
        document: Dict[str, Any] = {"version": PROGRAM_VERSION}
        if self.name is not None:
            document["name"] = self.name
        document["statements"] = [s.to_json() for s in self.statements]
        return document

    @staticmethod
    def from_json(data: Any) -> "QueryProgram":
        """Decode a canonical JSON AST; strict, raising on any drift."""
        if not isinstance(data, dict):
            raise ProgramParseError(
                f"program AST must be a JSON object, got "
                f"{type(data).__name__}")
        unknown = set(data) - {"version", "name", "statements"}
        if unknown:
            raise ProgramParseError(
                f"unknown program field(s): {', '.join(sorted(unknown))}")
        version = data.get("version")
        if version != PROGRAM_VERSION:
            raise ProgramParseError(
                f"unsupported program version {version!r} "
                f"(this build speaks version {PROGRAM_VERSION})")
        name = data.get("name")
        if name is not None and not isinstance(name, str):
            raise ProgramParseError("program 'name' must be a string")
        raw_statements = data.get("statements")
        if not isinstance(raw_statements, list):
            raise ProgramParseError("program 'statements' must be a list")
        statements = tuple(_statement_from_json(entry, index)
                           for index, entry in enumerate(raw_statements))
        return QueryProgram(statements=statements, name=name)


# ----------------------------------------------------------------------
# Strict JSON decoding helpers
# ----------------------------------------------------------------------

def _field(entry: Dict[str, Any], index: int, key: str, kind,
           kind_name: str) -> Any:
    value = entry.get(key)
    if not isinstance(value, kind) or isinstance(value, bool):
        raise ProgramParseError(
            f"statement #{index + 1}: field {key!r} must be "
            f"{kind_name}, got {value!r}")
    return value


def _name_list(entry: Dict[str, Any], index: int, key: str
               ) -> Tuple[str, ...]:
    value = entry.get(key)
    if not (isinstance(value, list)
            and all(isinstance(item, str) for item in value)):
        raise ProgramParseError(
            f"statement #{index + 1}: field {key!r} must be a list "
            f"of strings, got {value!r}")
    return tuple(value)


_OP_FIELDS = {
    OP_QUERY: {"op", "name", "body", "project"},
    OP_UNION: {"op", "name", "inputs"},
    OP_INTERSECT: {"op", "name", "inputs"},
    OP_DIFFERENCE: {"op", "name", "inputs"},
    OP_PROJECT: {"op", "name", "input", "columns"},
    OP_LIMIT: {"op", "name", "input", "count"},
}


def _statement_from_json(entry: Any, index: int) -> Statement:
    if not isinstance(entry, dict):
        raise ProgramParseError(
            f"statement #{index + 1} must be a JSON object, got "
            f"{type(entry).__name__}")
    op_name = entry.get("op")
    if op_name not in _OP_FIELDS:
        raise ProgramParseError(
            f"statement #{index + 1}: unknown operator {op_name!r} "
            f"(one of: {', '.join(ALL_OPS)})")
    unknown = set(entry) - _OP_FIELDS[op_name]
    if unknown:
        raise ProgramParseError(
            f"statement #{index + 1}: unknown field(s) for "
            f"{op_name!r}: {', '.join(sorted(unknown))}")
    name = _field(entry, index, "name", str, "a string")

    op: Op
    if op_name == OP_QUERY:
        body = _field(entry, index, "body", str, "a string")
        project = (_name_list(entry, index, "project")
                   if "project" in entry else ())
        op = QueryOp(body=body, project=project)
    elif op_name == OP_UNION:
        op = UnionOp(sources=_name_list(entry, index, "inputs"))
    elif op_name == OP_INTERSECT:
        op = IntersectOp(sources=_name_list(entry, index, "inputs"))
    elif op_name == OP_DIFFERENCE:
        inputs = _name_list(entry, index, "inputs")
        if len(inputs) != 2:
            raise ProgramParseError(
                f"statement #{index + 1}: 'difference' takes exactly "
                f"two inputs, got {len(inputs)}")
        op = DifferenceOp(left=inputs[0], right=inputs[1])
    elif op_name == OP_PROJECT:
        op = ProjectOp(source=_field(entry, index, "input", str,
                                     "a string"),
                       columns=_name_list(entry, index, "columns"))
    else:  # OP_LIMIT
        op = LimitOp(source=_field(entry, index, "input", str,
                                   "a string"),
                     count=_field(entry, index, "count", int,
                                  "an integer"))
    return Statement(name=name, op=op)


def is_statement_name(text: str) -> bool:
    """Valid statement names are identifiers (the text DSL's NAME)."""
    return bool(text) and (text[0].isalpha() or text[0] == "_") \
        and all(ch.isalnum() or ch == "_" for ch in text)


__all__: List[str] = [
    "PROGRAM_VERSION", "MAX_STATEMENTS", "ALL_OPS",
    "OP_QUERY", "OP_UNION", "OP_INTERSECT", "OP_DIFFERENCE",
    "OP_PROJECT", "OP_LIMIT",
    "ProgramError", "ProgramParseError", "ProgramValidationError",
    "QueryOp", "UnionOp", "IntersectOp", "DifferenceOp", "ProjectOp",
    "LimitOp", "Op", "Statement", "QueryProgram", "is_statement_name",
]
