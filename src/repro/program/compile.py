"""Compiling validated query programs for execution.

Compilation is the bridge between the AST and the engine: each
``query`` statement's body is parsed once (:meth:`repro.query.Query.
parse`), wrapped in a probe clause and handed to the static join
planner (:func:`repro.engine.planner.plan_clause`), and the union of
every plan's index selectors is prebuilt on one shared
:class:`~repro.semantics.match.IndexPool` — the same amortisation the
batch transformation engine applies across clauses, applied across the
statements of a program.  Set-algebra statements compile to nothing;
they run on materialised result sets in the interpreter.

Statements whose body the planner cannot order statically
(:class:`~repro.engine.planner.PlanError`) keep ``plan=None`` and fall
back to the dynamic matcher at run time — same behaviour, no speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..analysis.diagnostics import DiagnosticReport
from ..engine.planner import JoinPlan, PlanError, plan_clause
from ..lang.ast import Clause
from ..model.instance import Instance
from ..query.query import Query
from ..semantics.match import IndexPool
from .ast import QueryOp, QueryProgram, Statement
from .validate import check_program


@dataclass(frozen=True)
class CompiledStatement:
    """One statement, ready to run.

    ``query``/``plan`` are populated for ``query`` statements only;
    ``plan`` is None when the statement executes on the dynamic
    matcher.  ``columns`` is the statement's output column order —
    projection order for explicit projections, first-occurrence
    variable order otherwise (the :meth:`Query.variables` convention).
    """

    statement: Statement
    columns: Tuple[str, ...]
    query: Optional[Query] = None
    plan: Optional[JoinPlan] = None

    @property
    def planned(self) -> bool:
        return self.plan is not None


@dataclass(frozen=True)
class CompiledProgram:
    """A validated program plus per-statement plans and the shared pool."""

    program: QueryProgram
    statements: Tuple[CompiledStatement, ...]
    pool: IndexPool
    report: DiagnosticReport
    prebuilt_indexes: int

    def explain(self) -> str:
        """Stable rendering of every statement's execution strategy."""
        lines: List[str] = [
            f"program {self.program.name or '<anonymous>'}: "
            f"{len(self.statements)} statement(s), "
            f"{self.prebuilt_indexes} prebuilt index(es)"]
        for compiled in self.statements:
            op = compiled.statement.op
            if compiled.query is None:
                lines.append(
                    f"  {compiled.statement.name}: {op.op} "
                    f"({', '.join(op.inputs())})"
                    if op.inputs() else
                    f"  {compiled.statement.name}: {op.op}")
                continue
            mode = "planned" if compiled.planned else "dynamic fallback"
            lines.append(f"  {compiled.statement.name}: query [{mode}] "
                         f"-> columns {', '.join(compiled.columns)}")
            if compiled.plan is not None:
                for line in compiled.plan.explain().splitlines():
                    lines.append(f"    {line}")
        return "\n".join(lines)


def compile_program(program: QueryProgram, instance: Instance,
                    pool: Optional[IndexPool] = None,
                    prebuild: bool = True) -> CompiledProgram:
    """Validate and compile ``program`` against ``instance``.

    Raises :class:`~repro.program.ast.ProgramValidationError` when
    static validation finds errors; warnings ride along on the returned
    report.  ``pool`` lets a warm session share its prebuilt indexes
    across requests; by default a fresh pool is built and the union of
    all statements' index selectors is materialised up front.
    """
    classes = instance.schema.class_names()
    report = check_program(program, classes=classes)

    pool = pool if pool is not None else IndexPool(instance)
    cardinalities = instance.class_sizes()
    compiled: List[CompiledStatement] = []
    index_paths: List[Tuple[str, Tuple[str, ...]]] = []
    columns_by_name: Dict[str, Tuple[str, ...]] = {}

    for statement in program.statements:
        op = statement.op
        if isinstance(op, QueryOp):
            text = (f"{', '.join(op.project)} | {op.body}"
                    if op.project else op.body)
            query = Query.parse(text, classes=classes)
            columns = query.projection or query.variables()
            probe = Clause(query.body, query.body, name=statement.name)
            try:
                plan = plan_clause(probe, cardinalities)
            except PlanError:
                plan = None
            else:
                index_paths.extend(plan.index_paths)
            compiled.append(CompiledStatement(
                statement=statement, columns=columns, query=query,
                plan=plan))
        else:
            columns = _derived_columns(op, columns_by_name)
            compiled.append(CompiledStatement(
                statement=statement, columns=columns))
        columns_by_name[statement.name] = compiled[-1].columns

    unique_paths = sorted(set(index_paths))
    if prebuild:
        pool.prebuild(unique_paths)
    return CompiledProgram(program=program,
                           statements=tuple(compiled),
                           pool=pool, report=report,
                           prebuilt_indexes=len(unique_paths))


def _derived_columns(op, columns_by_name: Dict[str, Tuple[str, ...]]
                     ) -> Tuple[str, ...]:
    """Output column order of a set-algebra statement.

    Validation already guaranteed the inputs agree on column *sets*;
    the *order* follows the first input (and the explicit list for
    ``project``), so e.g. ``union caps, other`` renders columns the way
    ``caps`` did.
    """
    from .ast import ProjectOp
    if isinstance(op, ProjectOp):
        return op.columns
    sources: Iterable[str] = op.inputs()
    for source in sources:
        if source in columns_by_name:
            return columns_by_name[source]
    return ()
