"""Executing compiled query programs.

Execution materialises, per statement, a :class:`ResultSet`: a
duplicate-free set of rows in *canonical order*.  Rows are JSON-encoded
at the engine boundary (``value_to_json`` with the instance's dump
oid-encoder, so anonymous objects carry the same ``Class#n`` labels a
dump of the instance would) and ordered by their sorted-key JSON
rendering.  That single definition buys three guarantees at once:

* set algebra (``union``/``intersect``/``difference``) is well-defined
  — row equality is JSON equality;
* ``limit`` is deterministic — "first N" of a canonical order;
* sharded execution is byte-identical to sequential — a shard
  partitions the row set, and dedup-then-sort erases enumeration order.

``query`` statements run the planned path (vectorized columnar batches
by default, scalar :meth:`~repro.semantics.match.Matcher.run_plan`
otherwise), optionally sharded via
:func:`~repro.engine.planner.shard_join_plan`; bodies with no static
plan fall back to the dynamic matcher.  Set-algebra statements never
touch the instance — they fold earlier result sets.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..engine.planner import shard_join_plan
from ..io.json_io import dump_oid_encoder, value_to_json
from ..model.instance import Instance
from ..obs.metrics import REGISTRY
from ..obs.trace import span
from ..semantics.match import Matcher
from .ast import (DifferenceOp, IntersectOp, LimitOp, ProgramError,
                  ProjectOp, QueryOp, QueryProgram, UnionOp)
from .compile import CompiledProgram, CompiledStatement, compile_program

Row = Dict[str, Any]

#: Statements executed, by operator — the program-DSL mirror of the
#: per-engine ``repro_engine_*`` counters.
_STATEMENTS_TOTAL = REGISTRY.counter(
    "repro_program_statements_total",
    "Query-program statements executed, by operator.", ("op",))


def _row_key(row: Row) -> str:
    return json.dumps(row, sort_keys=True)


@dataclass(frozen=True)
class ResultSet:
    """A statement's materialised result: canonical-order row set.

    ``rows`` are JSON-compatible dicts, duplicate-free, sorted by their
    ``json.dumps(..., sort_keys=True)`` rendering.
    """

    columns: Tuple[str, ...]
    rows: Tuple[Row, ...]

    @staticmethod
    def from_rows(columns: Tuple[str, ...],
                  rows: Iterator[Row]) -> "ResultSet":
        """Dedup + canonically order an arbitrary row enumeration."""
        by_key: Dict[str, Row] = {}
        for row in rows:
            by_key.setdefault(_row_key(row), row)
        ordered = tuple(by_key[key] for key in sorted(by_key))
        return ResultSet(columns=columns, rows=ordered)

    def keys(self) -> Tuple[str, ...]:
        return tuple(_row_key(row) for row in self.rows)

    def to_json(self) -> Dict[str, Any]:
        return {"columns": list(self.columns),
                "rows": [dict(row) for row in self.rows]}


@dataclass(frozen=True)
class StatementTrace:
    """Per-statement execution record (the service's response detail)."""

    name: str
    op: str
    rows: int
    planned: bool = False
    columnar: bool = False
    shards: int = 1

    def to_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"name": self.name, "op": self.op,
                               "rows": self.rows}
        if self.op == "query":
            out["planned"] = self.planned
            out["columnar"] = self.columnar
            out["shards"] = self.shards
        return out


@dataclass(frozen=True)
class ProgramResult:
    """The whole run: every statement's size, the result statement's rows."""

    program: QueryProgram
    result: ResultSet
    traces: Tuple[StatementTrace, ...]
    sets: Dict[str, ResultSet] = field(default_factory=dict, compare=False)

    def to_json(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {}
        if self.program.name is not None:
            document["program"] = self.program.name
        document["result"] = self.program.result_name
        document["columns"] = list(self.result.columns)
        document["rows"] = [dict(row) for row in self.result.rows]
        document["statements"] = [t.to_json() for t in self.traces]
        return document


def run_compiled(compiled: CompiledProgram, instance: Instance,
                 columnar: bool = True, shards: int = 1,
                 oid_encoder=None) -> ProgramResult:
    """Run a compiled program against ``instance``.

    ``instance`` must be the instance the program was compiled against
    (the pool's indexes address its oids).  ``shards`` > 1 partitions
    each shardable plan's driving generator and runs the shards
    sequentially — the differential tests use it to pin sharded ==
    sequential; the service keeps it at 1.
    """
    if shards < 1:
        raise ProgramError(f"shard count must be >= 1, got {shards}")
    encoder = oid_encoder if oid_encoder is not None \
        else dump_oid_encoder(instance)
    matcher = Matcher(instance, index_pool=compiled.pool)

    sets: Dict[str, ResultSet] = {}
    traces: List[StatementTrace] = []
    for statement in compiled.statements:
        op = statement.statement.op
        name = statement.statement.name
        with span(f"{op.op} {name}") as stmt_span:
            if isinstance(op, QueryOp):
                result, trace = _run_query(statement, matcher, encoder,
                                           columnar, shards)
            else:
                result = _run_algebra(op, statement.columns, sets)
                trace = StatementTrace(name=name, op=op.op,
                                       rows=len(result.rows))
            stmt_span.set(rows=len(result.rows))
        _STATEMENTS_TOTAL.labels(op.op).inc()
        sets[name] = result
        traces.append(trace)

    result_name = compiled.program.result_name
    final = sets[result_name] if result_name is not None \
        else ResultSet(columns=(), rows=())
    return ProgramResult(program=compiled.program, result=final,
                         traces=tuple(traces), sets=sets)


def run_program(program: QueryProgram, instance: Instance,
                pool=None, columnar: bool = True, shards: int = 1,
                oid_encoder=None) -> ProgramResult:
    """Compile and run in one call (validation errors raise)."""
    compiled = compile_program(program, instance, pool=pool)
    return run_compiled(compiled, instance, columnar=columnar,
                        shards=shards, oid_encoder=oid_encoder)


# ----------------------------------------------------------------------
# Statement execution
# ----------------------------------------------------------------------

def _run_query(statement: CompiledStatement, matcher: Matcher,
               encoder, columnar: bool, shards: int
               ) -> Tuple[ResultSet, StatementTrace]:
    query = statement.query
    assert query is not None
    columns = statement.columns
    plan = statement.plan

    def bindings() -> Iterator[Dict[str, Any]]:
        if plan is None:
            yield from matcher.solutions(query.body)
        elif shards > 1:
            shard_plans = [shard_join_plan(plan, i, shards)
                           for i in range(shards)]
            if any(sp is None for sp in shard_plans):
                yield from _run_steps(matcher, plan.steps, columnar)
            else:
                for shard_plan in shard_plans:
                    yield from _run_steps(matcher, shard_plan.steps,
                                          columnar)
        else:
            yield from _run_steps(matcher, plan.steps, columnar)

    def rows() -> Iterator[Row]:
        for binding in bindings():
            yield {name: value_to_json(binding[name], encoder)
                   for name in columns if name in binding}

    result = ResultSet.from_rows(columns, rows())
    trace = StatementTrace(
        name=statement.statement.name, op="query",
        rows=len(result.rows), planned=plan is not None,
        columnar=columnar and plan is not None,
        shards=shards if plan is not None else 1)
    return result, trace


def _run_steps(matcher: Matcher, steps, columnar: bool):
    if columnar:
        return matcher.run_plan_columnar(steps)
    return matcher.run_plan(steps)


def _run_algebra(op, columns: Tuple[str, ...],
                 sets: Dict[str, ResultSet]) -> ResultSet:
    """Fold earlier result sets; all inputs exist (validation ensures)."""
    if isinstance(op, UnionOp):
        def union_rows() -> Iterator[Row]:
            for source in op.sources:
                yield from sets[source].rows
        return ResultSet.from_rows(columns, union_rows())
    if isinstance(op, IntersectOp):
        key_sets = [set(sets[source].keys()) for source in op.sources]
        shared = set.intersection(*key_sets) if key_sets else set()
        first = sets[op.sources[0]]
        return ResultSet.from_rows(
            columns, (row for row in first.rows
                      if _row_key(row) in shared))
    if isinstance(op, DifferenceOp):
        right = set(sets[op.right].keys())
        return ResultSet.from_rows(
            columns, (row for row in sets[op.left].rows
                      if _row_key(row) not in right))
    if isinstance(op, ProjectOp):
        source = sets[op.source]
        return ResultSet.from_rows(
            columns, ({name: row[name] for name in op.columns
                       if name in row}
                      for row in source.rows))
    if isinstance(op, LimitOp):
        source = sets[op.source]
        return ResultSet(columns=columns,
                         rows=source.rows[:op.count])
    raise ProgramError(f"unhandled operator {op!r}")  # pragma: no cover
