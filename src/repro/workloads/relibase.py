"""The ReLiBase data-warehouse trial (paper Section 6).

"The WOL language has also been used independently by researchers in the
VODAK project at Darmstadt, Germany, in order to build a data-warehouse of
protein and protein-ligand data for use in drug design.  This project
involved transforming data from a variety of public molecular biology
databases, including SWISSPROT and PDB, and storing it in an
object-oriented database, ReLiBase."

This workload reproduces that shape: two heterogeneous sources —
a SWISSPROT-like flat entry database (sequence records keyed by accession)
and a PDB-like structure database (structures with chains and bound
ligands) — integrated by a WOL program into a ReLiBase-like object model
(proteins referencing their structures, ligands, and binding complexes).
It is the repository's second *multi-source* integration after the cities
example, with set-valued target attributes exercised end to end.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..lang.ast import Program
from ..lang.parser import parse_program
from ..model.instance import Instance, InstanceBuilder
from ..model.keys import KeyedSchema
from ..model.schema import parse_schema
from ..model.values import Record

SWISSPROT_SCHEMA_TEXT = """
schema SwissProt {
  class SpEntry = (accession: str, protein_name: str, organism: str,
                   seq_length: int) key accession;
}
"""

PDB_SCHEMA_TEXT = """
schema Pdb {
  class PdbStructure = (pdb_id: str, accession: str, resolution: float,
                        method: str) key pdb_id;
  class PdbLigand    = (code: str, formula: str) key code;
  class PdbBinding   = (structure: PdbStructure, ligand: PdbLigand,
                        affinity: float) key structure.pdb_id, ligand.code;
}
"""

RELIBASE_SCHEMA_TEXT = """
schema ReLiBase {
  class Protein   = (accession: str, name: str, organism: str,
                     structures: {Structure}) key accession;
  class Structure = (pdb_id: str, resolution: float,
                     protein: Protein) key pdb_id;
  class Ligand    = (code: str, formula: str) key code;
  class Complex   = (structure: Structure, ligand: Ligand,
                     affinity: float);
}
"""

PROGRAM_TEXT = """
-- Proteins come from SWISSPROT entries.
transformation RP:
  P in Protein, P.accession = A, P.name = N, P.organism = O
  <= E in SpEntry, A = E.accession, N = E.protein_name,
     O = E.organism;

-- Structures come from PDB entries whose accession has a SWISSPROT
-- counterpart (the cross-database join of the warehouse build).  The
-- head also inserts the structure into its protein's set-valued
-- structures attribute (accumulated across firings).
transformation RS:
  S in Structure, S.pdb_id = I, S.resolution = R, S.protein = P,
  S in P.structures
  <= X in PdbStructure, I = X.pdb_id, R = X.resolution,
     E in SpEntry, X.accession = E.accession,
     P in Protein, P.accession = E.accession;

-- Ligands copy over from PDB.
transformation RL:
  L in Ligand, L.code = C, L.formula = F
  <= Y in PdbLigand, C = Y.code, F = Y.formula;

-- Binding complexes join structures and ligands.
transformation RC:
  M in Complex, M.structure = S, M.ligand = L, M.affinity = K
  <= B in PdbBinding, K = B.affinity,
     X = B.structure, S in Structure, S.pdb_id = X.pdb_id,
     Y = B.ligand, L in Ligand, L.code = Y.code;

-- Complexes are identified by the (structure, ligand) pair.
constraint KeyComplex:
  M = Mk_Complex(structure = S, ligand = L)
  <= M in Complex, S = M.structure, L = M.ligand;
"""


def swissprot_schema() -> KeyedSchema:
    return parse_schema(SWISSPROT_SCHEMA_TEXT)


def pdb_schema() -> KeyedSchema:
    return parse_schema(PDB_SCHEMA_TEXT)


def relibase_schema() -> KeyedSchema:
    return parse_schema(RELIBASE_SCHEMA_TEXT)


def relibase_constraints() -> List:
    """The ReLiBase object model's constraint library, as WOL clauses.

    Keys, inclusion and containment dependencies derived from the
    ReLiBase schema (Protein/Structure/Ligand/Complex), plus the
    structures/protein inverse: every structure appears in its
    protein's set-valued ``structures`` attribute (which the RS
    transformation maintains by construction).
    """
    from ..constraints.library import schema_constraints
    from ..lang.ast import (Clause, EqAtom, InAtom, KIND_CONSTRAINT,
                            MemberAtom, Proj, Var)
    clauses = schema_constraints(relibase_schema())
    clauses.append(Clause(
        (InAtom(Var("S"), Proj(Var("P"), "structures")),),
        (MemberAtom(Var("S"), "Structure"),
         EqAtom(Var("P"), Proj(Var("S"), "protein"))),
        name="inv_Structure_protein", kind=KIND_CONSTRAINT))
    return clauses


def warehouse_program() -> Program:
    classes = (swissprot_schema().schema.class_names()
               + pdb_schema().schema.class_names()
               + relibase_schema().schema.class_names())
    return parse_program(PROGRAM_TEXT, classes=classes)


def sample_swissprot() -> Instance:
    builder = InstanceBuilder(swissprot_schema().schema)
    for accession, name, organism, length in [
            ("P00533", "EGFR", "Homo sapiens", 1210),
            ("P24941", "CDK2", "Homo sapiens", 298),
            ("P56817", "BACE1", "Homo sapiens", 501)]:
        builder.new("SpEntry", Record.of(
            accession=accession, protein_name=name, organism=organism,
            seq_length=length))
    return builder.freeze()


def sample_pdb() -> Instance:
    builder = InstanceBuilder(pdb_schema().schema)
    structures = {}
    for pdb_id, accession, resolution, method in [
            ("1M17", "P00533", 2.6, "X-ray"),
            ("2ITY", "P00533", 3.4, "X-ray"),
            ("1HCK", "P24941", 1.9, "X-ray"),
            ("9XYZ", "Q99999", 2.0, "X-ray")]:  # no SWISSPROT match
        structures[pdb_id] = builder.new("PdbStructure", Record.of(
            pdb_id=pdb_id, accession=accession, resolution=resolution,
            method=method))
    ligands = {}
    for code, formula in [("AQ4", "C22H23N3O4"), ("ATP", "C10H16N5O13P3")]:
        ligands[code] = builder.new("PdbLigand", Record.of(
            code=code, formula=formula))
    for pdb_id, code, affinity in [("1M17", "AQ4", 7.2),
                                   ("1HCK", "ATP", 5.1)]:
        builder.new("PdbBinding", Record.of(
            structure=structures[pdb_id], ligand=ligands[code],
            affinity=affinity))
    return builder.freeze()


#: Default size for parallel-scaling benchmarks (see
#: :data:`repro.workloads.genome.PARALLEL_BENCHMARK_SIZE`).
PARALLEL_BENCHMARK_SIZE = {"proteins": 2000,
                           "structures_per_protein": 3,
                           "ligands": 400, "bindings": 6000,
                           "seed": 7}


def benchmark_sources(scale: float = 1.0) -> Tuple[Instance, Instance]:
    """The canonical benchmark SWISSPROT/PDB pair, optionally scaled."""
    size = dict(PARALLEL_BENCHMARK_SIZE)
    for field in ("proteins", "ligands", "bindings"):
        size[field] = max(1, int(size[field] * scale))
    return generate_sources(**size)


def generate_sources(proteins: int, structures_per_protein: int,
                     ligands: int, bindings: int,
                     seed: int = 0) -> Tuple[Instance, Instance]:
    """Synthetic SWISSPROT and PDB instances for scaling runs."""
    rng = random.Random(seed)
    sp_builder = InstanceBuilder(swissprot_schema().schema)
    accessions = []
    for index in range(proteins):
        accession = f"P{index:05d}"
        accessions.append(accession)
        sp_builder.new("SpEntry", Record.of(
            accession=accession, protein_name=f"PROT{index}",
            organism=rng.choice(["Homo sapiens", "Mus musculus"]),
            seq_length=rng.randrange(100, 2000)))

    pdb_builder = InstanceBuilder(pdb_schema().schema)
    structure_oids = []
    for index in range(proteins * structures_per_protein):
        accession = accessions[index % proteins]
        structure_oids.append(pdb_builder.new("PdbStructure", Record.of(
            pdb_id=f"S{index:04d}", accession=accession,
            resolution=round(rng.uniform(1.2, 3.8), 2),
            method=rng.choice(["X-ray", "NMR"]))))
    ligand_oids = []
    for index in range(ligands):
        ligand_oids.append(pdb_builder.new("PdbLigand", Record.of(
            code=f"L{index:03d}", formula=f"C{index}H{index}N")))
    seen = set()
    made = 0
    while made < bindings and len(seen) < (len(structure_oids)
                                           * max(len(ligand_oids), 1)):
        structure = rng.choice(structure_oids)
        ligand = rng.choice(ligand_oids)
        key = (structure, ligand)
        if key in seen:
            continue
        seen.add(key)
        pdb_builder.new("PdbBinding", Record.of(
            structure=structure, ligand=ligand,
            affinity=round(rng.uniform(3.0, 9.5), 1)))
        made += 1
    return sp_builder.freeze(), pdb_builder.freeze()
