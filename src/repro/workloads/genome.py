"""Synthetic genome-database workload (paper Section 6, experiment E7).

The paper's trials moved data between ACe22DB (an ACeDB tree database,
"sparsely populated") and Chr22DB (a Sybase relational database).  This
workload reproduces the *shape* of that task on synthetic data:

* an ACeDB-style source (:mod:`repro.adapters.acedb`) with ``Gene``,
  ``Sequence`` and ``Clone`` classes whose tags are sparsely populated;
* a warehouse-style target schema with required attributes, a reference
  chain ``CloneT -> SequenceT`` and a link class ``SeqGene`` reifying the
  sparse ``gene`` tag (the same reification move as Marriage in the
  schema-evolution example);
* a WOL program mapping one to the other.  Objects whose required tags are
  missing are *dropped* — the paper's "delete the objects" reading of an
  optional-to-required schema change (Section 1 discusses exactly this
  choice).
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..adapters.acedb import AceClass, AceDatabase, TagSpec, import_acedb
from ..adapters.relational import Column, TableSchema
from ..lang.ast import Program
from ..lang.parser import parse_program
from ..model.instance import Instance
from ..model.keys import KeyedSchema
from ..model.schema import parse_schema

#: The ACeDB class models for the synthetic ACe22DB.
ACE_CLASSES = (
    AceClass("Gene", (
        TagSpec("symbol", "str"),
        TagSpec("description", "str"),
    )),
    AceClass("Sequence", (
        TagSpec("dna_length", "int"),
        TagSpec("method", "str"),
        TagSpec("gene", "ref", "Gene"),
    )),
    AceClass("Clone", (
        TagSpec("map_position", "str"),
        TagSpec("length", "int"),
        TagSpec("seq", "ref", "Sequence"),
    )),
)

WAREHOUSE_SCHEMA_TEXT = """
schema Warehouse {
  class GeneT     = (symbol: str, description: str) key symbol;
  class SequenceT = (name: str, dna_length: int, method: str) key name;
  class CloneT    = (name: str, map_position: str, length: int,
                     seq: SequenceT) key name;
  class SeqGene   = (seq: SequenceT, gene: GeneT);
}
"""

PROGRAM_TEXT = """
-- Genes with a symbol and a description become warehouse genes (genes
-- missing either are dropped: the 'delete' reading of
-- optional-to-required).
transformation TG:
  X in GeneT, X.symbol = S, X.description = D
  <= G in Gene, S in G.symbol, D in G.description;

-- Fully-annotated sequences become warehouse sequences.
transformation TS:
  X in SequenceT, X.name = N, X.dna_length = L, X.method = M
  <= Q in Sequence, N = Q.name, L in Q.dna_length, M in Q.method;

-- Clones with a mapped, measured, sequenced record become warehouse
-- clones; the reference chain goes through the target SequenceT.
transformation TC:
  X in CloneT, X.name = N, X.map_position = P, X.length = L, X.seq = Y
  <= C in Clone, N = C.name, P in C.map_position, L in C.length,
     Q in C.seq, Y in SequenceT, Y.name = Q.name;

-- The sparse gene tag is reified into a link class.
transformation TL:
  M in SeqGene, M.seq = X, M.gene = Y
  <= Q in Sequence, G in Q.gene, S in G.symbol,
     X in SequenceT, X.name = Q.name, Y in GeneT, Y.symbol = S;

-- SeqGene is identified by the linked pair.
constraint KeySeqGene:
  M = Mk_SeqGene(seq = S, gene = G) <= M in SeqGene, S = M.seq,
                                       G = M.gene;
"""

#: Relational table schemas for exporting the warehouse (Chr22DB side).
WAREHOUSE_TABLES = (
    TableSchema("GeneT", (
        Column("symbol", "str"),
        Column("description", "str"),
    ), ("symbol",)),
    TableSchema("SequenceT", (
        Column("name", "str"),
        Column("dna_length", "int"),
        Column("method", "str"),
    ), ("name",)),
    TableSchema("CloneT", (
        Column("name", "str"),
        Column("map_position", "str"),
        Column("length", "int"),
        Column("seq", "str", references="SequenceT"),
    ), ("name",)),
    TableSchema("SeqGene", (
        Column("seq", "str", references="SequenceT"),
        Column("gene", "str", references="GeneT"),
    ), ("seq", "gene")),
)


def warehouse_schema() -> KeyedSchema:
    return parse_schema(WAREHOUSE_SCHEMA_TEXT)


def warehouse_constraints() -> List:
    """The warehouse's constraint library, as WOL clauses.

    Keys for every keyed class plus referential inclusion dependencies
    (``CloneT.seq`` and both ``SeqGene`` legs), derived from the schema —
    the audit workload for the planned constraint engine (transformed
    warehouses satisfy all of them; corrupted ones pinpoint violations).
    """
    from ..constraints.library import schema_constraints
    return schema_constraints(warehouse_schema())


def genome_program() -> Program:
    from ..adapters.acedb import schema_of_acedb
    source = schema_of_acedb(AceDatabase("ACe22", ACE_CLASSES))
    classes = (source.schema.class_names()
               + warehouse_schema().schema.class_names())
    return parse_program(PROGRAM_TEXT, classes=classes)


def generate_acedb(genes: int, sequences: int, clones: int,
                   sparsity: float = 0.8, seed: int = 0) -> AceDatabase:
    """A synthetic ACe22DB.

    ``sparsity`` is the probability that an optional tag is populated
    (ACeDB data is sparsely populated; lower = sparser).  Every sequence
    references a random gene with that probability; every clone references
    a random sequence likewise.
    """
    if not 0.0 <= sparsity <= 1.0:
        raise ValueError("sparsity must be within [0, 1]")
    rng = random.Random(seed)
    database = AceDatabase("ACe22", ACE_CLASSES)

    gene_names = [f"G{i}" for i in range(genes)]
    for name in gene_names:
        obj = database.new_object("Gene", name)
        obj.add("symbol", name.lower())
        if rng.random() < sparsity:
            obj.add("description", f"gene {name} description")

    seq_names = [f"S{i}" for i in range(sequences)]
    for name in seq_names:
        obj = database.new_object("Sequence", name)
        if rng.random() < sparsity:
            obj.add("dna_length", rng.randrange(1_000, 200_000))
        if rng.random() < sparsity:
            obj.add("method", rng.choice(["shotgun", "walking", "pcr"]))
        if gene_names and rng.random() < sparsity:
            obj.add_ref("gene", "Gene", rng.choice(gene_names))

    for index in range(clones):
        obj = database.new_object("Clone", f"C{index}")
        if rng.random() < sparsity:
            obj.add("map_position", f"22q{rng.randrange(11, 14)}")
        if rng.random() < sparsity:
            obj.add("length", rng.randrange(30_000, 250_000))
        if seq_names and rng.random() < sparsity:
            obj.add_ref("seq", "Sequence", rng.choice(seq_names))
    return database


def sample_acedb() -> AceDatabase:
    """A tiny, fully-populated ACe22DB for tests and the example."""
    database = AceDatabase("ACe22", ACE_CLASSES)
    g1 = database.new_object("Gene", "COMT")
    g1.add("symbol", "comt")
    g1.add("description", "catechol-O-methyltransferase")
    g2 = database.new_object("Gene", "SHANK3")
    g2.add("symbol", "shank3")
    g2.add("description", "SH3 and ankyrin repeat domains 3")

    s1 = database.new_object("Sequence", "AC000050")
    s1.add("dna_length", 40_000)
    s1.add("method", "shotgun")
    s1.add_ref("gene", "Gene", "COMT")
    s2 = database.new_object("Sequence", "AC000036")
    s2.add("dna_length", 35_000)
    s2.add("method", "walking")
    s2.add_ref("gene", "Gene", "SHANK3")
    s3 = database.new_object("Sequence", "AC000099")
    s3.add("dna_length", 10_000)
    s3.add("method", "pcr")  # no gene: sparse

    c1 = database.new_object("Clone", "c22_1")
    c1.add("map_position", "22q11")
    c1.add("length", 120_000)
    c1.add_ref("seq", "Sequence", "AC000050")
    c2 = database.new_object("Clone", "c22_2")
    c2.add("map_position", "22q13")
    c2.add("length", 90_000)
    c2.add_ref("seq", "Sequence", "AC000036")
    c3 = database.new_object("Clone", "c22_3")  # unmapped: sparse
    c3.add_ref("seq", "Sequence", "AC000099")
    return database


#: Default size for parallel-scaling benchmarks: large enough that join
#: work dominates the per-worker fixed costs (fork, re-plan, index
#: prebuild), small enough for a CI smoke run.
PARALLEL_BENCHMARK_SIZE = {"genes": 5000, "sequences": 10_000,
                           "clones": 10_000, "sparsity": 0.9,
                           "seed": 7}


def benchmark_database(scale: float = 1.0,
                       seed: Optional[int] = None) -> AceDatabase:
    """The canonical benchmark ACe22DB, optionally scaled.

    One shared definition of "genome default size" so every benchmark
    (and the floor gate in CI) measures the same workload.
    """
    size = dict(PARALLEL_BENCHMARK_SIZE)
    if seed is not None:
        size["seed"] = seed
    for field in ("genes", "sequences", "clones"):
        size[field] = max(1, int(size[field] * scale))
    return generate_acedb(**size)


def source_instance(database: Optional[AceDatabase] = None) -> Instance:
    """Import an ACeDB database (default: the sample) into the WOL model."""
    return import_acedb(database or sample_acedb())
