"""The paper's running example: US / European cities integration.

Figures 1-3 and Examples 1.1, 2.1-2.3 define three databases:

* **US** (Figure 1): ``CityA`` (name, state) and ``StateA`` (name, capital).
* **Euro** (Figure 2): ``CityE`` (name, is_capital, country) and
  ``CountryE`` (name, language, currency).
* **Target** (Figure 3): ``CityT`` with a variant ``place`` that is either a
  ``StateT`` or a ``CountryT``; both have a ``capital`` attribute pointing
  at the capital ``CityT`` — the Boolean ``is_capital`` of the source is
  re-represented as a reference.

This module provides the schemas (keyed per Example 2.3), the WOL
integration program (clauses (C1)-(C5), (T1)-(T3) plus the symmetric US-side
clauses the paper leaves implicit), concrete sample instances (Example 2.2),
and parametric generators for benchmarking.
"""

from __future__ import annotations

import random

from ..model.instance import Instance, InstanceBuilder
from ..model.keys import KeyedSchema
from ..model.schema import parse_schema
from ..model.values import Oid, Record
from ..lang.ast import Program
from ..lang.parser import parse_program

US_SCHEMA_TEXT = """
schema US {
  class CityA  = (name: str, state: StateA)  key name;
  class StateA = (name: str, capital: CityA) key name;
}
"""

EURO_SCHEMA_TEXT = """
schema Euro {
  class CityE    = (name: str, is_capital: bool, country: CountryE)
                   key name, country.name;
  class CountryE = (name: str, language: str, currency: str) key name;
}
"""

TARGET_SCHEMA_TEXT = """
schema Target {
  class CityT    = (name: str,
                    place: <<euro_city: CountryT, us_city: StateT>>)
                   key name;
  class CountryT = (name: str, language: str, currency: str,
                    capital: CityT) key name;
  class StateT   = (name: str, capital: CityT) key name;
}
"""

#: The integration program.  Clause names follow the paper; the paper's (C2)
#: writes ``X.country`` for the target city where Figure 3 calls the
#: attribute ``place`` — we follow the figure.  Clauses (U1)-(U3) are the
#: US-side analogues of (T1)-(T3), which the paper describes in prose.
PROGRAM_TEXT = """
-- (C1): in the US database, a state's capital city belongs to that state.
constraint C1:
  X.state = Y <= Y in StateA, X = Y.capital;

-- (C2): surrogate key for target cities.  The paper keys a city by its
-- name together with the place (country/state) identity, so two cities may
-- share a name as long as they are somewhere different.
constraint C2:
  X = Mk_CityT(name = N, place = P) <= X in CityT, N = X.name, P = X.place;

-- (C3): surrogate key for target countries.
constraint C3:
  Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name;

-- (C3b): surrogate key for target states.
constraint C3b:
  Y = Mk_StateT(N) <= Y in StateT, N = Y.name;

-- (C4): every European country has a capital city.
constraint C4:
  Y in CityE, Y.country = X, Y.is_capital = true <= X in CountryE;

-- (C5): ...and at most one.
constraint C5:
  X = Y <= X in CityE, Y in CityE, X.country = Y.country,
           X.is_capital = true, Y.is_capital = true;

-- (T1): target countries from European countries.
transformation T1:
  X in CountryT, X.name = E.name, X.language = E.language,
  X.currency = E.currency
  <= E in CountryE;

-- (T2): target cities from European cities.
transformation T2:
  Y in CityT, Y.name = E.name, Y.place = ins_euro_city(X)
  <= E in CityE, X in CountryT, X.name = E.country.name;

-- (T3): the capital attribute of target countries.
transformation T3:
  X.capital = Y
  <= X in CountryT, Y in CityT, Y.place = ins_euro_city(X),
     E in CityE, E.name = Y.name, E.country.name = X.name,
     E.is_capital = true;

-- (U1): target states from US states.
transformation U1:
  X in StateT, X.name = S.name <= S in StateA;

-- (U2): target cities from US cities.
transformation U2:
  Y in CityT, Y.name = A.name, Y.place = ins_us_city(X)
  <= A in CityA, X in StateT, X.name = A.state.name;

-- (U3): the capital attribute of target states.
transformation U3:
  X.capital = Y
  <= X in StateT, Y in CityT, Y.place = ins_us_city(X),
     S in StateA, S.name = X.name, C = S.capital, C.name = Y.name;
"""


def us_schema() -> KeyedSchema:
    """Figure 1 schema, keyed."""
    return parse_schema(US_SCHEMA_TEXT)


def euro_schema() -> KeyedSchema:
    """Figure 2 schema, keyed per Example 2.3."""
    return parse_schema(EURO_SCHEMA_TEXT)


def target_schema() -> KeyedSchema:
    """Figure 3 schema, keyed."""
    return parse_schema(TARGET_SCHEMA_TEXT)


def integration_program() -> Program:
    """The full integration program (constraints + transformations)."""
    classes = (us_schema().schema.class_names()
               + euro_schema().schema.class_names()
               + target_schema().schema.class_names())
    return parse_program(PROGRAM_TEXT, classes=classes)


#: (country, language, currency, capital, other cities)
_EURO_DATA = [
    ("United Kingdom", "English", "sterling", "London", ["Manchester"]),
    ("France", "French", "franc", "Paris", ["Lyon"]),
    ("Germany", "German", "mark", "Berlin", ["Bonn", "Munich"]),
]

#: (state, capital, other cities)
_US_DATA = [
    ("Pennsylvania", "Harrisburg", ["Philadelphia", "Pittsburgh"]),
    ("California", "Sacramento", ["Berkeley"]),
]


def sample_euro_instance() -> Instance:
    """The instance of Example 2.2 (extended with Germany)."""
    builder = InstanceBuilder(euro_schema().schema)
    for name, language, currency, capital, others in _EURO_DATA:
        country = builder.new("CountryE", Record.of(
            name=name, language=language, currency=currency))
        builder.new("CityE", Record.of(
            name=capital, is_capital=True, country=country))
        for city in others:
            builder.new("CityE", Record.of(
                name=city, is_capital=False, country=country))
    return builder.freeze()


def sample_us_instance() -> Instance:
    """A small instance of the Figure 1 schema."""
    builder = InstanceBuilder(us_schema().schema)
    for state_name, capital_name, others in _US_DATA:
        state = Oid.fresh("StateA")
        capital = builder.new("CityA", Record.of(
            name=capital_name, state=state))
        builder.put(state, Record.of(name=state_name, capital=capital))
        for city in others:
            builder.new("CityA", Record.of(name=city, state=state))
    return builder.freeze()


def generate_euro_instance(countries: int, cities_per_country: int,
                           seed: int = 0) -> Instance:
    """A synthetic Euro instance for scaling experiments.

    Every country gets exactly one capital plus ``cities_per_country - 1``
    ordinary cities, so constraints (C4)/(C5) hold by construction.
    """
    if cities_per_country < 1:
        raise ValueError("each country needs at least its capital city")
    rng = random.Random(seed)
    languages = ["English", "French", "German", "Spanish", "Italian"]
    currencies = ["sterling", "franc", "mark", "peseta", "lira"]
    builder = InstanceBuilder(euro_schema().schema)
    for index in range(countries):
        country = builder.new("CountryE", Record.of(
            name=f"Country{index}",
            language=rng.choice(languages),
            currency=rng.choice(currencies)))
        builder.new("CityE", Record.of(
            name=f"Capital{index}", is_capital=True, country=country))
        for city_index in range(cities_per_country - 1):
            builder.new("CityE", Record.of(
                name=f"City{index}_{city_index}", is_capital=False,
                country=country))
    return builder.freeze()


def generate_us_instance(states: int, cities_per_state: int,
                         seed: int = 0) -> Instance:
    """A synthetic US instance for scaling experiments."""
    if cities_per_state < 1:
        raise ValueError("each state needs at least its capital city")
    builder = InstanceBuilder(us_schema().schema)
    for index in range(states):
        state = Oid.fresh("StateA")
        capital = builder.new("CityA", Record.of(
            name=f"StCapital{index}", state=state))
        builder.put(state, Record.of(name=f"State{index}", capital=capital))
        for city_index in range(cities_per_state - 1):
            builder.new("CityA", Record.of(
                name=f"StCity{index}_{city_index}", state=state))
    return builder.freeze()
