"""Synthetic WOL programs for compile-time experiments (E3, E4).

Two program families:

* :func:`wide_program` — one target class whose ``width`` attributes are
  described by separate partial clauses (the paper's motivation for
  partial rules: "tens of fields is common").  Normalisation merges them
  into one complete clause; re-normalising the already-normal output is
  the paper's baseline for the ~6x compile-time comparison (Section 6).

* :func:`variant_split_program` — a target class with ``width`` attribute
  groups, each described per variant choice.  Combining the partial
  clauses multiplies the choices: without constraint knowledge the
  normal form has ``choices ** width`` clauses (the paper's "could be
  exponential in the size of the original program"); with constraints
  the incompatible combinations are unsatisfiable and pruned, leaving
  ``choices`` clauses.
"""

from __future__ import annotations

from typing import List, Tuple

from ..lang.ast import Program
from ..lang.parser import parse_program
from ..model.instance import Instance, InstanceBuilder
from ..model.keys import KeyedSchema
from ..model.schema import parse_schema
from ..model.values import Record, Variant


# ----------------------------------------------------------------------
# Wide-record programs (E3)
# ----------------------------------------------------------------------

def wide_schemas(width: int) -> Tuple[KeyedSchema, KeyedSchema]:
    """Source/target schemas with a ``width``-attribute record class."""
    attrs = ", ".join(f"a{i}: str" for i in range(width))
    source = parse_schema(
        f"schema WideSrc {{ class Item = (name: str, {attrs}) key name; }}")
    target = parse_schema(
        f"schema WideTgt {{ class Out = (name: str, {attrs}) key name; }}")
    return source, target


def wide_program_text(width: int) -> str:
    """Program text for :func:`wide_program` (also fed to the linter)."""
    clauses: List[str] = [
        "constraint KOut: X = Mk_Out(N) <= X in Out, N = X.name;",
        "transformation P0: X in Out, X.name = N"
        " <= I in Item, N = I.name;",
    ]
    for index in range(width):
        clauses.append(
            f"transformation A{index}: X.a{index} = V"
            f" <= X in Out, I in Item, X.name = I.name, V = I.a{index};")
    return "\n".join(clauses)


def wide_program(width: int) -> Program:
    """One producer plus one partial clause per attribute.

    The producer only establishes the object and its key; each attribute
    arrives from its own clause — the step-wise style the paper argues
    partial rules enable.
    """
    source, target = wide_schemas(width)
    classes = source.schema.class_names() + target.schema.class_names()
    return parse_program(wide_program_text(width), classes=classes)


def wide_instance(width: int, items: int) -> Instance:
    source, _ = wide_schemas(width)
    builder = InstanceBuilder(source.schema)
    for index in range(items):
        fields = {"name": f"item{index}"}
        fields.update({f"a{i}": f"v{index}_{i}" for i in range(width)})
        builder.new("Item", Record.of(**fields))
    return builder.freeze()


# ----------------------------------------------------------------------
# Variant-split programs (E4)
# ----------------------------------------------------------------------

def variant_schemas(width: int,
                    choices: int) -> Tuple[KeyedSchema, KeyedSchema]:
    """Source items tagged with a variant; a target with ``width``
    attributes plus the tag."""
    tag_choices = ", ".join(f"c{j}: unit" for j in range(choices))
    attrs = ", ".join(f"a{i}: str" for i in range(width))
    source = parse_schema(
        f"schema VarSrc {{ class Item = (name: str, "
        f"tag: <<{tag_choices}>>, {attrs}) key name; }}")
    target = parse_schema(
        f"schema VarTgt {{ class Out = (name: str, "
        f"tag: <<{tag_choices}>>, {attrs}) key name; }}")
    return source, target


def variant_split_program_text(width: int, choices: int = 2) -> str:
    """Program text for :func:`variant_split_program` (and the linter)."""
    clauses: List[str] = [
        "constraint KOut: X = Mk_Out(N) <= X in Out, N = X.name;",
    ]
    for j in range(choices):
        clauses.append(
            f"transformation P{j}: X in Out, X.name = N,"
            f" X.tag = ins_c{j}()"
            f" <= I in Item, N = I.name, I.tag = ins_c{j}();")
    for i in range(width):
        for j in range(choices):
            clauses.append(
                f"transformation A{i}_{j}: X.a{i} = V"
                f" <= X in Out, X.tag = ins_c{j}(), I in Item,"
                f" X.name = I.name, I.tag = ins_c{j}(), V = I.a{i};")
    return "\n".join(clauses)


def variant_split_program(width: int, choices: int = 2) -> Program:
    """Producers per variant choice; assigners per (attribute, choice).

    Combination without constraints multiplies: every producer accepts
    every assigner candidate for every attribute, giving
    ``choices ** width`` merged clauses per producer family.  With
    constraints, an assigner whose tag choice differs from the
    producer's is unsatisfiable after merging, so only the matching
    assigners survive: ``choices`` clauses total.
    """
    source, target = variant_schemas(width, choices)
    classes = source.schema.class_names() + target.schema.class_names()
    return parse_program(variant_split_program_text(width, choices),
                         classes=classes)


def variant_instance(width: int, choices: int, items: int) -> Instance:
    source, _ = variant_schemas(width, choices)
    builder = InstanceBuilder(source.schema)
    for index in range(items):
        fields = {"name": f"item{index}",
                  "tag": Variant(f"c{index % choices}")}
        fields.update({f"a{i}": f"v{index}_{i}" for i in range(width)})
        builder.new("Item", Record.of(**fields))
    return builder.freeze()
