"""The paper's schema-evolution example (Figures 4-5, Example 4.2).

The source schema has one class ``Person`` with a variant ``sex`` and a
``spouse`` reference.  The evolved schema splits ``Person`` into ``Male``
and ``Female`` and reifies the ``spouse`` attribute into a ``Marriage``
class.  The transformation is the paper's (T6)-(T8); it is information
preserving only on sources satisfying the constraints (C9)-(C11), which is
the core of Section 4.3's argument.
"""

from __future__ import annotations

from typing import List, Tuple

from ..lang.ast import Program
from ..lang.parser import parse_program
from ..model.instance import Instance, InstanceBuilder
from ..model.keys import KeyedSchema
from ..model.schema import parse_schema
from ..model.values import Oid, Record, Variant

PERSON_SCHEMA_TEXT = """
schema People {
  class Person = (name: str,
                  sex: <<male: unit, female: unit>>,
                  spouse: Person) key name;
}
"""

#: The evolved schema.  Marriage cannot carry a schema-level (value-based)
#: key because its identity is the pair of spouses — object identities —
#: so its key clause is written by hand in the program below.
EVOLVED_SCHEMA_TEXT = """
schema Evolved {
  class Male     = (name: str) key name;
  class Female   = (name: str) key name;
  class Marriage = (husband: Male, wife: Female);
}
"""

PROGRAM_TEXT = """
-- (T6): men become Male objects.
transformation T6:
  X in Male, X.name = N
  <= Y in Person, Y.name = N, Y.sex = ins_male();

-- (T7): women become Female objects.
transformation T7:
  X in Female, X.name = N
  <= Y in Person, Y.name = N, Y.sex = ins_female();

-- (T8): spouse links become Marriage objects.
transformation T8:
  M in Marriage, M.husband = X, M.wife = Y
  <= X in Male, Y in Female, Z in Person, W in Person,
     X.name = Z.name, Y.name = W.name, W = Z.spouse;

-- Key clause for Marriage: identified by the married pair.
constraint KeyMarriage:
  M = Mk_Marriage(husband = H, wife = W)
  <= M in Marriage, H = M.husband, W = M.wife;

-- (C9): the spouse of a woman is a man.
constraint C9:
  X.sex = ins_male()
  <= Y in Person, Y.sex = ins_female(), X = Y.spouse;

-- (C10): the spouse of a man is a woman.
constraint C10:
  Y.sex = ins_female()
  <= X in Person, X.sex = ins_male(), Y = X.spouse;

-- (C11): spouse is symmetric.
constraint C11:
  Y = X.spouse <= Y in Person, X = Y.spouse;
"""


def person_schema() -> KeyedSchema:
    """Figure 4 schema, keyed by name."""
    return parse_schema(PERSON_SCHEMA_TEXT)


def evolved_schema() -> KeyedSchema:
    """Figure 5 schema."""
    return parse_schema(EVOLVED_SCHEMA_TEXT)


def evolution_program() -> Program:
    """(T6)-(T8) plus the marriage key and constraints (C9)-(C11)."""
    classes = (person_schema().schema.class_names()
               + evolved_schema().schema.class_names())
    return parse_program(PROGRAM_TEXT, classes=classes)


def couples_instance(couples: List[Tuple[str, str]]) -> Instance:
    """A well-constrained instance: each pair (man, woman) married both
    ways, satisfying (C9)-(C11)."""
    builder = InstanceBuilder(person_schema().schema)
    for man_name, woman_name in couples:
        man = Oid.fresh("Person")
        woman = Oid.fresh("Person")
        builder.put(man, Record.of(
            name=man_name, sex=Variant("male"), spouse=woman))
        builder.put(woman, Record.of(
            name=woman_name, sex=Variant("female"), spouse=man))
    return builder.freeze()


def sample_instance() -> Instance:
    return couples_instance(
        [("Adam", "Beth"), ("Carl", "Dana"), ("Evan", "Faye")])


def generate_instance(couples: int, seed: int = 0) -> Instance:
    """``couples`` married pairs with unique names."""
    return couples_instance(
        [(f"M{i}", f"F{i}") for i in range(couples)])


def asymmetric_instance() -> Instance:
    """An instance violating (C11): Ann's spouse is Bob, Bob's is Cara.

    The evolved schema cannot represent this asymmetry — transforming it
    loses information (Section 4.3's point).
    """
    builder = InstanceBuilder(person_schema().schema)
    ann, bob, cara = (Oid.fresh("Person") for _ in range(3))
    builder.put(ann, Record.of(
        name="Ann", sex=Variant("female"), spouse=bob))
    builder.put(bob, Record.of(
        name="Bob", sex=Variant("male"), spouse=cara))
    builder.put(cara, Record.of(
        name="Cara", sex=Variant("female"), spouse=bob))
    return builder.freeze()


def symmetric_variant_of_asymmetric() -> Instance:
    """Bob married to Cara both ways, Ann married... also to Bob one way.

    Together with :func:`asymmetric_instance` this gives two *distinct*
    sources with the same (T6)-(T8) image: the transformation is not
    injective on unconstrained sources.
    """
    builder = InstanceBuilder(person_schema().schema)
    ann, bob, cara = (Oid.fresh("Person") for _ in range(3))
    builder.put(ann, Record.of(
        name="Ann", sex=Variant("female"), spouse=ann))
    builder.put(bob, Record.of(
        name="Bob", sex=Variant("male"), spouse=cara))
    builder.put(cara, Record.of(
        name="Cara", sex=Variant("female"), spouse=bob))
    return builder.freeze()
