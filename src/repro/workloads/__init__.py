"""Workloads: the paper's examples plus synthetic generators."""

from . import cities, genome, persons, relibase, synthetic

__all__ = ["cities", "genome", "persons", "relibase", "synthetic"]
