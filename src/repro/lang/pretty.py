"""Pretty printing of WOL programs.

``str(term)`` / ``str(atom)`` / ``str(clause)`` already render valid
concrete syntax; this module adds layout for whole programs (wrapping long
clauses, aligning the implication arrow) and a :func:`roundtrip` helper used
heavily by property-based tests: pretty-printed output re-parses to an
equal AST.
"""

from __future__ import annotations

from typing import List

from .ast import Clause, Program


def format_atoms(atoms, indent: str = "  ", width: int = 72) -> str:
    """Comma-separated atoms, wrapped at ``width`` columns."""
    parts = [str(atom) for atom in atoms]
    lines: List[str] = []
    current = ""
    for index, part in enumerate(parts):
        candidate = part if not current else f"{current}, {part}"
        if current and len(indent) + len(candidate) > width:
            lines.append(current + ",")
            current = part
        else:
            current = candidate
    if current:
        lines.append(current)
    return ("\n" + indent).join(lines)


def format_clause(clause: Clause, width: int = 72) -> str:
    """Render one clause with the head and body on separate lines."""
    prefix = ""
    if clause.kind is not None:
        prefix += clause.kind + " "
    if clause.name is not None:
        prefix += clause.name + ":"
    lines: List[str] = []
    if prefix:
        lines.append(prefix)
    head = format_atoms(clause.head, indent="  ", width=width)
    if not clause.body:
        lines.append(f"  {head};")
        return "\n".join(lines)
    body = format_atoms(clause.body, indent="     ", width=width)
    lines.append(f"  {head}")
    lines.append(f"  <= {body};")
    return "\n".join(lines)


def format_program(program: Program, width: int = 72) -> str:
    """Render a whole program, one blank line between clauses."""
    return "\n\n".join(format_clause(clause, width) for clause in program)


def roundtrip(program: Program) -> Program:
    """Parse the pretty-printed program back (for tests)."""
    from .parser import parse_program
    return parse_program(format_program(program))
