"""Recursive-descent parser for the concrete WOL syntax.

Grammar (tokens from :mod:`repro.lang.lexer`)::

    program  := clause*
    clause   := [kind] [label ':'] atoms ['<=' atoms] ';'
    kind     := 'transformation' | 'constraint'
    atoms    := atom (',' atom)*
    atom     := term ( '=' term | '!=' term | '<>' term
                     | '<' term | '=<' term | '>' term | '>=' term
                     | 'in' term )
    term     := primary ('.' IDENT)*
    primary  := '(' record_or_group ')' | STRING | NUMBER
              | 'true' | 'false'
              | 'Mk_' ClassName '(' args ')'
              | 'ins_' label '(' [term] ')'
              | IDENT

``X in Foo`` with a bare identifier on the right is ambiguous between class
membership and membership of a set held in variable ``Foo``.  The parser
produces a class-membership atom and :func:`resolve_memberships` fixes the
choice once the class names of the participating schemas are known —
mirroring the paper, which shares one namespace for variables and classes.

``>`` and ``>=`` are parsed and normalised to ``<`` / ``=<`` with the
operands swapped, so downstream passes only see two order atoms.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from .ast import (Atom, Clause, Const, EqAtom, InAtom, KIND_CONSTRAINT,
                  KIND_TRANSFORMATION, LeqAtom, LtAtom, MemberAtom, NeqAtom,
                  Program, Proj, RecordTerm, SkolemTerm, Term, UNIT_CONST,
                  Var, VariantTerm)
from .lexer import EOF, IDENT, NUMBER, STRING, Token, tokenize


class ParseError(Exception):
    """Raised on syntactically invalid WOL input."""


def parse_program(source: str,
                  classes: Optional[Iterable[str]] = None) -> Program:
    """Parse a WOL program.

    When ``classes`` is given, bare-identifier memberships are resolved
    against it (see :func:`resolve_memberships`).
    """
    parser = _Parser(tokenize(source))
    clauses = []
    while not parser.at_end():
        clauses.append(parser.clause())
    program = Program(tuple(clauses))
    if classes is not None:
        program = resolve_memberships(program, classes)
    return program


def parse_clause(source: str,
                 classes: Optional[Iterable[str]] = None) -> Clause:
    """Parse a single clause (must consume all input)."""
    parser = _Parser(tokenize(source))
    clause = parser.clause()
    if not parser.at_end():
        raise ParseError(
            f"trailing input after clause: {parser.peek()}")
    if classes is not None:
        clause = _resolve_clause(clause, frozenset(classes))
    return clause


def parse_term(source: str) -> Term:
    """Parse a single term (must consume all input)."""
    parser = _Parser(tokenize(source))
    term = parser.term()
    if not parser.at_end():
        raise ParseError(f"trailing input after term: {parser.peek()}")
    return term


def parse_atom(source: str,
               classes: Optional[Iterable[str]] = None) -> Atom:
    """Parse a single atom (must consume all input)."""
    parser = _Parser(tokenize(source))
    atom = parser.atom()
    if not parser.at_end():
        raise ParseError(f"trailing input after atom: {parser.peek()}")
    if classes is not None:
        atom = _resolve_atom(atom, frozenset(classes))
    return atom


def resolve_memberships(program: Program,
                        classes: Iterable[str]) -> Program:
    """Resolve ``X in Name`` atoms: class membership when ``Name`` is a
    known class, set membership of the variable ``Name`` otherwise."""
    known = frozenset(classes)
    return Program(tuple(_resolve_clause(c, known) for c in program))


def _resolve_clause(clause: Clause, known: frozenset) -> Clause:
    return Clause(
        tuple(_resolve_atom(a, known) for a in clause.head),
        tuple(_resolve_atom(a, known) for a in clause.body),
        name=clause.name, kind=clause.kind)


def _resolve_atom(atom: Atom, known: frozenset) -> Atom:
    if isinstance(atom, MemberAtom) and atom.class_name not in known:
        return InAtom(atom.element, Var(atom.class_name))
    return atom


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    def peek(self, ahead: int = 0) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != EOF:
            self.pos += 1
        return token

    def at_end(self) -> bool:
        return self.peek().kind == EOF

    def eat_symbol(self, text: str) -> bool:
        if self.peek().is_symbol(text):
            self.next()
            return True
        return False

    def expect_symbol(self, text: str) -> None:
        token = self.peek()
        if not self.eat_symbol(text):
            raise ParseError(
                f"expected {text!r}, found {token} "
                f"at line {token.line}, column {token.column}")

    # ------------------------------------------------------------------
    # Grammar
    # ------------------------------------------------------------------
    def clause(self) -> Clause:
        kind = None
        token = self.peek()
        if token.is_keyword(KIND_TRANSFORMATION):
            kind = KIND_TRANSFORMATION
            self.next()
        elif token.is_keyword(KIND_CONSTRAINT):
            kind = KIND_CONSTRAINT
            self.next()

        name = None
        if (self.peek().kind == IDENT
                and self.peek(1).is_symbol(":")):
            name = self.next().text
            self.next()  # ':'

        head = self.atom_list()
        body: Tuple[Atom, ...] = ()
        if self.eat_symbol("<="):
            body = self.atom_list()
        self.expect_symbol(";")
        return Clause(tuple(head), tuple(body), name=name, kind=kind)

    def atom_list(self) -> List[Atom]:
        atoms = [self.atom()]
        while self.eat_symbol(","):
            atoms.append(self.atom())
        return atoms

    def atom(self) -> Atom:
        left = self.term()
        token = self.peek()
        if token.is_keyword("in"):
            self.next()
            right = self.term()
            if isinstance(right, Var):
                # Possibly a class; resolve_memberships decides later.
                return MemberAtom(left, right.name)
            return InAtom(left, right)
        if token.is_symbol("="):
            self.next()
            return EqAtom(left, self.term())
        if token.is_symbol("!=") or token.is_symbol("<>"):
            self.next()
            return NeqAtom(left, self.term())
        if token.is_symbol("<"):
            self.next()
            return LtAtom(left, self.term())
        if token.is_symbol("=<"):
            self.next()
            return LeqAtom(left, self.term())
        if token.is_symbol(">"):
            self.next()
            return LtAtom(self.term_after(), left)
        if token.is_symbol(">="):
            self.next()
            return LeqAtom(self.term_after(), left)
        raise ParseError(
            f"expected an atom operator ('=', 'in', '!=', '<', '=<', "
            f"'>', '>='), found {token} at line {token.line}, "
            f"column {token.column}")

    def term_after(self) -> Term:
        return self.term()

    def term(self) -> Term:
        term = self.primary()
        while self.peek().is_symbol("."):
            # Projection: the attribute name follows the dot.
            self.next()
            attr = self.ident("attribute name")
            term = Proj(term, attr)
        return term

    def primary(self) -> Term:
        token = self.peek()
        if token.is_symbol("("):
            return self.record_or_unit()
        if token.kind == STRING:
            self.next()
            return Const(token.text)
        if token.kind == NUMBER:
            self.next()
            text = token.text
            if "." in text:
                return Const(float(text))
            return Const(int(text))
        if token.is_keyword("true"):
            self.next()
            return Const(True)
        if token.is_keyword("false"):
            self.next()
            return Const(False)
        if token.kind == IDENT:
            if token.text.startswith("Mk_") and len(token.text) > 3:
                return self.skolem()
            if token.text.startswith("ins_") and len(token.text) > 4:
                return self.variant()
            if token.text in ("in",):
                raise ParseError(
                    f"unexpected keyword {token} at line {token.line}, "
                    f"column {token.column}")
            self.next()
            return Var(token.text)
        raise ParseError(
            f"expected a term, found {token} at line {token.line}, "
            f"column {token.column}")

    def record_or_unit(self) -> Term:
        """Parse ``( ... )``: unit, record construction, or a group."""
        self.expect_symbol("(")
        if self.eat_symbol(")"):
            return UNIT_CONST
        # Record construction iff we see 'ident =' (and not 'ident ==...').
        if (self.peek().kind == IDENT and self.peek(1).is_symbol("=")):
            fields = [self.record_field()]
            while self.eat_symbol(","):
                fields.append(self.record_field())
            self.expect_symbol(")")
            return RecordTerm(tuple(fields))
        term = self.term()
        self.expect_symbol(")")
        return term

    def record_field(self) -> Tuple[str, Term]:
        label = self.ident("record label")
        self.expect_symbol("=")
        return label, self.term()

    def skolem(self) -> Term:
        token = self.next()
        class_name = token.text[len("Mk_"):]
        self.expect_symbol("(")
        args: List[Tuple[Optional[str], Term]] = []
        if not self.peek().is_symbol(")"):
            named = (self.peek().kind == IDENT
                     and self.peek(1).is_symbol("="))
            while True:
                if named:
                    label = self.ident("argument label")
                    self.expect_symbol("=")
                    args.append((label, self.term()))
                else:
                    args.append((None, self.term()))
                if not self.eat_symbol(","):
                    break
        self.expect_symbol(")")
        return SkolemTerm(class_name, tuple(args))

    def variant(self) -> Term:
        token = self.next()
        label = token.text[len("ins_"):]
        self.expect_symbol("(")
        if self.eat_symbol(")"):
            return VariantTerm(label)
        payload = self.term()
        self.expect_symbol(")")
        return VariantTerm(label, payload)

    def ident(self, what: str) -> str:
        token = self.peek()
        if token.kind != IDENT:
            raise ParseError(
                f"expected {what}, found {token} at line {token.line}, "
                f"column {token.column}")
        self.next()
        return token.text
