"""Tokenizer for the concrete WOL syntax.

The concrete syntax follows the paper's notation as closely as ASCII allows:

* implication is ``<=`` (the paper's left double arrow),
* less-or-equal is therefore written ``=<`` (Prolog style) to stay
  unambiguous; ``>=`` and ``>`` are accepted and normalised by the parser,
* variant injection is ``ins_<label>(payload)``,
* Skolem functions are ``Mk_<ClassName>(args)``,
* comments run from ``--`` or ``#`` to end of line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


class LexError(Exception):
    """Raised on unrecognisable input, with line/column context."""


#: Token kinds.
IDENT = "IDENT"
NUMBER = "NUMBER"
STRING = "STRING"
SYMBOL = "SYMBOL"
EOF = "EOF"

KEYWORDS = frozenset({"in", "true", "false", "transformation", "constraint"})

# Longest-match-first symbol table.
_SYMBOLS = ("<=", "=<", ">=", "!=", "<>", "(", ")", ",", ";", ":", ".",
            "=", "<", ">")


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int
    column: int

    def is_symbol(self, text: str) -> bool:
        return self.kind == SYMBOL and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind == IDENT and self.text == text

    def __str__(self) -> str:
        if self.kind == EOF:
            return "end of input"
        return f"{self.text!r}"


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``; raises :class:`LexError` on bad input."""
    tokens: List[Token] = []
    line = 1
    column = 1
    pos = 0
    length = len(source)

    def advance(count: int) -> None:
        nonlocal pos, line, column
        for _ in range(count):
            if pos < length and source[pos] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            pos += 1

    while pos < length:
        ch = source[pos]
        if ch.isspace():
            advance(1)
            continue
        if source.startswith("--", pos) or ch == "#":
            while pos < length and source[pos] != "\n":
                advance(1)
            continue
        if ch == '"':
            token, consumed = _read_string(source, pos, line, column)
            tokens.append(token)
            advance(consumed)
            continue
        if ch.isdigit() or (ch == "-" and pos + 1 < length
                            and source[pos + 1].isdigit()):
            token = _read_number(source, pos, line, column)
            tokens.append(token)
            advance(len(token.text))
            continue
        if ch.isalpha() or ch == "_":
            start = pos
            end = pos
            while end < length and (source[end].isalnum()
                                    or source[end] == "_"):
                end += 1
            text = source[start:end]
            tokens.append(Token(IDENT, text, line, column))
            advance(end - start)
            continue
        for symbol in _SYMBOLS:
            if source.startswith(symbol, pos):
                tokens.append(Token(SYMBOL, symbol, line, column))
                advance(len(symbol))
                break
        else:
            raise LexError(
                f"unexpected character {ch!r} at line {line}, column {column}")
    tokens.append(Token(EOF, "", line, column))
    return tokens


def _read_string(source: str, pos: int, line: int,
                 column: int) -> Tuple[Token, int]:
    """Read a double-quoted string with ``\\"`` and ``\\\\`` escapes.

    Returns the token and the number of source characters consumed
    (which differs from the token text length when escapes occur).
    """
    out: List[str] = []
    i = pos + 1
    while i < len(source):
        ch = source[i]
        if ch == "\\" and i + 1 < len(source) and source[i + 1] in '"\\':
            out.append(source[i + 1])
            i += 2
            continue
        if ch == '"':
            return Token(STRING, "".join(out), line, column), i + 1 - pos
        if ch == "\n":
            break
        out.append(ch)
        i += 1
    raise LexError(f"unterminated string at line {line}, column {column}")


def _read_number(source: str, pos: int, line: int, column: int) -> Token:
    end = pos
    if source[end] == "-":
        end += 1
    while end < len(source) and source[end].isdigit():
        end += 1
    if (end < len(source) and source[end] == "."
            and end + 1 < len(source) and source[end + 1].isdigit()):
        end += 1
        while end < len(source) and source[end].isdigit():
            end += 1
    return Token(NUMBER, source[pos:end], line, column)
