"""The WOL language (paper Section 3): AST, parser, static checks."""

from .ast import (AstError, Atom, Clause, Const, EqAtom, InAtom,
                  KIND_CONSTRAINT, KIND_TRANSFORMATION, LeqAtom, LtAtom,
                  MemberAtom, NeqAtom, Program, Proj, RecordTerm, SkolemTerm,
                  Term, UNIT_CONST, Var, VariantTerm, fresh_var_factory)
from .lexer import LexError, tokenize
from .parser import (ParseError, parse_atom, parse_clause, parse_program,
                     parse_term, resolve_memberships)
from .pretty import format_clause, format_program
from .range_restriction import (RangeRestrictionError,
                                check_program_range_restriction,
                                check_range_restriction,
                                is_range_restricted,
                                unrestricted_variables)
from .typecheck import (TypeReport, TypecheckError, check_clause,
                        check_program)

__all__ = [
    "AstError", "Atom", "Clause", "Const", "EqAtom", "InAtom",
    "KIND_CONSTRAINT", "KIND_TRANSFORMATION", "LeqAtom", "LtAtom",
    "MemberAtom", "NeqAtom", "Program", "Proj", "RecordTerm", "SkolemTerm",
    "Term", "UNIT_CONST", "Var", "VariantTerm", "fresh_var_factory",
    "LexError", "tokenize",
    "ParseError", "parse_atom", "parse_clause", "parse_program",
    "parse_term", "resolve_memberships",
    "format_clause", "format_program",
    "RangeRestrictionError", "check_program_range_restriction",
    "check_range_restriction", "is_range_restricted",
    "unrestricted_variables",
    "TypeReport", "TypecheckError", "check_clause", "check_program",
]
