"""Well-typedness of WOL clauses (paper Section 3.1).

A clause is *well-typed* iff types can be assigned to all its variables such
that every atom makes sense — e.g. ``X < Y.population`` forces ``X`` to be
an integer, which clashes with ``X in CityA`` forcing ``X`` to be an object
of class ``CityA``.

The checker is a unification-based inference over the WOL type language
extended with type variables.  Projections and variant injections generate
*deferred* constraints that are discharged once the subject/expected type is
known; inference iterates to a fixpoint.  A clause type-checks when all
constraints discharge without clash.  (Variables whose types stay unresolved
are reported only by :func:`infer_clause_types` with ``require_ground``,
since partial clauses legitimately leave some head structure open.)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..model.schema import Schema, SchemaError
from ..model.types import (
    BOOL, FLOAT, INT, STR, BaseType, ClassType, ListType, RecordType, SetType,
    Type, VariantType)
from ..model.values import UnitValue
from .ast import (Atom, Clause, Const, EqAtom, InAtom, LeqAtom, LtAtom,
                  MemberAtom, NeqAtom, Proj, RecordTerm, SkolemTerm, Term,
                  Var, VariantTerm)


class TypecheckError(Exception):
    """Raised when a clause cannot be well-typed."""


@dataclass(frozen=True)
class TypeVar(Type):
    """A type variable used during inference (never escapes this module
    except inside :class:`TypeReport` for unresolved variables)."""

    index: int

    def is_ground(self) -> bool:
        return False

    def __str__(self) -> str:
        return f"?t{self.index}"


@dataclass
class TypeReport:
    """Result of type inference over a clause.

    ``obligations`` are the deferred constraints inference could not
    discharge (projection subjects, variant injections and memberships
    whose types never resolved).  They are not errors — partial clauses
    legitimately leave head structure open — but the static analyzer
    surfaces them as warnings (``WOL103``) since an undischarged
    obligation can fail at runtime.
    """

    variable_types: Dict[str, Type]
    obligations: Tuple[str, ...] = ()

    def unresolved_obligations(self) -> List[str]:
        return list(self.obligations)

    def type_of(self, name: str) -> Type:
        try:
            return self.variable_types[name]
        except KeyError:
            raise TypecheckError(
                f"no type recorded for variable {name!r}") from None

    def is_ground(self, name: str) -> bool:
        ty = self.variable_types.get(name)
        return ty is not None and ty.is_ground()


class _Env:
    """Union-find style substitution plus deferred structural constraints."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._counter = itertools.count(1)
        self._subst: Dict[int, Type] = {}
        # Deferred obligations: (subject type, attr, result type, context)
        self._projections: List[Tuple[Type, str, Type, str]] = []
        # Deferred variant injections: (variant type, label, payload, ctx)
        self._variants: List[Tuple[Type, str, Type, str]] = []
        # Deferred memberships: (collection type, element type, context) —
        # the collection must resolve to a set OR a list of the element.
        self._memberships: List[Tuple[Type, Type, str]] = []

    def fresh(self) -> TypeVar:
        return TypeVar(next(self._counter))

    # -- substitution --------------------------------------------------
    def resolve(self, ty: Type) -> Type:
        """Follow the substitution at the root only."""
        while isinstance(ty, TypeVar) and ty.index in self._subst:
            ty = self._subst[ty.index]
        return ty

    def deep_resolve(self, ty: Type) -> Type:
        ty = self.resolve(ty)
        if isinstance(ty, SetType):
            return SetType(self.deep_resolve(ty.element))
        if isinstance(ty, ListType):
            return ListType(self.deep_resolve(ty.element))
        if isinstance(ty, RecordType):
            return RecordType(tuple(
                (label, self.deep_resolve(fty)) for label, fty in ty.fields))
        if isinstance(ty, VariantType):
            return VariantType(tuple(
                (label, self.deep_resolve(cty)) for label, cty in ty.choices))
        return ty

    def _occurs(self, var: TypeVar, ty: Type) -> bool:
        ty = self.resolve(ty)
        if isinstance(ty, TypeVar):
            return ty.index == var.index
        return any(self._occurs(var, child) for child in ty.children())

    def unify(self, left: Type, right: Type, context: str) -> None:
        left = self.resolve(left)
        right = self.resolve(right)
        if left == right:
            return
        if isinstance(left, TypeVar):
            if self._occurs(left, right):
                raise TypecheckError(
                    f"{context}: recursive type constraint on {left}")
            self._subst[left.index] = right
            return
        if isinstance(right, TypeVar):
            self.unify(right, left, context)
            return
        if isinstance(left, SetType) and isinstance(right, SetType):
            self.unify(left.element, right.element, context)
            return
        if isinstance(left, ListType) and isinstance(right, ListType):
            self.unify(left.element, right.element, context)
            return
        if isinstance(left, RecordType) and isinstance(right, RecordType):
            if left.labels() != right.labels():
                raise TypecheckError(
                    f"{context}: record types {left} and {right} have "
                    f"different fields")
            for label in left.labels():
                self.unify(left.field_type(label), right.field_type(label),
                           context)
            return
        if isinstance(left, VariantType) and isinstance(right, VariantType):
            if left.labels() != right.labels():
                raise TypecheckError(
                    f"{context}: variant types {left} and {right} have "
                    f"different choices")
            for label in left.labels():
                self.unify(left.choice_type(label),
                           right.choice_type(label), context)
            return
        raise TypecheckError(
            f"{context}: cannot unify {left} with {right}")

    # -- deferred constraints ------------------------------------------
    def defer_projection(self, subject: Type, attr: str, result: Type,
                         context: str) -> None:
        self._projections.append((subject, attr, result, context))

    def defer_variant(self, variant_ty: Type, label: str, payload: Type,
                      context: str) -> None:
        self._variants.append((variant_ty, label, payload, context))

    def defer_membership(self, collection: Type, element: Type,
                         context: str) -> None:
        self._memberships.append((collection, element, context))

    def run_deferred(self) -> None:
        """Discharge deferred constraints to a fixpoint."""
        for _ in range(1000):
            progressed = False
            pending_proj = []
            for subject, attr, result, context in self._projections:
                resolved = self.resolve(subject)
                if isinstance(resolved, TypeVar):
                    pending_proj.append((subject, attr, result, context))
                    continue
                self.unify(result, self._project(resolved, attr, context),
                           context)
                progressed = True
            self._projections = pending_proj

            pending_var = []
            for variant_ty, label, payload, context in self._variants:
                resolved = self.resolve(variant_ty)
                if isinstance(resolved, TypeVar):
                    pending_var.append((variant_ty, label, payload, context))
                    continue
                if not isinstance(resolved, VariantType):
                    raise TypecheckError(
                        f"{context}: ins_{label}(...) used where the "
                        f"expected type is {resolved}, not a variant")
                if not resolved.has_choice(label):
                    raise TypecheckError(
                        f"{context}: variant type {resolved} has no "
                        f"choice {label!r}")
                self.unify(payload, resolved.choice_type(label), context)
                progressed = True
            self._variants = pending_var

            pending_member = []
            for collection, element, context in self._memberships:
                resolved = self.resolve(collection)
                if isinstance(resolved, TypeVar):
                    pending_member.append((collection, element, context))
                    continue
                if isinstance(resolved, (SetType, ListType)):
                    self.unify(element, resolved.element, context)
                    progressed = True
                    continue
                raise TypecheckError(
                    f"{context}: membership in non-collection type "
                    f"{resolved}")
            self._memberships = pending_member

            if not progressed:
                return
        raise TypecheckError("type inference did not converge")

    def unresolved_obligations(self) -> List[str]:
        out = [f"{context}: cannot resolve type of subject of .{attr}"
               for _, attr, _, context in self._projections]
        out += [f"{context}: cannot resolve expected variant type of "
                f"ins_{label}(...)"
                for _, label, _, context in self._variants]
        out += [f"{context}: cannot resolve collection type of membership"
                for _, _, context in self._memberships]
        return out

    def _project(self, subject: Type, attr: str, context: str) -> Type:
        """Type of ``subject.attr``, dereferencing class types."""
        if isinstance(subject, ClassType):
            try:
                subject = self.schema.class_type(subject.name)
            except SchemaError as exc:
                raise TypecheckError(f"{context}: {exc}") from exc
        if not isinstance(subject, RecordType):
            raise TypecheckError(
                f"{context}: cannot project .{attr} from type {subject}")
        if not subject.has_field(attr):
            raise TypecheckError(
                f"{context}: type {subject} has no attribute {attr!r}")
        return subject.field_type(attr)


def _const_type(value) -> Type:
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT
    if isinstance(value, float):
        return FLOAT
    if isinstance(value, str):
        return STR
    if isinstance(value, UnitValue):
        return BaseType("unit")
    raise TypecheckError(f"constant {value!r} has no base type")


class _ClauseChecker:
    def __init__(self, schema: Schema, clause: Clause) -> None:
        self.schema = schema
        self.clause = clause
        self.env = _Env(schema)
        self.var_types: Dict[str, TypeVar] = {}

    def var_type(self, name: str) -> Type:
        if name not in self.var_types:
            self.var_types[name] = self.env.fresh()
        return self.var_types[name]

    def term_type(self, term: Term, context: str) -> Type:
        if isinstance(term, Var):
            return self.var_type(term.name)
        if isinstance(term, Const):
            return _const_type(term.value)
        if isinstance(term, Proj):
            subject = self.term_type(term.subject, context)
            result = self.env.fresh()
            self.env.defer_projection(subject, term.attr, result, context)
            return result
        if isinstance(term, VariantTerm):
            payload = self.term_type(term.payload, context)
            variant_ty = self.env.fresh()
            self.env.defer_variant(variant_ty, term.label, payload, context)
            return variant_ty
        if isinstance(term, RecordTerm):
            return RecordType(tuple(
                (label, self.term_type(value, context))
                for label, value in term.fields))
        if isinstance(term, SkolemTerm):
            if not self.schema.has_class(term.class_name):
                raise TypecheckError(
                    f"{context}: Mk_{term.class_name} refers to unknown "
                    f"class {term.class_name!r}")
            for _, arg in term.args:
                self.term_type(arg, context)  # args must be well-typed
            return ClassType(term.class_name)
        raise TypecheckError(f"{context}: unknown term {term!r}")

    def check_atom(self, atom: Atom, where: str) -> None:
        context = f"{where} atom '{atom}'"
        if isinstance(atom, MemberAtom):
            if not self.schema.has_class(atom.class_name):
                raise TypecheckError(
                    f"{context}: unknown class {atom.class_name!r} "
                    f"(did you mean a set-valued variable?)")
            element = self.term_type(atom.element, context)
            self.env.unify(element, ClassType(atom.class_name), context)
            return
        if isinstance(atom, InAtom):
            element = self.term_type(atom.element, context)
            collection = self.term_type(atom.collection, context)
            # Sets AND lists admit membership; deferred until the
            # collection's type resolves.
            self.env.defer_membership(collection, element, context)
            return
        if isinstance(atom, (EqAtom, NeqAtom)):
            left = self.term_type(atom.left, context)
            right = self.term_type(atom.right, context)
            self.env.unify(left, right, context)
            return
        if isinstance(atom, (LtAtom, LeqAtom)):
            left = self.term_type(atom.left, context)
            right = self.term_type(atom.right, context)
            self.env.unify(left, right, context)
            # Comparisons need an ordered base type; check post-hoc once
            # resolved (deferral): record as a projection-like obligation.
            self._order_obligations.append((left, context))
            return
        raise TypecheckError(f"{context}: unknown atom kind")

    _order_obligations: List[Tuple[Type, str]]

    def run(self, require_ground: bool = False) -> TypeReport:
        self._order_obligations = []
        for atom in self.clause.body:
            self.check_atom(atom, "body")
        for atom in self.clause.head:
            self.check_atom(atom, "head")
        self.env.run_deferred()

        for ty, context in self._order_obligations:
            resolved = self.env.resolve(ty)
            if isinstance(resolved, TypeVar):
                continue  # unresolved: cannot refute orderability
            if not (isinstance(resolved, BaseType)
                    and resolved.name in ("int", "float", "str")):
                raise TypecheckError(
                    f"{context}: ordered comparison on non-orderable "
                    f"type {resolved}")

        leftovers = self.env.unresolved_obligations()
        if leftovers and require_ground:
            raise TypecheckError("; ".join(leftovers))

        report = TypeReport({
            name: self.env.deep_resolve(tv)
            for name, tv in self.var_types.items()},
            obligations=tuple(leftovers))
        if require_ground:
            vague = sorted(name for name, ty in report.variable_types.items()
                           if not ty.is_ground())
            if vague:
                raise TypecheckError(
                    f"clause '{self.clause}': cannot resolve ground types "
                    f"for variables {vague}")
        return report


def check_clause(schema: Schema, clause: Clause,
                 require_ground: bool = False) -> TypeReport:
    """Type-check one clause against ``schema``.

    ``schema`` is the union of all participating databases' schemas (use
    :func:`repro.model.schema.merge_schemas` for multi-database clauses).
    Raises :class:`TypecheckError` when the clause cannot be well-typed.
    """
    checker = _ClauseChecker(schema, clause)
    try:
        return checker.run(require_ground=require_ground)
    except TypecheckError as exc:
        label = clause.name or str(clause)
        raise TypecheckError(f"clause {label}: {exc}") from exc


def check_program(schema: Schema, program, require_ground: bool = False
                  ) -> Dict[int, TypeReport]:
    """Type-check every clause of a program; returns reports by index."""
    return {index: check_clause(schema, clause, require_ground)
            for index, clause in enumerate(program)}
