"""Range restriction (safety) of WOL clauses (paper Section 3.1).

Range restriction ensures every variable is bound to an object or value
occurring in the database instance, similar to safety in Datalog.  The
paper's counterexample::

    X.population < Y <= X in CityA

is rejected because nothing binds ``Y``.

Binding rules (computed to a fixpoint):

* ``X in C`` (class membership) binds the *determinable positions* of the
  element term — for a variable element, the variable itself.
* ``X in S`` (set membership) binds the element's determinable positions
  once every variable of ``S`` is bound.
* ``s = t`` binds the determinable positions of either side once the other
  side is fully bound.  Determinable positions are: a bare variable; the
  fields of a record term; the payload of a variant term; and the arguments
  of a Skolem term (Skolem functions are injective, so the identity
  determines the arguments).  A projection subject is *not* determinable:
  knowing ``Y.a`` does not determine ``Y``.
* Comparison atoms (``<``, ``=<``, ``!=``) bind nothing; they only test.

Body variables must all be bound by body atoms.  Head-only variables are
existentially quantified ("there is an instantiation of any additional
variables in the head", Section 3.1) and may additionally be bound by head
class-membership atoms and head equations.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Set, Tuple

from .ast import (
    Atom, Clause, Const, EqAtom, InAtom, MemberAtom, Proj, RecordTerm,
    SkolemTerm, Term, Var, VariantTerm)


class RangeRestrictionError(Exception):
    """Raised when a clause is not range-restricted."""


def determinable_vars(term: Term) -> FrozenSet[str]:
    """Variables of ``term`` recoverable from the term's value.

    See the module docstring: fields, payloads and Skolem arguments are
    invertible positions; projection subjects are not.
    """
    if isinstance(term, Var):
        return frozenset({term.name})
    if isinstance(term, (Const, Proj)):
        return frozenset()
    if isinstance(term, VariantTerm):
        return determinable_vars(term.payload)
    if isinstance(term, RecordTerm):
        out: FrozenSet[str] = frozenset()
        for _, value in term.fields:
            out |= determinable_vars(value)
        return out
    if isinstance(term, SkolemTerm):
        out = frozenset()
        for _, arg in term.args:
            out |= determinable_vars(arg)
        return out
    return frozenset()


def _bound_step(atoms: Iterable[Atom], bound: Set[str]) -> bool:
    """One propagation round; returns True when anything new was bound."""
    changed = False

    def mark(names: FrozenSet[str]) -> None:
        nonlocal changed
        for name in names:
            if name not in bound:
                bound.add(name)
                changed = True

    for atom in atoms:
        if isinstance(atom, MemberAtom):
            # Class membership ranges over a finite class extent (body) or
            # asserts existence of such an object (head); either way the
            # element is bound.
            mark(determinable_vars(atom.element))
        elif isinstance(atom, InAtom):
            if atom.collection.variables() <= bound:
                mark(determinable_vars(atom.element))
        elif isinstance(atom, EqAtom):
            if atom.left.variables() <= bound:
                mark(determinable_vars(atom.right))
            if atom.right.variables() <= bound:
                mark(determinable_vars(atom.left))
        # NeqAtom / LtAtom / LeqAtom bind nothing.
    return changed


def body_bound_variables(clause: Clause) -> FrozenSet[str]:
    """Variables bound by the clause body alone."""
    bound: Set[str] = set()
    while _bound_step(clause.body, bound):
        pass
    return frozenset(bound)


def clause_bound_variables(clause: Clause) -> FrozenSet[str]:
    """Variables bound by body plus head binding atoms (existentials)."""
    bound: Set[str] = set(body_bound_variables(clause))
    while _bound_step(clause.head + clause.body, bound):
        pass
    return frozenset(bound)


def unrestricted_variables(clause: Clause) -> Tuple[FrozenSet[str],
                                                    FrozenSet[str]]:
    """Return (unrestricted body variables, unrestricted head variables)."""
    body_vars: Set[str] = set()
    for atom in clause.body:
        body_vars |= atom.variables()
    head_vars: Set[str] = set()
    for atom in clause.head:
        head_vars |= atom.variables()

    body_bound = body_bound_variables(clause)
    all_bound = clause_bound_variables(clause)
    bad_body = frozenset(body_vars) - body_bound
    bad_head = frozenset(head_vars) - all_bound
    return bad_body, bad_head


def is_range_restricted(clause: Clause) -> bool:
    """True iff every variable of the clause is range-restricted."""
    bad_body, bad_head = unrestricted_variables(clause)
    return not bad_body and not bad_head


def check_range_restriction(clause: Clause) -> None:
    """Raise :class:`RangeRestrictionError` for unrestricted variables."""
    bad_body, bad_head = unrestricted_variables(clause)
    if bad_body or bad_head:
        label = clause.name or str(clause)
        parts: List[str] = []
        if bad_body:
            parts.append(f"body variables {sorted(bad_body)}")
        if bad_head:
            parts.append(f"head variables {sorted(bad_head)}")
        raise RangeRestrictionError(
            f"clause {label}: not range-restricted: "
            + " and ".join(parts))


def check_program_range_restriction(program) -> None:
    """Check every clause of a program."""
    for clause in program:
        check_range_restriction(clause)
