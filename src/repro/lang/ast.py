"""Abstract syntax of the WOL language (paper Section 3.1).

A WOL *clause* has the form ``head <= body`` where head and body are finite
sets of *atoms*; atoms are basic logical statements over *terms*.  The same
clause syntax expresses both constraints and transformations — which one a
clause is depends on which databases its classes belong to, not on its shape.

Terms
-----
* :class:`Var` — a logic variable (``X``, ``Y``...).
* :class:`Const` — a constant of base type (``"Paris"``, ``42``, ``true``).
* :class:`Proj` — attribute projection ``t.a`` (dereferencing object
  identities, the paper's ``x.a`` notation).
* :class:`VariantTerm` — variant injection ``ins_label(t)``.
* :class:`RecordTerm` — record construction ``(a = t1, b = t2)``.
* :class:`SkolemTerm` — Skolem function application ``Mk_Class(...)``
  creating object identities uniquely determined by the arguments.

Atoms
-----
* :class:`MemberAtom` — class membership ``X in CityA``.
* :class:`InAtom` — set membership ``X in Y.cities``.
* :class:`EqAtom`, :class:`NeqAtom`, :class:`LtAtom`, :class:`LeqAtom` —
  comparisons.

All nodes are immutable; substitution and renaming return fresh trees.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, Mapping, Optional, Tuple, Union

from ..model.values import UNIT_VALUE, UnitValue, format_value


class AstError(Exception):
    """Raised for malformed AST constructions."""


# ----------------------------------------------------------------------
# Terms
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Term:
    """Abstract base class for WOL terms."""

    def variables(self) -> FrozenSet[str]:
        """The free variables of the term."""
        return frozenset(v.name for v in self.walk() if isinstance(v, Var))

    def walk(self) -> Iterator["Term"]:
        """Yield this term and all sub-terms, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def children(self) -> Tuple["Term", ...]:
        return ()

    def substitute(self, binding: Mapping[str, "Term"]) -> "Term":
        """Replace variables by terms according to ``binding``."""
        raise NotImplementedError

    def rename(self, mapping: Mapping[str, str]) -> "Term":
        """Rename variables (a special case of substitution)."""
        return self.substitute(
            {old: Var(new) for old, new in mapping.items()})


@dataclass(frozen=True)
class Var(Term):
    """A logic variable."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or not (self.name[0].isalpha() or
                                 self.name[0] == "_"):
            raise AstError(f"invalid variable name {self.name!r}")

    def substitute(self, binding: Mapping[str, Term]) -> Term:
        return binding.get(self.name, self)

    def __str__(self) -> str:
        return self.name


# Python scalars usable inside Const.
ConstValue = Union[int, str, bool, float, UnitValue]


@dataclass(frozen=True)
class Const(Term):
    """A constant of base type."""

    value: ConstValue

    def substitute(self, binding: Mapping[str, Term]) -> Term:
        return self

    def __str__(self) -> str:
        return format_value(self.value)


UNIT_CONST = Const(UNIT_VALUE)


@dataclass(frozen=True)
class Proj(Term):
    """Attribute projection ``subject.attr``.

    When the subject denotes an object identity the projection implicitly
    dereferences it (take ``V^C(x)`` and project), per Section 2.2.
    """

    subject: Term
    attr: str

    def children(self) -> Tuple[Term, ...]:
        return (self.subject,)

    def substitute(self, binding: Mapping[str, Term]) -> Term:
        return Proj(self.subject.substitute(binding), self.attr)

    def __str__(self) -> str:
        return f"{self.subject}.{self.attr}"


@dataclass(frozen=True)
class VariantTerm(Term):
    """Variant injection ``ins_label(payload)``; unit payload by default."""

    label: str
    payload: Term = UNIT_CONST

    def children(self) -> Tuple[Term, ...]:
        return (self.payload,)

    def substitute(self, binding: Mapping[str, Term]) -> Term:
        return VariantTerm(self.label, self.payload.substitute(binding))

    def __str__(self) -> str:
        if self.payload == UNIT_CONST:
            return f"ins_{self.label}()"
        return f"ins_{self.label}({self.payload})"


@dataclass(frozen=True)
class RecordTerm(Term):
    """Record construction ``(a = t1, ..., k = tk)`` (label-sorted)."""

    fields: Tuple[Tuple[str, Term], ...]

    def __post_init__(self) -> None:
        labels = [label for label, _ in self.fields]
        if len(set(labels)) != len(labels):
            raise AstError(f"duplicate record labels in term: {labels}")
        canonical = tuple(sorted(self.fields, key=lambda item: item[0]))
        object.__setattr__(self, "fields", canonical)

    @staticmethod
    def of(**fields: Term) -> "RecordTerm":
        return RecordTerm(tuple(fields.items()))

    def labels(self) -> Tuple[str, ...]:
        return tuple(label for label, _ in self.fields)

    def get(self, label: str) -> Term:
        for flabel, term in self.fields:
            if flabel == label:
                return term
        raise AstError(f"record term has no field {label!r}")

    def children(self) -> Tuple[Term, ...]:
        return tuple(term for _, term in self.fields)

    def substitute(self, binding: Mapping[str, Term]) -> Term:
        return RecordTerm(tuple(
            (label, term.substitute(binding)) for label, term in self.fields))

    def __str__(self) -> str:
        inner = ", ".join(f"{label} = {term}" for label, term in self.fields)
        return f"({inner})"


@dataclass(frozen=True)
class SkolemTerm(Term):
    """Skolem function application ``Mk_Class(arg1, ...)``.

    Skolem functions create object identities *uniquely associated with
    their arguments* (Section 3.1): equal arguments yield the same identity
    and the functions are injective.  Arguments are either all positional
    (labels ``None``) or all labelled (``Mk_CityT(name = N, country = C)``).
    """

    class_name: str
    args: Tuple[Tuple[Optional[str], Term], ...]

    def __post_init__(self) -> None:
        labels = [label for label, _ in self.args]
        named = [label for label in labels if label is not None]
        if named and len(named) != len(labels):
            raise AstError(
                f"Mk_{self.class_name}: mix of named and positional args")
        if len(set(named)) != len(named):
            raise AstError(f"Mk_{self.class_name}: duplicate arg labels")
        if named:
            canonical = tuple(sorted(self.args, key=lambda item: item[0]))
            object.__setattr__(self, "args", canonical)

    @staticmethod
    def positional(class_name: str, *args: Term) -> "SkolemTerm":
        return SkolemTerm(class_name, tuple((None, arg) for arg in args))

    @staticmethod
    def named(class_name: str, **args: Term) -> "SkolemTerm":
        return SkolemTerm(class_name, tuple(args.items()))

    @property
    def is_named(self) -> bool:
        return bool(self.args) and self.args[0][0] is not None

    def children(self) -> Tuple[Term, ...]:
        return tuple(term for _, term in self.args)

    def substitute(self, binding: Mapping[str, Term]) -> Term:
        return SkolemTerm(self.class_name, tuple(
            (label, term.substitute(binding)) for label, term in self.args))

    def __str__(self) -> str:
        if self.is_named:
            inner = ", ".join(f"{label} = {term}"
                              for label, term in self.args)
        else:
            inner = ", ".join(str(term) for _, term in self.args)
        return f"Mk_{self.class_name}({inner})"


# ----------------------------------------------------------------------
# Atoms
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Atom:
    """Abstract base class for WOL atoms."""

    def terms(self) -> Tuple[Term, ...]:
        raise NotImplementedError

    def variables(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for term in self.terms():
            out |= term.variables()
        return out

    def substitute(self, binding: Mapping[str, Term]) -> "Atom":
        raise NotImplementedError

    def rename(self, mapping: Mapping[str, str]) -> "Atom":
        return self.substitute(
            {old: Var(new) for old, new in mapping.items()})


@dataclass(frozen=True)
class MemberAtom(Atom):
    """Class membership ``element in ClassName``."""

    element: Term
    class_name: str

    def terms(self) -> Tuple[Term, ...]:
        return (self.element,)

    def substitute(self, binding: Mapping[str, Term]) -> Atom:
        return MemberAtom(self.element.substitute(binding), self.class_name)

    def __str__(self) -> str:
        return f"{self.element} in {self.class_name}"


@dataclass(frozen=True)
class InAtom(Atom):
    """Set membership ``element in collection`` (collection a set term)."""

    element: Term
    collection: Term

    def terms(self) -> Tuple[Term, ...]:
        return (self.element, self.collection)

    def substitute(self, binding: Mapping[str, Term]) -> Atom:
        return InAtom(self.element.substitute(binding),
                      self.collection.substitute(binding))

    def __str__(self) -> str:
        return f"{self.element} in {self.collection}"


@dataclass(frozen=True)
class EqAtom(Atom):
    """Equality ``left = right``."""

    left: Term
    right: Term

    def terms(self) -> Tuple[Term, ...]:
        return (self.left, self.right)

    def substitute(self, binding: Mapping[str, Term]) -> Atom:
        return EqAtom(self.left.substitute(binding),
                      self.right.substitute(binding))

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class NeqAtom(Atom):
    """Disequality ``left != right``."""

    left: Term
    right: Term

    def terms(self) -> Tuple[Term, ...]:
        return (self.left, self.right)

    def substitute(self, binding: Mapping[str, Term]) -> Atom:
        return NeqAtom(self.left.substitute(binding),
                       self.right.substitute(binding))

    def __str__(self) -> str:
        return f"{self.left} != {self.right}"


@dataclass(frozen=True)
class LtAtom(Atom):
    """Strict order ``left < right``."""

    left: Term
    right: Term

    def terms(self) -> Tuple[Term, ...]:
        return (self.left, self.right)

    def substitute(self, binding: Mapping[str, Term]) -> Atom:
        return LtAtom(self.left.substitute(binding),
                      self.right.substitute(binding))

    def __str__(self) -> str:
        return f"{self.left} < {self.right}"


@dataclass(frozen=True)
class LeqAtom(Atom):
    """Non-strict order ``left =< right`` (written ``=<`` to keep ``<=``
    free for clause implication)."""

    left: Term
    right: Term

    def terms(self) -> Tuple[Term, ...]:
        return (self.left, self.right)

    def substitute(self, binding: Mapping[str, Term]) -> Atom:
        return LeqAtom(self.left.substitute(binding),
                       self.right.substitute(binding))

    def __str__(self) -> str:
        return f"{self.left} =< {self.right}"


# ----------------------------------------------------------------------
# Clauses and programs
# ----------------------------------------------------------------------

#: Declared clause kinds.  ``None`` means "classify me from the schemas".
KIND_CONSTRAINT = "constraint"
KIND_TRANSFORMATION = "transformation"


@dataclass(frozen=True)
class Clause:
    """A WOL clause ``head <= body``.

    ``head`` and ``body`` are tuples (sets with a deterministic order) of
    atoms.  ``kind`` records a declared role when the programmer wrote one;
    classification against schemas lives in :mod:`repro.morphase.metadata`.
    """

    head: Tuple[Atom, ...]
    body: Tuple[Atom, ...]
    name: Optional[str] = None
    kind: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.head:
            raise AstError("a clause needs at least one head atom")
        if self.kind not in (None, KIND_CONSTRAINT, KIND_TRANSFORMATION):
            raise AstError(f"unknown clause kind {self.kind!r}")

    def variables(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for atom in self.head + self.body:
            out |= atom.variables()
        return out

    def head_only_variables(self) -> FrozenSet[str]:
        """Variables occurring in the head but not in the body."""
        body_vars: FrozenSet[str] = frozenset()
        for atom in self.body:
            body_vars |= atom.variables()
        return self.variables() - body_vars

    def atoms(self) -> Tuple[Atom, ...]:
        return self.head + self.body

    def substitute(self, binding: Mapping[str, Term]) -> "Clause":
        return Clause(
            tuple(atom.substitute(binding) for atom in self.head),
            tuple(atom.substitute(binding) for atom in self.body),
            name=self.name, kind=self.kind)

    def rename(self, mapping: Mapping[str, str]) -> "Clause":
        return self.substitute(
            {old: Var(new) for old, new in mapping.items()})

    def rename_apart(self, taken: FrozenSet[str],
                     counter: Optional[Iterator[int]] = None) -> "Clause":
        """Rename this clause's variables away from ``taken``."""
        if counter is None:
            counter = itertools.count(1)
        mapping: Dict[str, str] = {}
        used = set(taken)
        for name in sorted(self.variables()):
            if name in used:
                fresh = name
                while fresh in used or fresh in self.variables():
                    fresh = f"{name}_{next(counter)}"
                mapping[name] = fresh
                used.add(fresh)
        if not mapping:
            return self
        return self.rename(mapping)

    def classes_mentioned(self) -> FrozenSet[str]:
        """All class names in membership atoms and Skolem terms."""
        names = set()
        for atom in self.atoms():
            if isinstance(atom, MemberAtom):
                names.add(atom.class_name)
            for term in atom.terms():
                for node in term.walk():
                    if isinstance(node, SkolemTerm):
                        names.add(node.class_name)
        return frozenset(names)

    def size(self) -> int:
        """Number of atoms (paper's measure of program size)."""
        return len(self.head) + len(self.body)

    def __str__(self) -> str:
        head = ", ".join(str(atom) for atom in self.head)
        if not self.body:
            return f"{head};"
        body = ", ".join(str(atom) for atom in self.body)
        return f"{head} <= {body};"


@dataclass(frozen=True)
class Program:
    """A WOL program: a finite set of clauses.

    Programs mix transformation clauses and constraints (Section 3.2); the
    Morphase pipeline partitions them against the source/target schemas.
    """

    clauses: Tuple[Clause, ...]

    def __post_init__(self) -> None:
        names = [c.name for c in self.clauses if c.name is not None]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise AstError(f"duplicate clause names: {duplicates}")

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def __len__(self) -> int:
        return len(self.clauses)

    def clause(self, name: str) -> Clause:
        for clause in self.clauses:
            if clause.name == name:
                return clause
        raise AstError(f"no clause named {name!r}")

    def size(self) -> int:
        """Total atom count across clauses (the paper's program size)."""
        return sum(clause.size() for clause in self.clauses)

    def with_clauses(self, clauses: Tuple[Clause, ...]) -> "Program":
        return Program(clauses)

    def __str__(self) -> str:
        return "\n".join(self._render(clause) for clause in self.clauses)

    @staticmethod
    def _render(clause: Clause) -> str:
        prefix = ""
        if clause.kind is not None:
            prefix += clause.kind + " "
        if clause.name is not None:
            prefix += clause.name + ": "
        return prefix + str(clause)


def fresh_var_factory(prefix: str = "V") -> "_FreshVars":
    """A generator of variable names unseen so far: ``V1``, ``V2``..."""
    return _FreshVars(prefix)


class _FreshVars:
    def __init__(self, prefix: str) -> None:
        self._prefix = prefix
        self._counter = itertools.count(1)

    def __call__(self, avoid: FrozenSet[str] = frozenset()) -> str:
        while True:
            name = f"{self._prefix}{next(self._counter)}"
            if name not in avoid:
                return name
