"""Builders for common constraint families, expressed as WOL clauses.

The paper's position (Sections 2-3): keys, functional and inclusion
dependencies, cardinality constraints and specialisation relations are not
baked into the data model — they are all just WOL clauses.  This module
builds those clauses programmatically so schemas' "standard" constraints
can be generated rather than hand-written, complementing the key-clause
generation of :mod:`repro.morphase.metadata`.

All builders return plain :class:`~repro.lang.ast.Clause` values that work
with the satisfaction checker (auditing instances) and, where applicable,
with the normaliser's recognisers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..lang.ast import (Clause, EqAtom, InAtom, KIND_CONSTRAINT, MemberAtom,
                        Proj, Term, Var)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..model.keys import KeyedSchema

Path = Tuple[str, ...]


def _proj(base: Term, path: Path) -> Term:
    term = base
    for attr in path:
        term = Proj(term, attr)
    return term


def _as_path(path) -> Path:
    if isinstance(path, str):
        return tuple(path.split("."))
    return tuple(path)


def key_constraint(class_name: str, paths: Sequence,
                   name: Optional[str] = None) -> Clause:
    """``X = Y`` whenever all key paths agree (the paper's (C8) shape).

    >>> print(key_constraint("CountryE", ["name"]))
    X = Y <= X in CountryE, Y in CountryE, X.name = Y.name;
    """
    body: List = [MemberAtom(Var("X"), class_name),
                  MemberAtom(Var("Y"), class_name)]
    for path in paths:
        path = _as_path(path)
        body.append(EqAtom(_proj(Var("X"), path), _proj(Var("Y"), path)))
    return Clause((EqAtom(Var("X"), Var("Y")),), tuple(body),
                  name=name or f"key_{class_name}", kind=KIND_CONSTRAINT)


def functional_dependency(class_name: str, determinants: Sequence,
                          dependent, name: Optional[str] = None) -> Clause:
    """``X.dep = Y.dep`` whenever the determinant paths agree.

    >>> print(functional_dependency("CityE", ["country"], "is_capital"))
    X.is_capital = Y.is_capital <= X in CityE, Y in CityE, X.country = Y.country;
    """
    dependent = _as_path(dependent)
    body: List = [MemberAtom(Var("X"), class_name),
                  MemberAtom(Var("Y"), class_name)]
    for path in determinants:
        path = _as_path(path)
        body.append(EqAtom(_proj(Var("X"), path), _proj(Var("Y"), path)))
    head = (EqAtom(_proj(Var("X"), dependent),
                   _proj(Var("Y"), dependent)),)
    return Clause(head, tuple(body),
                  name=name or f"fd_{class_name}_{'_'.join(dependent)}",
                  kind=KIND_CONSTRAINT)


def inclusion_dependency(class_name: str, path,
                         target_class: str,
                         name: Optional[str] = None) -> Clause:
    """Every value reached by ``path`` is an object of ``target_class``.

    >>> print(inclusion_dependency("CityE", "country", "CountryE"))
    V in CountryE <= X in CityE, V = X.country;
    """
    path = _as_path(path)
    body = (MemberAtom(Var("X"), class_name),
            EqAtom(Var("V"), _proj(Var("X"), path)))
    return Clause((MemberAtom(Var("V"), target_class),), body,
                  name=name or f"incl_{class_name}_{'_'.join(path)}",
                  kind=KIND_CONSTRAINT)


def existence_dependency(class_name: str, set_attr: str,
                         name: Optional[str] = None) -> Clause:
    """The set-valued attribute is non-empty (at-least-one cardinality).

    >>> print(existence_dependency("Sequence", "method"))
    E in X.method <= X in Sequence;
    """
    head = (InAtom(Var("E"), Proj(Var("X"), set_attr)),)
    body = (MemberAtom(Var("X"), class_name),)
    return Clause(head, body,
                  name=name or f"some_{class_name}_{set_attr}",
                  kind=KIND_CONSTRAINT)


def at_most_one(class_name: str, set_attr: str,
                name: Optional[str] = None) -> Clause:
    """The set-valued attribute holds at most one element.

    >>> print(at_most_one("Sequence", "method"))
    E1 = E2 <= X in Sequence, E1 in X.method, E2 in X.method;
    """
    body = (MemberAtom(Var("X"), class_name),
            InAtom(Var("E1"), Proj(Var("X"), set_attr)),
            InAtom(Var("E2"), Proj(Var("X"), set_attr)))
    return Clause((EqAtom(Var("E1"), Var("E2")),), body,
                  name=name or f"atmostone_{class_name}_{set_attr}",
                  kind=KIND_CONSTRAINT)


def specialization(sub_class: str, super_class: str,
                   shared_paths: Sequence,
                   name: Optional[str] = None) -> Clause:
    """Specialisation as a constraint (paper Section 2: inheritance is
    "a special kind of constraint"): for every ``sub_class`` object there
    is a ``super_class`` object agreeing on the shared paths.

    >>> print(specialization("Capital", "City", ["name"]))
    Y in City, Y.name = X.name <= X in Capital;
    """
    head: List = [MemberAtom(Var("Y"), super_class)]
    for path in shared_paths:
        path = _as_path(path)
        head.append(EqAtom(_proj(Var("Y"), path), _proj(Var("X"), path)))
    body = (MemberAtom(Var("X"), sub_class),)
    return Clause(tuple(head), body,
                  name=name or f"isa_{sub_class}_{super_class}",
                  kind=KIND_CONSTRAINT)


def attribute_value(class_name: str, path, value,
                    name: Optional[str] = None) -> Clause:
    """Every object's ``path`` equals a constant (a domain restriction).

    >>> print(attribute_value("StateA", "country", "USA"))
    X.country = "USA" <= X in StateA;
    """
    from ..lang.ast import Const
    path = _as_path(path)
    head = (EqAtom(_proj(Var("X"), path), Const(value)),)
    body = (MemberAtom(Var("X"), class_name),)
    return Clause(head, body,
                  name=name or f"value_{class_name}_{'_'.join(path)}",
                  kind=KIND_CONSTRAINT)


def containment_dependency(class_name: str, set_attr: str,
                           target_class: str,
                           name: Optional[str] = None) -> Clause:
    """Every element of the set-valued attribute belongs to a class —
    the referential side of collection-valued attributes.

    >>> print(containment_dependency("Protein", "structures", "Structure"))
    E in Structure <= X in Protein, E in X.structures;
    """
    body = (MemberAtom(Var("X"), class_name),
            InAtom(Var("E"), Proj(Var("X"), set_attr)))
    return Clause((MemberAtom(Var("E"), target_class),), body,
                  name=name or f"elem_{class_name}_{set_attr}",
                  kind=KIND_CONSTRAINT)


def schema_constraints(keyed: "KeyedSchema") -> List[Clause]:
    """The standard constraint library a keyed schema induces.

    The paper's position made operational: a schema's "built-in"
    integrity rules are ordinary WOL clauses.  Every keyed class yields
    its key constraint (the (C8) shape); every reference-typed attribute
    yields an inclusion dependency; every set-of-references attribute
    yields a containment dependency.  The result audits any instance of
    the schema via :func:`repro.constraints.audit.audit_constraints` —
    the genome and ReLiBase workloads build their constraint libraries
    from this.
    """
    from ..model.types import ClassType, RecordType, SetType

    clauses: List[Clause] = []
    for cname in keyed.keys.classes():
        key = keyed.keys.key_for(cname)
        clauses.append(key_constraint(
            cname, [path for _, path in key.components]))
    for cname in keyed.schema.class_names():
        ctype = keyed.schema.class_type(cname)
        if not isinstance(ctype, RecordType):
            continue
        for label, fty in ctype.fields:
            if isinstance(fty, ClassType):
                clauses.append(
                    inclusion_dependency(cname, label, fty.name))
            elif (isinstance(fty, SetType)
                    and isinstance(fty.element, ClassType)):
                clauses.append(containment_dependency(
                    cname, label, fty.element.name))
    return clauses


def inverse_attributes(class_a: str, attr_a: str,
                       class_b: str, attr_b: str,
                       name: Optional[str] = None) -> Clause:
    """``attr_a``/``attr_b`` are mutually inverse references — the shape
    of the paper's (C11) (``spouse`` symmetric) and (C1).

    >>> print(inverse_attributes("Person", "spouse", "Person", "spouse"))
    Y.spouse = X <= Y in Person, X in Person, X.spouse = Y;
    """
    head = (EqAtom(Proj(Var("Y"), attr_b), Var("X")),)
    body = (MemberAtom(Var("Y"), class_b),
            MemberAtom(Var("X"), class_a),
            EqAtom(Proj(Var("X"), attr_a), Var("Y")))
    return Clause(head, body,
                  name=name or f"inv_{class_a}_{attr_a}",
                  kind=KIND_CONSTRAINT)
