"""Constraint auditing: check clause families against instances.

A thin convenience layer over :mod:`repro.semantics.satisfaction` that
groups constraints, runs them against an instance, and renders a readable
report — the "expressing and interacting with a large class of
constraints" side of the paper (Section 3.1), packaged for direct use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..lang.ast import Clause
from ..model.instance import Instance
from ..semantics.satisfaction import Violation, clause_violations


@dataclass
class ConstraintReport:
    """Violations per clause, with a pass/fail summary."""

    checked: int
    violations: Dict[str, List[Violation]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def failed_clauses(self) -> List[str]:
        return sorted(self.violations)

    def summary(self) -> str:
        if self.ok:
            return f"all {self.checked} constraints satisfied"
        lines = [f"{len(self.violations)} of {self.checked} "
                 f"constraints violated:"]
        for name in self.failed_clauses():
            found = self.violations[name]
            lines.append(f"  {name}: {len(found)} violation(s); "
                         f"first: {found[0]}")
        return "\n".join(lines)


def audit_constraints(instance: Instance,
                      constraints: Sequence[Clause],
                      limit_per_clause: Optional[int] = 10
                      ) -> ConstraintReport:
    """Check every constraint; collect up to ``limit_per_clause``
    violations each."""
    report = ConstraintReport(checked=len(constraints))
    for index, clause in enumerate(constraints):
        found = clause_violations(instance, clause, limit_per_clause)
        if found:
            name = clause.name or f"<clause {index}>"
            report.violations[name] = found
    return report
