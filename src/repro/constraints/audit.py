"""Constraint auditing: check clause families against instances.

A convenience layer over :mod:`repro.semantics.satisfaction` that groups
constraints, runs them against an instance, and renders a readable
report — the "expressing and interacting with a large class of
constraints" side of the paper (Section 3.1), packaged for direct use.

Audits run on the same production execution machinery as transformations:
:func:`audit_constraints` plans the whole constraint family once
(:func:`repro.engine.planner.plan_audit` — a fixed join order per clause
body *and* per head-satisfiability probe) and executes every clause over
one shared, prebuilt :class:`~repro.semantics.match.IndexPool`.  The
pre-planner behaviour — a fresh naive matcher with private lazy indexes
per clause — is kept behind ``use_planner=False`` as the differential
oracle: both paths report identical violation sets.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..engine.planner import AuditPlan, plan_audit
from ..lang.ast import Clause
from ..model.instance import Instance
from ..semantics.match import Matcher
from ..semantics.satisfaction import Violation, clause_violations


@dataclass
class ConstraintReport:
    """Violations per clause, with a pass/fail summary.

    The planner counters describe *how* the audit executed:
    ``planned_bodies``/``planned_heads`` clauses ran on precompiled join
    plans (the rest fell back to the dynamic matcher, still over the
    shared pool), ``prebuilt_indexes`` were materialised at planning
    time, and ``index_lookups`` extent scans were replaced by hash
    probes (``index_hits`` returned candidates, ``index_misses`` proved
    no candidate exists).  All zero on the naive path.
    """

    checked: int
    violations: Dict[str, List[Violation]] = field(default_factory=dict)
    planned_bodies: int = 0
    planned_heads: int = 0
    prebuilt_indexes: int = 0
    indexes_built: int = 0
    index_lookups: int = 0
    index_hits: int = 0
    index_misses: int = 0
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def failed_clauses(self) -> List[str]:
        return sorted(self.violations)

    def stats_line(self) -> str:
        """One line of planner/index counters (the CLI's ``--stats``)."""
        return (f"stats: {self.checked} constraints "
                f"({self.planned_bodies} planned bodies, "
                f"{self.planned_heads} planned head probes), "
                f"{self.prebuilt_indexes + self.indexes_built} indexes "
                f"built ({self.prebuilt_indexes} prebuilt), "
                f"{self.index_lookups} scans avoided "
                f"({self.index_hits} hits / {self.index_misses} misses), "
                f"{self.elapsed_seconds * 1000:.1f} ms")

    def to_json(self) -> Dict:
        """A machine-readable report (the CLI's ``check --json``)."""
        return {
            "ok": self.ok,
            "checked": self.checked,
            "violations": {name: [str(violation) for violation in found]
                           for name, found in sorted(self.violations.items())},
            "stats": {
                "planned_bodies": self.planned_bodies,
                "planned_heads": self.planned_heads,
                "prebuilt_indexes": self.prebuilt_indexes,
                "indexes_built": self.indexes_built,
                "index_lookups": self.index_lookups,
                "index_hits": self.index_hits,
                "index_misses": self.index_misses,
                "elapsed_ms": round(self.elapsed_seconds * 1000, 3),
            },
        }

    def summary(self) -> str:
        if self.ok:
            return f"all {self.checked} constraints satisfied"
        lines = [f"{len(self.violations)} of {self.checked} "
                 f"constraints violated:"]
        for name in self.failed_clauses():
            found = self.violations[name]
            lines.append(f"  {name}: {len(found)} violation(s); "
                         f"first: {found[0]}")
        return "\n".join(lines)


def audit_constraints(instance: Instance,
                      constraints: Sequence[Clause],
                      limit_per_clause: Optional[int] = 10,
                      use_planner: bool = True,
                      plan: Optional[AuditPlan] = None,
                      parallel: Optional[int] = None,
                      columnar: bool = True
                      ) -> ConstraintReport:
    """Check every constraint; collect up to ``limit_per_clause``
    violations each.

    With ``use_planner`` (the default) the family is compiled once into
    an :class:`~repro.engine.planner.AuditPlan` and every clause runs
    over the plan's shared, prebuilt index pool.  ``plan`` injects a
    precomputed plan (amortising planning and index builds across
    repeated audits); ``use_planner=False`` is the naive per-clause
    oracle.

    ``parallel=N`` runs the planned audit across ``N`` worker processes
    (:func:`repro.engine.parallel.audit_parallel`): every clause's body
    enumeration is hash-sharded, the shards' violation sets union, and
    the report's index counters sum the per-shard activity.  Within a
    clause the merged violations are sorted textually, so parallel
    reports are deterministic whatever order workers finish in.
    """
    if parallel is not None:
        if not use_planner or plan is not None:
            raise ValueError(
                "parallel audits shard join plans; they cannot run "
                "with use_planner=False or an injected plan")
        return _audit_constraints_parallel(instance, constraints,
                                           limit_per_clause, parallel,
                                           columnar=columnar)
    start = time.perf_counter()
    report = ConstraintReport(checked=len(constraints))
    audit_plan = plan
    if audit_plan is not None and audit_plan.pool.instance is not instance:
        raise ValueError(
            "injected audit plan was built for a different instance; "
            "its indexes would silently produce wrong violation sets "
            "(re-plan with plan_audit against this instance)")
    if audit_plan is None and use_planner:
        audit_plan = plan_audit(constraints, instance)
    matcher: Optional[Matcher] = None
    baseline = (0, 0, 0, 0)
    if audit_plan is not None:
        report.planned_bodies = audit_plan.planned_bodies
        report.planned_heads = audit_plan.planned_heads
        report.prebuilt_indexes = audit_plan.prebuilt_indexes
        matcher = Matcher(instance, index_pool=audit_plan.pool)
        pool = audit_plan.pool
        baseline = (pool.builds, pool.lookups, pool.hits, pool.misses)
    for index, clause in enumerate(constraints):
        clause_plan = None
        if audit_plan is not None:
            # Plans align with the constraint sequence; an injected plan
            # built from a different sequence is matched by clause.
            if (index < len(audit_plan.plans)
                    and audit_plan.plans[index].clause is clause):
                clause_plan = audit_plan.plans[index]
            else:
                clause_plan = audit_plan.plan_for(clause)
        found = clause_violations(instance, clause, limit_per_clause,
                                  matcher=matcher, plan=clause_plan,
                                  columnar=columnar)
        if found:
            name = clause.name or f"<clause {index}>"
            report.violations.setdefault(name, []).extend(found)
    if audit_plan is not None:
        pool = audit_plan.pool
        # The pool may be shared across audits: report this run's delta.
        report.indexes_built = pool.builds - baseline[0]
        report.index_lookups = pool.lookups - baseline[1]
        report.index_hits = pool.hits - baseline[2]
        report.index_misses = pool.misses - baseline[3]
    report.elapsed_seconds = time.perf_counter() - start
    return report


def _audit_constraints_parallel(instance: Instance,
                                constraints: Sequence[Clause],
                                limit_per_clause: Optional[int],
                                workers: int,
                                columnar: bool = True) -> ConstraintReport:
    """The sharded fan-out behind ``audit_constraints(parallel=N)``."""
    from ..engine.parallel import audit_parallel
    start = time.perf_counter()
    result = audit_parallel(constraints, instance, workers,
                            limit_per_clause=limit_per_clause,
                            columnar=columnar)
    report = ConstraintReport(checked=len(constraints))
    for index, found in sorted(result.violations_by_clause.items()):
        if not found:
            continue
        name = constraints[index].name or f"<clause {index}>"
        report.violations.setdefault(name, []).extend(found)
    report.planned_bodies = result.planned_bodies
    report.planned_heads = result.planned_heads
    report.prebuilt_indexes = result.prebuilt_indexes
    report.indexes_built = result.indexes_built
    report.index_lookups = result.index_lookups
    report.index_hits = result.index_hits
    report.index_misses = result.index_misses
    report.elapsed_seconds = time.perf_counter() - start
    return report
