"""Constraint families as WOL clauses (paper Sections 2-4)."""

from .library import (at_most_one, attribute_value, containment_dependency,
                      existence_dependency, functional_dependency,
                      inclusion_dependency, inverse_attributes,
                      key_constraint, schema_constraints, specialization)
from .audit import ConstraintReport, audit_constraints

__all__ = [
    "at_most_one", "attribute_value", "containment_dependency",
    "existence_dependency", "functional_dependency",
    "inclusion_dependency", "inverse_attributes",
    "key_constraint", "schema_constraints", "specialization",
    "ConstraintReport", "audit_constraints",
]
