"""Clause-interference analysis (WOL301-WOL305).

Computes every clause's static write-set (head effects on target
classes) and read-set (:class:`~repro.engine.incremental.ClauseReads`,
the incremental engine's own notion), then:

* **WOL301** — two clauses writing the same non-key scalar attribute
  whose bodies can overlap: their co-firing raises a runtime conflict,
  and the winner depends on clause order otherwise.  Identity (key)
  attributes are exempt — equal keys mean the *same* object, so the
  writes agree by construction — and pairs whose combined bodies are
  congruence-unsatisfiable are provably disjoint (the variant-guard
  pattern of ``workloads/synthetic.py``).
* **WOL302** — cycles in the produce/consume graph over target classes
  (a clause consuming what it transitively produces): the normaliser
  rejects recursion, and results would be iteration-order sensitive.
* **WOL303** — clauses whose join plan has no driving extent generator;
  the parallel engine runs them whole on one worker.
* **WOL304** — clauses whose read-set is imprecise (an untypeable
  projection subject): incremental seeding must over-approximate to
  "reads everything" for them.
* **WOL305** — clauses whose join plan has no vectorizable step; the
  columnar executor falls back to row-at-a-time enumeration for every
  stage of the body.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..engine.columnar import step_vectorizable
from ..engine.incremental import ClauseReads
from ..engine.planner import PlanError, plan_clause, shardable_step
from ..lang.ast import Clause, EqAtom, MemberAtom, Proj, SkolemTerm, Var
from ..normalization.congruence import Unsatisfiable, congruence_of
from .analyzer import AnalysisContext
from .diagnostics import Diagnostic


def run(context: AnalysisContext) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    out.extend(_write_conflicts(context))
    out.extend(_produce_consume_cycles(context))
    for index in range(len(context.clauses)):
        out.extend(_shardability(context, index))
        out.extend(_read_precision(context, index))
        out.extend(_vectorizability(context, index))
    return out


# ----------------------------------------------------------------------
# WOL301: conflicting scalar writes
# ----------------------------------------------------------------------

def _write_conflicts(context: AnalysisContext) -> List[Diagnostic]:
    writers: Dict[Tuple[str, str], List[Tuple[int, str]]] = {}
    for index in range(len(context.clauses)):
        effects = context.head_effects(index)
        for cname, attr, subject in effects.scalar_writes:
            key_attrs = context.effective_key_attrs(cname)
            if key_attrs is not None and attr in key_attrs:
                continue  # identity attribute: writes agree by key
            writers.setdefault((cname, attr), []).append((index, subject))

    out: List[Diagnostic] = []
    for (cname, attr), entries in sorted(writers.items()):
        clause_indexes = sorted({index for index, _ in entries})
        if len(clause_indexes) < 2:
            continue
        overlapping = _overlapping_pairs(context, cname, attr, entries)
        if not overlapping:
            continue
        pair_text = ", ".join(
            f"({context.label(a)}, {context.label(b)})"
            for a, b in overlapping)
        anchor = overlapping[0][0]
        out.append(Diagnostic(
            "WOL301",
            f"attribute ({cname}, {attr}) is written by multiple "
            f"clauses with overlapping bodies: {pair_text}; co-firing "
            f"raises a conflict and results are clause-order sensitive",
            clause=context.label(anchor), clause_index=anchor,
            suggestion="make the clause bodies mutually exclusive, or "
                       "derive the attribute in a single clause"))
    return out


def _overlapping_pairs(context: AnalysisContext, cname: str, attr: str,
                       entries: List[Tuple[int, str]]
                       ) -> List[Tuple[int, int]]:
    """Writer pairs whose bodies can bind the same object."""
    pairs: List[Tuple[int, int]] = []
    seen: Set[Tuple[int, int]] = set()
    for position, (left, left_var) in enumerate(entries):
        for right, right_var in entries[position + 1:]:
            if left == right:
                continue
            ordered = (min(left, right), max(left, right))
            if ordered in seen:
                continue
            seen.add(ordered)
            if _may_overlap(context, cname, left, left_var,
                            right, right_var):
                pairs.append(ordered)
    return sorted(pairs)


def _key_link_atoms(context: AnalysisContext, cname: str,
                    clause: Clause, subject: str) -> Tuple:
    """Head equations that pin the written object's key attributes.

    Only these head atoms may join the combined congruence: they say
    *which* object the clause writes (two writers touching the same
    object agree on its keys), while every other head write is exactly
    the potential conflict being tested and must stay out.
    """
    key_attrs = context.effective_key_attrs(cname) or frozenset()
    linked = []
    for atom in clause.head:
        if not isinstance(atom, EqAtom):
            continue
        if (isinstance(atom.left, Var)
                and isinstance(atom.right, SkolemTerm)):
            linked.append(atom)  # explicit identity
            continue
        for side in (atom.left, atom.right):
            if (isinstance(side, Proj) and isinstance(side.subject, Var)
                    and side.subject.name == subject
                    and side.attr in key_attrs):
                linked.append(atom)
                break
    return tuple(linked)


def _may_overlap(context: AnalysisContext, cname: str, left: int,
                 left_var: str, right: int, right_var: str) -> bool:
    """False only when co-firing on one object is provably impossible.

    Combines both SNF bodies with the written subjects unified, adds
    the head equations pinning each subject's key attributes (so the
    "same object" hypothesis propagates through the keys) and the
    schema/constraint key knowledge, then asks the congruence engine
    for a contradiction.
    """
    left_snf = context.snf(left)
    right_snf = context.snf(right)
    if left_snf is None or right_snf is None:
        return True
    renamed = right_snf.rename_apart(left_snf.variables())
    renaming = _variable_map(right_snf, renamed)
    subject = renaming.get(right_var, right_var)
    unify = {subject: Var(left_var)}
    combined = (tuple(left_snf.body)
                + _key_link_atoms(context, cname, left_snf, left_var)
                + tuple(atom.substitute(unify) for atom in renamed.body)
                + tuple(atom.substitute(unify) for atom in
                        _key_link_atoms(context, cname, renamed, subject)))
    try:
        congruence_of(combined, context.congruence_key_paths())
    except Unsatisfiable:
        return False
    except Exception:
        return True
    return True


def _variable_map(original: Clause, renamed: Clause) -> Dict[str, str]:
    """Positional variable correspondence between a clause and its
    ``rename_apart`` image (atom structure is preserved, so zipping the
    term walks lines the variables up)."""
    mapping: Dict[str, str] = {}
    before = [node for atom in original.atoms() for term in atom.terms()
              for node in term.walk() if isinstance(node, Var)]
    after = [node for atom in renamed.atoms() for term in atom.terms()
             for node in term.walk() if isinstance(node, Var)]
    for old, new in zip(before, after, strict=True):
        mapping.setdefault(old.name, new.name)
    return mapping


# ----------------------------------------------------------------------
# WOL302: produce/consume cycles
# ----------------------------------------------------------------------

def _produce_consume_cycles(context: AnalysisContext) -> List[Diagnostic]:
    produces: Dict[int, Set[str]] = {}
    edges: Dict[str, Set[str]] = {}
    for index in range(len(context.clauses)):
        produced = {cname for cname, _ in
                    context.head_effects(index).creations}
        for atom in context.clauses[index].head:
            if (isinstance(atom, MemberAtom)
                    and context.is_target_class(atom.class_name)):
                produced.add(atom.class_name)
        produces[index] = produced
        for consumed in context.consumers(index):
            for target in produced:
                edges.setdefault(consumed, set()).add(target)

    cyclic = _classes_in_cycles(edges)
    if not cyclic:
        return []
    out: List[Diagnostic] = []
    for index in range(len(context.clauses)):
        consumed = context.consumers(index) & cyclic
        produced = produces[index] & cyclic
        if consumed and produced:
            out.append(Diagnostic(
                "WOL302",
                f"produce/consume cycle through target classes "
                f"{sorted(cyclic)}: this clause consumes "
                f"{sorted(consumed)} and produces {sorted(produced)}",
                clause=context.label(index), clause_index=index,
                suggestion="break the recursion; WOL programs are "
                           "non-recursive (results would depend on "
                           "clause iteration order)"))
    return out


def _classes_in_cycles(edges: Dict[str, Set[str]]) -> Set[str]:
    """Nodes on some cycle: reachable from themselves."""
    cyclic: Set[str] = set()
    for start in edges:
        frontier = set(edges.get(start, ()))
        seen: Set[str] = set()
        while frontier:
            node = frontier.pop()
            if node == start:
                cyclic.add(start)
                break
            if node in seen:
                continue
            seen.add(node)
            frontier |= edges.get(node, set())
    return cyclic


# ----------------------------------------------------------------------
# WOL303 / WOL304 / WOL305: shardability, read-set precision,
# vectorizability
# ----------------------------------------------------------------------

def _shardability(context: AnalysisContext,
                  index: int) -> List[Diagnostic]:
    clause = context.clauses[index]
    if not clause.body:
        return []
    try:
        plan = plan_clause(clause)
    except PlanError:
        return []  # already WOL104
    if shardable_step(plan) is not None:
        return []
    return [Diagnostic(
        "WOL303",
        "no driving extent generator in the join plan; parallel "
        "execution runs this clause whole on one worker",
        clause=context.label(index), clause_index=index,
        suggestion="drive the body from a class membership atom to "
                   "make the clause shardable")]


def _read_precision(context: AnalysisContext,
                    index: int) -> List[Diagnostic]:
    clause = context.clauses[index]
    try:
        reads = ClauseReads(clause, context.class_type_of)
    except Exception:
        return []
    if reads.exact:
        return []
    return [Diagnostic(
        "WOL304",
        "read-set is imprecise (a projection subject could not be "
        "typed); incremental seeding treats this clause as reading "
        "every attribute",
        clause=context.label(index), clause_index=index,
        suggestion="bind projection subjects through class membership "
                   "so their types are statically known")]


def _vectorizability(context: AnalysisContext,
                     index: int) -> List[Diagnostic]:
    clause = context.clauses[index]
    if not clause.body:
        return []
    try:
        plan = plan_clause(clause)
    except PlanError:
        return []  # already WOL104
    if any(step_vectorizable(step) for step in plan.steps):
        return []
    return [Diagnostic(
        "WOL305",
        "no step of the join plan is vectorizable; columnar execution "
        "falls back to row-at-a-time enumeration for every stage",
        clause=context.label(index), clause_index=index,
        suggestion="start the body with a class membership scan or "
                   "attribute bindings so batches can form")]
