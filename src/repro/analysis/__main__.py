"""Dogfood the analyzer over every bundled workload.

``python -m repro.analysis`` lints each bundled program (genome,
relibase, persons, cities, both synthetic families and the
constraint-determination example) and exits non-zero when any of them
reports a warning or error — the CI gate keeping the shipped workloads
lint-clean.  Info-level findings are printed but do not fail the gate.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys
from typing import Callable, List, Optional, Sequence, Tuple

from ..model.keys import KeyedSchema
from .analyzer import analyze_text
from .diagnostics import SEVERITY_RANK, SEVERITY_WARNING, DiagnosticReport

Workload = Tuple[str, Callable[[], Tuple[str, Sequence[KeyedSchema],
                                         Optional[KeyedSchema]]]]


def _genome():
    from ..adapters.acedb import schema_of_acedb
    from ..workloads.genome import (ACE_CLASSES, PROGRAM_TEXT, AceDatabase,
                                    warehouse_schema)
    source = schema_of_acedb(AceDatabase("ACe22", ACE_CLASSES))
    return PROGRAM_TEXT, [source], warehouse_schema()


def _relibase():
    from ..workloads.relibase import (PROGRAM_TEXT, pdb_schema,
                                      relibase_schema, swissprot_schema)
    return PROGRAM_TEXT, [swissprot_schema(), pdb_schema()], relibase_schema()


def _persons():
    from ..workloads.persons import PROGRAM_TEXT, evolved_schema, person_schema
    return PROGRAM_TEXT, [person_schema()], evolved_schema()


def _cities():
    from ..workloads.cities import (PROGRAM_TEXT, euro_schema, target_schema,
                                    us_schema)
    return PROGRAM_TEXT, [us_schema(), euro_schema()], target_schema()


def _synthetic_wide():
    from ..workloads.synthetic import wide_program_text, wide_schemas
    source, target = wide_schemas(6)
    return wide_program_text(6), [source], target


def _synthetic_variant():
    from ..workloads.synthetic import (variant_schemas,
                                       variant_split_program_text)
    source, target = variant_schemas(3, 2)
    return variant_split_program_text(3, 2), [source], target


def _example_constraint_determination():
    from ..model.schema import parse_schema
    from ..workloads import cities
    example = _load_example("constraint_determination.py")
    target = parse_schema(example.EXTENDED_TARGET)
    text = cities.PROGRAM_TEXT + example.PLACE_CONSTRAINTS
    return text, [cities.us_schema(), cities.euro_schema()], target


def _load_example(filename: str):
    """Import an ``examples/`` script by path (they are not a package)."""
    root = pathlib.Path(__file__).resolve().parents[3]
    path = root / "examples" / filename
    spec = importlib.util.spec_from_file_location(path.stem, path)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


WORKLOADS: List[Workload] = [
    ("genome", _genome),
    ("relibase", _relibase),
    ("persons", _persons),
    ("cities", _cities),
    ("synthetic-wide", _synthetic_wide),
    ("synthetic-variant", _synthetic_variant),
    ("example-constraint-determination", _example_constraint_determination),
]


def lint_workloads(names: Optional[Sequence[str]] = None
                   ) -> List[Tuple[str, DiagnosticReport]]:
    """Analyze each bundled workload; returns (name, report) pairs."""
    wanted = set(names) if names else None
    out: List[Tuple[str, DiagnosticReport]] = []
    for name, build in WORKLOADS:
        if wanted is not None and name not in wanted:
            continue
        text, sources, target = build()
        out.append((name, analyze_text(text, sources, target)))
    return out


def main(argv: Optional[Sequence[str]] = None) -> int:
    reports = lint_workloads(list(argv) if argv else None)
    gate = SEVERITY_RANK[SEVERITY_WARNING]
    failed = False
    for name, report in reports:
        print(report.render_text(source_name=name))
        if report.at_or_above(SEVERITY_WARNING):
            failed = True
    if failed:
        print(f"dogfood: findings at or above severity rank {gate}; "
              f"fix them or add a '-- lint: disable=...' suppression",
              file=sys.stderr)
        return 1
    print(f"dogfood: {len(reports)} workload(s) lint-clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
