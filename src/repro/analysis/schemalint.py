"""Schema/key lint (WOL401-WOL403).

* **WOL401** — a head creates an object of a keyed target class without
  binding every key attribute.  Today that surfaces as a runtime
  conflict (two firings with equal keys but different identities) or a
  validation failure; statically, the created object's identity is
  underdetermined.  A head that states the Skolem identity explicitly
  (``X = Mk_C(...)``) is exempt — the identity *is* the binding.
* **WOL402** — schema classes no clause mentions (neither membership
  nor Skolem identity): unreachable by this program.
* **WOL403** — a named Skolem argument labelling no attribute of its
  class: the surrogate key's components dangle.
"""

from __future__ import annotations

from typing import List, Set

from ..lang.ast import SkolemTerm
from .analyzer import AnalysisContext
from .diagnostics import Diagnostic


def run(context: AnalysisContext) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for index in range(len(context.clauses)):
        out.extend(_key_completeness(context, index))
        out.extend(_skolem_labels(context, index))
    out.extend(_unreachable_classes(context))
    return out


def _key_completeness(context: AnalysisContext,
                      index: int) -> List[Diagnostic]:
    effects = context.head_effects(index)
    out: List[Diagnostic] = []
    for cname, var in effects.creations:
        if var in effects.identities:
            continue  # explicit Mk_C identity binds the key
        required = context.effective_key_attrs(cname)
        if not required:
            continue  # unkeyed or untraceable: nothing to demand
        missing = sorted(required - effects.written_attributes(var))
        if not missing:
            continue
        out.append(Diagnostic(
            "WOL401",
            f"head creates a {cname} object without binding its key "
            f"attribute(s) {missing}; the object's identity is "
            f"underdetermined (a runtime conflict)",
            clause=context.label(index), clause_index=index,
            suggestion=f"assert {var}.{missing[0]} = ... in the head "
                       f"(and likewise for every key attribute)"))
    return out


def _skolem_labels(context: AnalysisContext,
                   index: int) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    seen: Set[str] = set()
    for atom in context.clauses[index].atoms():
        for term in atom.terms():
            for node in term.walk():
                if not (isinstance(node, SkolemTerm) and node.is_named):
                    continue
                record = context.class_type_of(node.class_name)
                if record is None:
                    continue  # unknown class: the type checker reports it
                for label, _ in node.args:
                    if label is None or record.has_field(label):
                        continue
                    anchor = f"Mk_{node.class_name}(... {label} = ...)"
                    if anchor in seen:
                        continue
                    seen.add(anchor)
                    out.append(Diagnostic(
                        "WOL403",
                        f"Skolem argument {label!r} is not an attribute "
                        f"of class {node.class_name}",
                        clause=context.label(index), clause_index=index,
                        atom=str(atom),
                        suggestion=f"key components should name "
                                   f"attributes of {node.class_name}"))
    return out


def _unreachable_classes(context: AnalysisContext) -> List[Diagnostic]:
    mentioned: Set[str] = set()
    for clause in context.clauses:
        mentioned |= clause.classes_mentioned()
    out: List[Diagnostic] = []
    for cname in sorted(context.merged_schema.class_names()):
        if cname not in mentioned:
            out.append(Diagnostic(
                "WOL402",
                f"class {cname!r} is mentioned by no clause "
                f"(unreachable by this program)",
                suggestion="drop the class from the schema or add "
                           "clauses over it"))
    return out
