"""Whole-program static analysis for WOL programs.

A multi-pass analyzer producing structured :class:`Diagnostic` records
with stable codes (``WOL101``...), severities and suggested fixes —
the preflight every program entry point (CLI ``repro lint``, the
:class:`~repro.morphase.system.Morphase` façade, the HTTP service)
shares.  See :mod:`repro.analysis.analyzer` for the pass pipeline and
:data:`repro.analysis.diagnostics.CODES` for the vocabulary.
"""

from .analyzer import (AnalysisContext, analyze_program, analyze_text,
                       default_passes)
from .diagnostics import (CODES, SEVERITY_ERROR, SEVERITY_INFO,
                          SEVERITY_RANK, SEVERITY_WARNING, Diagnostic,
                          DiagnosticReport, merge_reports)
from .suppress import parse_suppressions

__all__ = [
    "AnalysisContext",
    "CODES",
    "Diagnostic",
    "DiagnosticReport",
    "SEVERITY_ERROR",
    "SEVERITY_INFO",
    "SEVERITY_RANK",
    "SEVERITY_WARNING",
    "analyze_program",
    "analyze_text",
    "default_passes",
    "merge_reports",
    "parse_suppressions",
]
