"""Inline lint suppressions for WOL program text.

WOL clauses carry no source positions, so suppressions are directives in
comments, scoped to a code and optionally to one clause::

    -- lint: disable=WOL301                  (whole file)
    -- lint: disable=WOL301,WOL303 clause=C6 (one clause)

Both ``--`` and ``#`` comment leaders are accepted.  Unknown codes are
kept (they may belong to a newer analyzer) but never match anything.
"""

from __future__ import annotations

import re
from typing import FrozenSet, Optional, Tuple

#: (code, clause-or-None); None means the directive is file-scoped.
Suppression = Tuple[str, Optional[str]]

_DIRECTIVE_RE = re.compile(
    r"(?:--|#)\s*lint:\s*disable=([A-Z0-9,\s]+?)"
    r"(?:\s+clause=([A-Za-z_][A-Za-z0-9_]*))?\s*$",
    re.MULTILINE)


def parse_suppressions(text: str) -> FrozenSet[Suppression]:
    """Extract every suppression directive from WOL source text."""
    found = set()
    for match in _DIRECTIVE_RE.finditer(text):
        codes, clause = match.group(1), match.group(2)
        for code in codes.split(","):
            code = code.strip()
            if code:
                found.add((code, clause))
    return frozenset(found)


def is_suppressed(suppressions: FrozenSet[Suppression], code: str,
                  clause: Optional[str]) -> bool:
    """True when ``code`` (optionally anchored to ``clause``) is disabled."""
    if (code, None) in suppressions:
        return True
    return clause is not None and (code, clause) in suppressions
