"""Structured diagnostics for the WOL static analyzer.

Every finding the analyzer produces is a :class:`Diagnostic` — a stable
code (``WOL101``), a severity, the clause it anchors to, a message and an
optional suggested fix.  The :data:`CODES` registry is the single source
of truth for the code table (the README's "Static analysis" section and
the renderers both read it), so adding a pass means registering its codes
here.

Severities order ``error > warning > info``; ``--fail-on`` and the
transform preflight compare against that order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITY_INFO = "info"

#: Higher rank = more severe; used by ``--fail-on`` threshold checks.
SEVERITY_RANK = {SEVERITY_INFO: 1, SEVERITY_WARNING: 2, SEVERITY_ERROR: 3}


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry for one diagnostic code."""

    code: str
    severity: str
    title: str
    meaning: str


#: The full diagnostic vocabulary, grouped by pass (1xx safety &
#: boundness, 2xx dead/unsatisfiable clauses, 3xx clause interference,
#: 4xx schema/key lint, 5xx query-program validation —
#: :mod:`repro.program.validate`).  WOL100 is the analyzer's own entry
#: gate.
CODES: Dict[str, CodeInfo] = {info.code: info for info in (
    CodeInfo("WOL100", SEVERITY_ERROR, "parse error",
             "the program text is not syntactically valid WOL"),
    CodeInfo("WOL101", SEVERITY_ERROR, "not range-restricted",
             "a variable is not bound to any database value "
             "(paper Section 3.1 safety)"),
    CodeInfo("WOL102", SEVERITY_ERROR, "type error",
             "no consistent type assignment exists for the clause"),
    CodeInfo("WOL103", SEVERITY_WARNING, "unresolved type obligations",
             "type inference left projection/variant/membership "
             "obligations undischarged; the clause may fail at runtime"),
    CodeInfo("WOL104", SEVERITY_WARNING, "statically unorderable",
             "the clause is range-restricted but the planner finds no "
             "static join order; execution falls back to the dynamic "
             "matcher"),
    CodeInfo("WOL201", SEVERITY_ERROR, "unsatisfiable body",
             "congruence closure proves the body contradictory; the "
             "clause can never fire"),
    CodeInfo("WOL202", SEVERITY_WARNING, "dead clause",
             "the body selects from a target class no clause produces, "
             "so the body is empty in every run"),
    CodeInfo("WOL203", SEVERITY_WARNING, "duplicate clause",
             "another clause has the same renaming-invariant signature"),
    CodeInfo("WOL204", SEVERITY_INFO, "unused body variable",
             "a body variable occurs in a single atom and never reaches "
             "the head; it only widens the join"),
    CodeInfo("WOL301", SEVERITY_WARNING, "conflicting attribute writes",
             "two clauses write the same non-key scalar attribute and "
             "their bodies can overlap; co-firing raises a runtime "
             "conflict"),
    CodeInfo("WOL302", SEVERITY_WARNING, "recursive produce/consume cycle",
             "the clause participates in a cycle of target-class "
             "production and consumption; results depend on clause "
             "iteration"),
    CodeInfo("WOL303", SEVERITY_INFO, "not parallel-shardable",
             "the clause's plan has no driving extent generator, so "
             "parallel execution runs it whole on one worker"),
    CodeInfo("WOL304", SEVERITY_WARNING, "imprecise read-set",
             "a projection subject could not be typed; incremental "
             "seeding must treat the clause as reading everything"),
    CodeInfo("WOL305", SEVERITY_INFO, "not vectorizable",
             "no step of the clause's join plan admits columnar "
             "execution; the whole body runs row-at-a-time"),
    CodeInfo("WOL401", SEVERITY_ERROR, "key-incomplete creation",
             "the head creates an object of a keyed class without "
             "binding every key attribute (a runtime conflict today)"),
    CodeInfo("WOL402", SEVERITY_INFO, "unreachable class",
             "a schema class is mentioned by no clause"),
    CodeInfo("WOL403", SEVERITY_WARNING, "dangling Skolem argument",
             "a named Skolem-term argument labels no attribute of its "
             "class"),
    CodeInfo("WOL500", SEVERITY_ERROR, "program parse error",
             "the query program (text DSL or JSON AST) is not "
             "syntactically well-formed"),
    CodeInfo("WOL501", SEVERITY_ERROR, "program bounds violated",
             "the program is empty, exceeds the statement limit, or "
             "names a statement with a non-identifier"),
    CodeInfo("WOL502", SEVERITY_ERROR, "duplicate statement name",
             "two statements bind the same name; results would be "
             "ambiguous"),
    CodeInfo("WOL503", SEVERITY_ERROR, "undefined statement reference",
             "an operator input names no *earlier* statement (forward "
             "and self references are rejected — the language has no "
             "recursion)"),
    CodeInfo("WOL504", SEVERITY_ERROR, "invalid query body",
             "a query statement's WOL body does not parse, is not "
             "range-restricted, or projects a variable the body never "
             "binds"),
    CodeInfo("WOL505", SEVERITY_ERROR, "set-operation column mismatch",
             "the inputs of a union/intersect/difference produce "
             "different column sets; row equality would be undefined"),
    CodeInfo("WOL506", SEVERITY_ERROR, "unknown projection column",
             "a project operator selects a column its input does not "
             "produce"),
    CodeInfo("WOL507", SEVERITY_ERROR, "invalid limit",
             "a limit operator's row count is negative"),
    CodeInfo("WOL508", SEVERITY_WARNING, "unused statement",
             "the statement's result set feeds no later statement and "
             "is not the program result; it only burns execution time"),
)}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding.

    ``clause`` is the clause label (name or rendering) and
    ``clause_index`` its position in the program; both are None for
    program-level findings (parse errors, unreachable classes).
    ``atom`` pins the finding to one atom's rendering when it has a
    single anchor.
    """

    code: str
    message: str
    clause: Optional[str] = None
    clause_index: Optional[int] = None
    atom: Optional[str] = None
    suggestion: Optional[str] = None

    @property
    def severity(self) -> str:
        return CODES[self.code].severity

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "code": self.code,
            "severity": self.severity,
            "title": CODES[self.code].title,
            "message": self.message,
        }
        if self.clause is not None:
            payload["clause"] = self.clause
        if self.clause_index is not None:
            payload["clause_index"] = self.clause_index
        if self.atom is not None:
            payload["atom"] = self.atom
        if self.suggestion is not None:
            payload["suggestion"] = self.suggestion
        return payload

    def __str__(self) -> str:
        where = f" [{self.clause}]" if self.clause else ""
        return f"{self.code}{where}: {self.message}"


def _sort_key(diagnostic: Diagnostic) -> Tuple:
    index = (diagnostic.clause_index
             if diagnostic.clause_index is not None else -1)
    return (index, diagnostic.code, diagnostic.message)


@dataclass
class DiagnosticReport:
    """All findings of one analyzer run, deterministically ordered."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    suppressed: List[Diagnostic] = field(default_factory=list)
    passes_run: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.diagnostics = sorted(self.diagnostics, key=_sort_key)
        self.suppressed = sorted(self.suppressed, key=_sort_key)

    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity == SEVERITY_ERROR]

    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity == SEVERITY_WARNING]

    def counts(self) -> Dict[str, int]:
        out = {SEVERITY_ERROR: 0, SEVERITY_WARNING: 0, SEVERITY_INFO: 0}
        for diagnostic in self.diagnostics:
            out[diagnostic.severity] += 1
        return out

    def max_severity(self) -> Optional[str]:
        best: Optional[str] = None
        for diagnostic in self.diagnostics:
            if best is None or (SEVERITY_RANK[diagnostic.severity]
                                > SEVERITY_RANK[best]):
                best = diagnostic.severity
        return best

    def at_or_above(self, severity: str) -> List[Diagnostic]:
        """Diagnostics at the given severity or worse (threshold check)."""
        floor = SEVERITY_RANK[severity]
        return [d for d in self.diagnostics
                if SEVERITY_RANK[d.severity] >= floor]

    @property
    def ok(self) -> bool:
        return not self.errors()

    def render_text(self, source_name: str = "<program>") -> str:
        """Stable human-readable rendering (golden-tested)."""
        counts = self.counts()
        summary = ", ".join(
            f"{counts[severity]} {severity}{'s' if counts[severity] != 1 else ''}"
            for severity in (SEVERITY_ERROR, SEVERITY_WARNING,
                             SEVERITY_INFO))
        lines = [f"{source_name}: {len(self.diagnostics)} diagnostic(s) "
                 f"({summary}), {len(self.suppressed)} suppressed"]
        for diagnostic in self.diagnostics:
            where = diagnostic.clause or "<program>"
            lines.append(f"  {diagnostic.severity:<7} {diagnostic.code}  "
                         f"{where}: {diagnostic.message}")
            if diagnostic.atom:
                lines.append(f"          at atom: {diagnostic.atom}")
            if diagnostic.suggestion:
                lines.append(f"          fix: {diagnostic.suggestion}")
        if not self.diagnostics:
            lines.append("  clean")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "counts": self.counts(),
            "diagnostics": [d.to_json() for d in self.diagnostics],
            "suppressed": len(self.suppressed),
            "passes": list(self.passes_run),
        }


def merge_reports(reports: Sequence[DiagnosticReport]) -> DiagnosticReport:
    """Union several reports (used by the dogfood runner)."""
    merged = DiagnosticReport()
    passes: List[str] = []
    for report in reports:
        merged.diagnostics.extend(report.diagnostics)
        merged.suppressed.extend(report.suppressed)
        for name in report.passes_run:
            if name not in passes:
                passes.append(name)
    merged.diagnostics.sort(key=_sort_key)
    merged.suppressed.sort(key=_sort_key)
    merged.passes_run = tuple(passes)
    return merged
