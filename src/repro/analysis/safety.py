"""Safety & boundness pass (WOL101-WOL104).

Folds the existing range-restriction and typecheck exceptions into
diagnostics, surfaces the type checker's unresolved obligations (which
``check_clause`` silently drops unless ``require_ground``), and replays
the planner's boundness simulation to explain clauses that are
range-restricted yet admit no static join order — including the chain of
variables each stuck atom is waiting for.
"""

from __future__ import annotations

from typing import List, Set

from ..engine.planner import PlanError, _classify, plan_clause
from ..lang.range_restriction import unrestricted_variables
from ..lang.typecheck import TypeReport, TypecheckError
from .analyzer import AnalysisContext
from .diagnostics import Diagnostic


def run(context: AnalysisContext) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for index, clause in enumerate(context.clauses):
        label = context.label(index)
        bad_body, bad_head = unrestricted_variables(clause)
        if bad_body or bad_head:
            parts = []
            if bad_body:
                parts.append(f"body variables {sorted(bad_body)}")
            if bad_head:
                parts.append(f"head variables {sorted(bad_head)}")
            loose = sorted(bad_body | bad_head)
            out.append(Diagnostic(
                "WOL101",
                "not range-restricted: " + " and ".join(parts),
                clause=label, clause_index=index,
                suggestion=f"bind {loose} with a membership or "
                           f"equality atom over database values"))
        report = context.type_report(index)
        if isinstance(report, TypecheckError):
            out.append(Diagnostic(
                "WOL102", str(report), clause=label, clause_index=index,
                suggestion="check attribute names and class membership "
                           "against the schemas"))
        elif isinstance(report, TypeReport):
            obligations = report.unresolved_obligations()
            if obligations:
                out.append(Diagnostic(
                    "WOL103",
                    "unresolved type obligations: "
                    + "; ".join(obligations),
                    clause=label, clause_index=index,
                    suggestion="add a membership or equality atom that "
                               "pins the subject's type"))
        if not bad_body:
            out.extend(_boundness(context, index))
    return out


def _boundness(context: AnalysisContext, index: int) -> List[Diagnostic]:
    """WOL104: range-restricted but statically unorderable bodies."""
    clause = context.clauses[index]
    try:
        plan_clause(clause)
        return []
    except PlanError:
        pass
    # Replay the greedy boundness simulation to name the stuck atoms
    # and the variables each is waiting for.
    bound: Set[str] = set()
    remaining = list(clause.body)
    progressed = True
    while progressed and remaining:
        progressed = False
        for atom in list(remaining):
            if _classify(atom, bound) is not None:
                bound |= atom.variables()
                remaining.remove(atom)
                progressed = True
    waits = [f"'{atom}' waits on {sorted(atom.variables() - bound)}"
             for atom in remaining]
    return [Diagnostic(
        "WOL104",
        "no static join order: " + "; ".join(waits),
        clause=context.label(index), clause_index=index,
        atom=str(remaining[0]) if remaining else None,
        suggestion="reorderable bodies need a generator (membership "
                   "or evaluable equality) for every variable; "
                   "execution falls back to the dynamic matcher")]
