"""The WOL static analyzer: shared context plus the pass pipeline.

The analyzer runs a sequence of *passes* over one
:class:`~repro.lang.ast.Program` and the schemas it is written against.
Each pass is a function ``(AnalysisContext) -> List[Diagnostic]``; the
default pipeline is the paper-faithful quartet

* ``safety``        — range restriction, typing, boundness (WOL1xx),
* ``deadcode``      — unsatisfiable/dead/duplicate clauses (WOL2xx),
* ``interference``  — read/write conflict analysis (WOL3xx),
* ``schema``        — key completeness and schema reachability (WOL4xx).

:class:`AnalysisContext` memoises everything passes share: per-clause
SNF forms, type reports, recognised key clauses, head effects and the
produce/consume structure of the program.  Entry points:

* :func:`analyze_program` — over an already-parsed program;
* :func:`analyze_text`    — over WOL source text (parse errors become
  ``WOL100`` diagnostics; inline ``-- lint: disable=...`` directives are
  honoured, see :mod:`repro.analysis.suppress`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Callable, Dict, FrozenSet, List, Optional, Sequence,
                    Set, Tuple, Union)

from ..lang.ast import (AstError, Clause, EqAtom, InAtom, MemberAtom,
                        Program, Proj, SkolemTerm, Var)
from ..lang.lexer import LexError
from ..lang.parser import ParseError, parse_program
from ..lang.typecheck import TypeReport, TypecheckError, check_clause
from ..model.keys import KeySpec, KeyedSchema
from ..model.schema import Schema, merge_schemas
from ..model.types import ClassType
from ..normalization.congruence import KeyPaths
from ..normalization.keyclauses import (KeyClause, key_paths_from_spec,
                                        recognise_key_clause,
                                        recognise_source_key_paths)
from ..normalization.snf import SnfError, snf_clause
from .diagnostics import Diagnostic, DiagnosticReport
from .suppress import Suppression, is_suppressed, parse_suppressions

AnySchema = Union[Schema, KeyedSchema]


def _plain(schema: AnySchema) -> Schema:
    return schema.schema if isinstance(schema, KeyedSchema) else schema


def _keys_of(schema: AnySchema) -> Optional[KeySpec]:
    return schema.keys if isinstance(schema, KeyedSchema) else None


@dataclass
class HeadEffects:
    """The static write-set of one clause's head.

    ``creations`` are target-class objects the head asserts into an
    extent whose element variable is not bound by the body (the clause
    *creates* them); ``scalar_writes``/``set_inserts`` are the
    ``(class, attribute, subject variable)`` effects; ``identities``
    maps a variable to the Skolem term the head equates it with.
    """

    creations: List[Tuple[str, str]] = field(default_factory=list)
    scalar_writes: List[Tuple[str, str, str]] = field(default_factory=list)
    set_inserts: List[Tuple[str, str, str]] = field(default_factory=list)
    identities: Dict[str, SkolemTerm] = field(default_factory=dict)

    def written_attributes(self, var: str) -> Set[str]:
        return {attr for _, attr, subject in
                self.scalar_writes + self.set_inserts if subject == var}


class AnalysisContext:
    """Everything the passes share, computed lazily and memoised."""

    def __init__(self, program: Program, source_schema: Schema,
                 target_schema: Optional[Schema] = None,
                 target_keys: Optional[KeySpec] = None,
                 source_keys: Optional[KeySpec] = None) -> None:
        self.program = program
        self.clauses: List[Clause] = list(program)
        self.source_schema = source_schema
        self.target_schema = target_schema
        self.target_keys = target_keys
        self.source_keys = source_keys
        self._key_paths: Optional[KeyPaths] = None
        if target_schema is not None:
            self.merged_schema = merge_schemas(
                "__analysis__", [source_schema, target_schema])
            self._target_classes = frozenset(target_schema.class_names())
        else:
            self.merged_schema = source_schema
            self._target_classes = frozenset()
        self._snf: Dict[int, Optional[Clause]] = {}
        self._types: Dict[int, Union[TypeReport, TypecheckError]] = {}
        self._effects: Dict[int, HeadEffects] = {}
        self._key_clauses: Optional[Dict[str, Tuple[int, KeyClause]]] = None
        self._key_attrs: Dict[str, Optional[FrozenSet[str]]] = {}

    # -- basic accessors ----------------------------------------------
    def label(self, index: int) -> str:
        clause = self.clauses[index]
        return clause.name or str(clause)

    def is_target_class(self, name: str) -> bool:
        return name in self._target_classes

    def class_type_of(self, name: str):
        """Schema record type of a class, or None (never raises)."""
        from ..model.types import RecordType
        try:
            found = self.merged_schema.class_type(name)
        except Exception:
            return None
        return found if isinstance(found, RecordType) else None

    # -- memoised per-clause analyses ---------------------------------
    def snf(self, index: int) -> Optional[Clause]:
        if index not in self._snf:
            try:
                self._snf[index] = snf_clause(self.clauses[index])
            except SnfError:
                self._snf[index] = None
        return self._snf[index]

    def type_report(self, index: int) -> Union[TypeReport, TypecheckError]:
        if index not in self._types:
            try:
                self._types[index] = check_clause(self.merged_schema,
                                                  self.clauses[index])
            except TypecheckError as exc:
                self._types[index] = exc
        return self._types[index]

    def var_classes(self, index: int) -> Dict[str, str]:
        """Variable -> class name, from types or membership atoms."""
        out: Dict[str, str] = {}
        report = self.type_report(index)
        if isinstance(report, TypeReport):
            for name, ty in report.variable_types.items():
                if isinstance(ty, ClassType):
                    out[name] = ty.name
        for atom in self.clauses[index].atoms():
            if isinstance(atom, MemberAtom) and isinstance(atom.element,
                                                           Var):
                out.setdefault(atom.element.name, atom.class_name)
        return out

    def head_effects(self, index: int) -> HeadEffects:
        if index not in self._effects:
            self._effects[index] = self._compute_effects(index)
        return self._effects[index]

    def _compute_effects(self, index: int) -> HeadEffects:
        clause = self.clauses[index]
        effects = HeadEffects()
        classes = self.var_classes(index)
        body_vars: Set[str] = set()
        for atom in clause.body:
            body_vars |= atom.variables()

        def target_subject(term) -> Optional[Tuple[str, str, str]]:
            """(class, attr, var) when ``term`` projects a target object."""
            if not (isinstance(term, Proj)
                    and isinstance(term.subject, Var)):
                return None
            cname = classes.get(term.subject.name)
            if cname is None or not self.is_target_class(cname):
                return None
            return cname, term.attr, term.subject.name

        for atom in clause.head:
            if isinstance(atom, MemberAtom):
                if (isinstance(atom.element, Var)
                        and self.is_target_class(atom.class_name)
                        and atom.element.name not in body_vars):
                    effects.creations.append(
                        (atom.class_name, atom.element.name))
            elif isinstance(atom, EqAtom):
                if (isinstance(atom.left, Var)
                        and isinstance(atom.right, SkolemTerm)):
                    effects.identities[atom.left.name] = atom.right
                    continue
                for side in (atom.left, atom.right):
                    write = target_subject(side)
                    if write is not None:
                        effects.scalar_writes.append(write)
            elif isinstance(atom, InAtom):
                insert = target_subject(atom.collection)
                if insert is not None:
                    effects.set_inserts.append(insert)
        return effects

    # -- key knowledge -------------------------------------------------
    def key_clauses(self) -> Dict[str, Tuple[int, KeyClause]]:
        """Hand-written key clauses of the program, by class."""
        if self._key_clauses is None:
            found: Dict[str, Tuple[int, KeyClause]] = {}
            for index in range(len(self.clauses)):
                normal = self.snf(index)
                if normal is None:
                    continue
                recognised = recognise_key_clause(normal)
                if recognised is not None:
                    found.setdefault(recognised.class_name,
                                     (index, recognised))
            self._key_clauses = found
        return self._key_clauses

    def effective_key_attrs(self, cname: str) -> Optional[FrozenSet[str]]:
        """The attributes that identify objects of ``cname``.

        A hand-written key clause overrides the schema key (the paper's
        Example 2.3 move); either way the answer is the set of *first*
        attributes the key reads.  None when the class is unkeyed or the
        key's attributes cannot be traced statically.
        """
        if cname not in self._key_attrs:
            self._key_attrs[cname] = self._compute_key_attrs(cname)
        return self._key_attrs[cname]

    def _compute_key_attrs(self, cname: str) -> Optional[FrozenSet[str]]:
        recognised = self.key_clauses().get(cname)
        if recognised is not None:
            _, key_clause = recognised
            attrs: Set[str] = set()
            for _, arg in key_clause.skolem.args:
                if not isinstance(arg, Var):
                    continue
                attr = self._trace_key_attr(key_clause, arg.name)
                if attr is None:
                    return None  # untraceable: claim nothing
                attrs.add(attr)
            return frozenset(attrs)
        if self.target_keys is not None:
            try:
                function = self.target_keys.key_for(cname)
            except Exception:
                return None
            return frozenset(path[0] for _, path in function.components)
        return None

    @staticmethod
    def _trace_key_attr(key_clause: KeyClause,
                        var: str) -> Optional[str]:
        """First attribute on the path from the object to ``var``."""
        current = var
        for _ in range(len(key_clause.definitions) + 1):
            for definition in key_clause.definitions:
                if not (isinstance(definition.left, Var)
                        and definition.left.name == current
                        and isinstance(definition.right, Proj)
                        and isinstance(definition.right.subject, Var)):
                    continue
                if (definition.right.subject.name
                        == key_clause.object_var):
                    return definition.right.attr
                current = definition.right.subject.name
                break
            else:
                return None
        return None

    def congruence_key_paths(self) -> KeyPaths:
        """Key knowledge for the congruence engine (Example 4.1).

        Schema key specifications (source and target) plus hand-written
        source key constraints of the paper's (C8) shape — the same
        knowledge the normaliser feeds its optimiser.
        """
        if self._key_paths is None:
            paths: Dict[str, Tuple] = {}
            for keys in (self.source_keys, self.target_keys):
                if keys is not None:
                    paths.update(key_paths_from_spec(keys))
            for clause in self.clauses:
                recognised = recognise_source_key_paths(clause)
                if recognised is None:
                    continue
                cname, key_tuple = recognised
                paths[cname] = paths.get(cname, ()) + (key_tuple,)
            self._key_paths = paths
        return self._key_paths

    # -- program structure ---------------------------------------------
    def producers(self) -> Dict[str, List[int]]:
        """Target classes -> clauses whose heads assert members."""
        out: Dict[str, List[int]] = {}
        for index, clause in enumerate(self.clauses):
            for atom in clause.head:
                if (isinstance(atom, MemberAtom)
                        and self.is_target_class(atom.class_name)):
                    out.setdefault(atom.class_name, []).append(index)
        return out

    def consumers(self, index: int) -> Set[str]:
        """Target classes the clause's body selects from."""
        return {atom.class_name for atom in self.clauses[index].body
                if isinstance(atom, MemberAtom)
                and self.is_target_class(atom.class_name)}


PassFn = Callable[[AnalysisContext], List[Diagnostic]]


def default_passes() -> Tuple[Tuple[str, PassFn], ...]:
    from . import deadcode, interference, safety, schemalint
    return (("safety", safety.run),
            ("deadcode", deadcode.run),
            ("interference", interference.run),
            ("schema", schemalint.run))


def analyze_program(program: Program, source_schema: Schema,
                    target_schema: Optional[Schema] = None,
                    target_keys: Optional[KeySpec] = None,
                    source_keys: Optional[KeySpec] = None,
                    suppressions: FrozenSet[Suppression] = frozenset(),
                    passes: Optional[Sequence[Tuple[str, PassFn]]] = None
                    ) -> DiagnosticReport:
    """Run the pass pipeline over a parsed program."""
    context = AnalysisContext(program, source_schema, target_schema,
                              target_keys, source_keys=source_keys)
    kept: List[Diagnostic] = []
    muted: List[Diagnostic] = []
    names: List[str] = []
    for name, pass_fn in (passes if passes is not None
                          else default_passes()):
        names.append(name)
        for diagnostic in pass_fn(context):
            if is_suppressed(suppressions, diagnostic.code,
                             diagnostic.clause):
                muted.append(diagnostic)
            else:
                kept.append(diagnostic)
    return DiagnosticReport(diagnostics=kept, suppressed=muted,
                            passes_run=tuple(names))


def analyze_text(text: str, source_schemas: Sequence[AnySchema],
                 target_schema: Optional[AnySchema] = None,
                 passes: Optional[Sequence[Tuple[str, PassFn]]] = None
                 ) -> DiagnosticReport:
    """Parse and analyze WOL source text.

    Schemas may be plain or keyed; the target's key specification (when
    present) feeds the key-completeness pass.  A parse failure yields a
    single ``WOL100`` report instead of raising.
    """
    plain_sources = [_plain(s) for s in source_schemas]
    source_schema = (plain_sources[0] if len(plain_sources) == 1
                     else merge_schemas("__source__", plain_sources))
    target_plain = (_plain(target_schema)
                    if target_schema is not None else None)
    classes = list(source_schema.class_names())
    if target_plain is not None:
        classes += list(target_plain.class_names())
    suppressions = parse_suppressions(text)
    try:
        program = parse_program(text, classes=classes)
    except (AstError, LexError, ParseError) as exc:
        return DiagnosticReport(diagnostics=[Diagnostic(
            "WOL100", str(exc),
            suggestion="fix the syntax error; nothing was analyzed")])
    target_keys = (_keys_of(target_schema)
                   if target_schema is not None else None)
    source_functions: Dict[str, object] = {}
    for schema in source_schemas:
        keys = _keys_of(schema)
        if keys is not None:
            source_functions.update(keys.functions)
    source_keys = (KeySpec(source_functions)  # type: ignore[arg-type]
                   if source_functions else None)
    return analyze_program(program, source_schema, target_plain,
                           target_keys=target_keys, source_keys=source_keys,
                           suppressions=suppressions, passes=passes)
