"""Dead & unsatisfiable clause detection (WOL201-WOL204).

Congruence closure rejects bodies that can never hold (paper Section
4.2's "causing unsatisfiable rules to be rejected" — here reported
instead of silently pruned), selector analysis finds bodies reading
target classes no clause produces, :func:`clause_signature` finds
duplicated clauses modulo renaming, and a local occurrence count flags
body variables that only widen a join.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..normalization.optimize import clause_signature, is_body_satisfiable
from .analyzer import AnalysisContext
from .diagnostics import Diagnostic


def run(context: AnalysisContext) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    producers = context.producers()
    signatures: Dict[Tuple[str, str], int] = {}
    for index, clause in enumerate(context.clauses):
        label = context.label(index)

        normal = context.snf(index)
        if normal is not None and not is_body_satisfiable(normal):
            out.append(Diagnostic(
                "WOL201",
                "body is unsatisfiable (congruence closure finds a "
                "contradiction); the clause can never fire",
                clause=label, clause_index=index,
                suggestion="remove the clause or fix the contradictory "
                           "equations"))

        for cname in sorted(context.consumers(index)):
            if cname not in producers:
                out.append(Diagnostic(
                    "WOL202",
                    f"body selects from target class {cname!r}, but no "
                    f"clause produces {cname!r} members",
                    clause=label, clause_index=index,
                    suggestion=f"add a producing clause for {cname!r} "
                               f"or drop the selector"))

        try:
            signature = clause_signature(clause)
        except Exception:
            signature = None
        if signature is not None:
            first = signatures.setdefault(signature, index)
            if first != index:
                out.append(Diagnostic(
                    "WOL203",
                    f"duplicate of clause "
                    f"{context.label(first)} (identical modulo "
                    f"variable renaming)",
                    clause=label, clause_index=index,
                    suggestion="remove the duplicate clause"))

        out.extend(_unused_variables(context, index))
    return out


def _unused_variables(context: AnalysisContext,
                      index: int) -> List[Diagnostic]:
    """WOL204: body variables used in exactly one atom, never in the head.

    Such a variable neither joins nor reaches the head — it only
    multiplies bindings (harmless for set semantics, wasteful for the
    join).  Auxiliary ``_``-prefixed variables are exempt by convention.
    """
    clause = context.clauses[index]
    head_vars = set()
    for atom in clause.head:
        head_vars |= atom.variables()
    occurrences: Dict[str, int] = {}
    for atom in clause.body:
        for name in atom.variables():
            occurrences[name] = occurrences.get(name, 0) + 1
    lonely = sorted(name for name, count in occurrences.items()
                    if count == 1 and name not in head_vars
                    and not name.startswith("_"))
    if not lonely:
        return []
    return [Diagnostic(
        "WOL204",
        f"body variables {lonely} occur once and never reach the head",
        clause=context.label(index), clause_index=index,
        suggestion="drop the variables (or name them with a leading "
                   "underscore if the widening is intended)")]
