"""Conjunctive matching: enumerate variable bindings satisfying atoms.

This is the shared evaluation core of the satisfaction checker
(:mod:`repro.semantics.satisfaction`) and the one-pass execution engine
(:mod:`repro.engine.executor`): given a set of atoms and an instance,
enumerate all bindings of the atoms' variables that make every atom true.

Atoms are processed in a data-driven order: at each step the matcher picks
an atom that is *ready* under the current binding — one that can either be
tested outright or used to generate/propagate bindings.  Range-restricted
clauses always admit such an order; if no atom is ever ready the clause is
reported as non-evaluable rather than silently dropped.

Pattern unification against values supports the invertible positions of
:mod:`repro.lang.range_restriction`: variables, record fields, variant
payloads and Skolem arguments (recovering arguments from keyed identities).
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..lang.ast import (Atom, Const, EqAtom, InAtom, LeqAtom, LtAtom,
                        MemberAtom, NeqAtom, Proj, RecordTerm, SkolemTerm,
                        Term, Var, VariantTerm)
from ..model.instance import Instance
from ..model.values import Oid, Record, Value, Variant, WolList, WolSet
from ..obs.metrics import LATENCY_BUCKETS, REGISTRY
from .columns import ColumnStore, deterministic_order
from .eval import Binding, EvalError, evaluate, is_evaluable, project


class MatchError(Exception):
    """Raised when atoms cannot be ordered for evaluation."""


#: Path step marking an element-of hop through a collection-valued
#: attribute.  A path ``("gene", "[]", "symbol", "[]")`` reads: project
#: ``gene``, take each element, project ``symbol``, take each element —
#: indexing joins that go *through* sets, not just equality chains.
ELEMENT_STEP = "[]"


#: Wall time spent materialising hash indexes (labelled by the indexed
#: class so hot classes stand out on a dashboard).
_BUILD_SECONDS = REGISTRY.histogram(
    "repro_index_build_seconds",
    "Time spent materialising one (class, path) hash index.",
    ("class_name",), buckets=LATENCY_BUCKETS)


class IndexPool:
    """Shared hash indexes over one instance: (class, path) -> value -> oids.

    A pool turns equality joins over class extents into hash lookups.  It
    is shareable: the program planner (:mod:`repro.engine.planner`) builds
    one pool per source instance and injects it into every clause's
    matcher, so an index over e.g. ``(SequenceT, name)`` is built once for
    the whole program instead of once per :class:`Matcher`.

    Paths may contain :data:`ELEMENT_STEP` hops; the index then maps each
    value *reachable* through the path (fanning out over collection
    elements) to the oids that reach it.  Such an index narrows a
    membership generator to a candidate superset — the clause's remaining
    atoms still verify the chain, so correctness never depends on the
    index being exact.

    Counters record how the pool was used (``ExecutionStats`` reads them):
    ``builds`` indexes materialised, ``lookups`` total indexed probes (each
    one replaces a full extent scan), split into ``hits`` (non-empty
    candidate list) and ``misses`` (provably no match, no scan needed).
    """

    def __init__(self, instance: Instance) -> None:
        self.instance = instance
        self._indexes: Dict[Tuple[str, Tuple[str, ...]],
                            Dict[Value, Tuple[Oid, ...]]] = {}
        self.builds = 0
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        # Columnar arrays over the same instance, shared like the
        # indexes themselves (built lazily, patched by rebase).
        self._column_store: Optional[ColumnStore] = None

    def columns(self) -> ColumnStore:
        """The shared :class:`ColumnStore` over the pool's instance."""
        store = self._column_store
        if store is None or store.instance is not self.instance:
            store = ColumnStore(self.instance)
            self._column_store = store
        return store

    def __getstate__(self):
        # Columnar arrays rebuild lazily and cheaply; shipping them to
        # worker processes would double every envelope.
        state = dict(self.__dict__)
        state["_column_store"] = None
        return state

    def index_for(self, class_name: str, path: Tuple[str, ...]
                  ) -> Dict[Value, Tuple[Oid, ...]]:
        """The index for one (class, projection path), built on demand."""
        key = (class_name, path)
        index = self._indexes.get(key)
        if index is not None:
            return index
        started = time.perf_counter()
        built: Dict[Value, List[Oid]] = {}
        for oid in self.instance.objects_of(class_name):
            for value in _reached_values(self.instance, oid, path):
                built.setdefault(value, []).append(oid)
        frozen = {value: tuple(oids) for value, oids in built.items()}
        self._indexes[key] = frozen
        self.builds += 1
        _BUILD_SECONDS.labels(class_name).observe(
            time.perf_counter() - started)
        return frozen

    def prebuild(self, keys: Sequence[Tuple[str, Tuple[str, ...]]]) -> None:
        """Materialise a batch of indexes up front (planner entry point)."""
        for class_name, path in keys:
            self.index_for(class_name, path)

    def lookup(self, class_name: str, path: Tuple[str, ...],
               value: Value) -> Tuple[Oid, ...]:
        """Indexed probe: the oids whose ``path`` projects to ``value``."""
        self.lookups += 1
        candidates = self.index_for(class_name, path).get(value, ())
        if candidates:
            self.hits += 1
        else:
            self.misses += 1
        return candidates

    def indexed_keys(self) -> Tuple[Tuple[str, Tuple[str, ...]], ...]:
        return tuple(sorted(self._indexes))

    # ------------------------------------------------------------------
    # Delta maintenance
    # ------------------------------------------------------------------
    def path_dependencies(self, class_name: str, path: Tuple[str, ...]
                          ) -> Optional[frozenset]:
        """Classes whose object values the index over ``path`` may read.

        The first step always reads the indexed object's own value;
        every time the walk crosses a class-typed position it
        dereferences a *stored* object of that class, whose value the
        index therefore also depends on.  Returns ``None`` when the
        schema walk cannot determine the read set (conservative).
        """
        from ..model.schema import SchemaError
        from ..model.types import (ClassType, ListType, RecordType, SetType)
        schema = self.instance.schema
        deps = {class_name}
        try:
            current = schema.class_type(class_name)
        except SchemaError:
            return None
        for step in path:
            while isinstance(current, ClassType):
                deps.add(current.name)
                try:
                    current = schema.class_type(current.name)
                except SchemaError:
                    return None
            if step == ELEMENT_STEP:
                if not isinstance(current, (SetType, ListType)):
                    return None
                current = current.element
            else:
                if not (isinstance(current, RecordType)
                        and current.has_field(step)):
                    return None
                current = current.field_type(step)
        return frozenset(deps)

    def rebase(self, new_instance: Instance,
               removed: Mapping[str, Sequence[Oid]],
               added: Mapping[str, Sequence[Oid]],
               strict_removed: Optional[Mapping[str,
                                                Sequence[Oid]]] = None,
               strict_added: Optional[Mapping[str,
                                              Sequence[Oid]]] = None,
               changed_attrs: Optional[Mapping[Oid, Optional[frozenset]]]
               = None) -> Tuple[int, int]:
        """Point the pool at an updated instance, patching built indexes.

        ``removed``/``added`` list, per class, the oids whose reachable
        value set may have changed: the old entries to retract
        (computed over the *old* instance, still held by the pool) and
        the new entries to add.  For a delta this means the changed
        objects **plus their transitive referrers** on each side — an
        index path may dereference stored references, moving the entry
        of an object the delta never names.  An object's reached values
        depend only on objects reachable forward from it, so the
        referrer closure bounds exactly the entries that can move; the
        incremental engine (:mod:`repro.engine.incremental`) maintains
        that closure anyway and passes it here.  Oids absent from an
        instance contribute nothing on that side, so over-approximating
        either set is harmless.

        ``strict_removed``/``strict_added`` optionally narrow the work
        for *local* paths (ones that never dereference another class):
        a referrer's entry in such an index cannot move, so only the
        objects the delta itself names need patching — and with
        ``changed_attrs`` (per-oid differing labels, None for
        existence changes) an update that leaves the path's root
        attribute untouched is skipped entirely.

        An index whose path the schema walk cannot bound
        (:meth:`path_dependencies` returns None) is dropped and lazily
        rebuilt on next use.  Returns ``(maintained, dropped)`` counts.
        """
        maintained = 0
        dropped = []
        for (class_name, path), index in self._indexes.items():
            deps = self.path_dependencies(class_name, path)
            if deps is None:
                dropped.append((class_name, path))
                continue
            local = deps == {class_name}
            if local and strict_removed is not None \
                    and strict_added is not None:
                removed_here: Sequence[Oid] = [
                    oid for oid in strict_removed.get(class_name, ())
                    if _attr_touched(oid, path, changed_attrs)]
                added_here: Sequence[Oid] = [
                    oid for oid in strict_added.get(class_name, ())
                    if _attr_touched(oid, path, changed_attrs)]
            else:
                removed_here = removed.get(class_name, ())
                added_here = added.get(class_name, ())
            if not removed_here and not added_here:
                continue
            patched: Dict[Value, List[Oid]] = {
                value: list(oids) for value, oids in index.items()}
            for oid in removed_here:
                for value in _reached_values(self.instance, oid, path):
                    entry = patched.get(value)
                    if entry is not None and oid in entry:
                        entry.remove(oid)
                        if not entry:
                            del patched[value]
            for oid in added_here:
                for value in _reached_values(new_instance, oid, path):
                    entry = patched.setdefault(value, [])
                    if oid not in entry:
                        entry.append(oid)
            self._indexes[(class_name, path)] = {
                value: tuple(oids) for value, oids in patched.items()}
            maintained += 1
        for key in dropped:
            del self._indexes[key]
        store = self._column_store
        if store is not None:
            # Columns depend only on each object's *own* stored value,
            # so the strict per-class edit sets patch extents exactly;
            # without them, drop the touched classes for lazy rebuild.
            if strict_removed is not None and strict_added is not None:
                store.patch(new_instance, strict_removed, strict_added)
            else:
                store.refresh(new_instance,
                              set(removed) | set(added))
        self.instance = new_instance
        return maintained, len(dropped)


def _attr_touched(oid: Oid, path: Tuple[str, ...],
                  changed_attrs: Optional[Mapping[Oid,
                                                  Optional[frozenset]]]
                  ) -> bool:
    """Could a change to ``oid`` move its entry in a local-path index?

    A local path reads only the object's own stored value, starting at
    its first attribute; an update whose differing labels exclude it
    cannot move the entry.  Unknown changes (no map, or existence
    changes marked None) are conservatively touched.
    """
    if changed_attrs is None:
        return True
    attrs = changed_attrs.get(oid)
    if attrs is None:
        return True
    return bool(path) and path[0] in attrs


def _reached_values(instance: Instance, oid: Oid,
                    path: Tuple[str, ...]) -> Tuple[Value, ...]:
    """The distinct values ``oid`` reaches through ``path`` (build order).

    Shared by the initial index build and the in-place delta
    maintenance so both compute identical entry sets.
    """
    reached: List[Value] = [oid]
    for step in path:
        advanced: List[Value] = []
        if step == ELEMENT_STEP:
            for value in reached:
                if isinstance(value, (WolSet, WolList)):
                    advanced.extend(value)
        else:
            for value in reached:
                try:
                    advanced.append(project(value, step, instance))
                except EvalError:
                    continue  # this branch dies, others survive
        reached = advanced
        if not reached:
            break
    seen: set = set()
    distinct: List[Value] = []
    for value in reached:
        if value not in seen:
            seen.add(value)
            distinct.append(value)
    return tuple(distinct)


def shard_hash(oid: Oid) -> int:
    """The raw, process-stable partition hash of an object identity.

    Python's built-in ``hash`` is salted per process
    (``PYTHONHASHSEED``), so the hash is CRC-32 of the oid's textual
    form — stable across processes, runs and platforms.  Keyed oids
    render their key value and anonymous oids their serial, both of
    which survive pickling unchanged.  This is the single definition
    both :func:`shard_of` and the matcher's memoising shard filter use;
    a second copy would let the partitions silently diverge.
    """
    return zlib.crc32(str(oid).encode("utf-8"))


def shard_of(oid: Oid, shard_count: int) -> int:
    """The shard (``0 .. shard_count-1``) owning ``oid``.

    The parallel engine (:mod:`repro.engine.parallel`) partitions the
    candidates of a clause's driving membership generator by this
    function; every worker process must therefore agree on it (see
    :func:`shard_hash`).
    """
    if shard_count <= 1:
        return 0
    return shard_hash(oid) % shard_count


#: Plan step modes (computed statically by :mod:`repro.engine.planner`).
STEP_MEMBER_TEST = "member-test"
STEP_MEMBER_SCAN = "member-scan"
STEP_MEMBER_INDEX = "member-index"
STEP_IN_TEST = "in-test"
STEP_IN_GENERATE = "in-generate"
STEP_EQ_TEST = "eq-test"
STEP_EQ_BIND = "eq-bind"
STEP_COMPARE = "compare-test"


@dataclass(frozen=True)
class PlanStep:
    """One precompiled evaluation step of a clause body.

    The program planner classifies each atom once, statically — instead of
    the dynamic matcher re-deriving readiness (and re-discovering index
    selectors) for every partial binding.  ``binds`` lists the variables
    this step introduces; they are guaranteed unbound when the step runs.

    * ``member-index`` carries ``selector_path``/``selector_term``: the
      candidates come from an :class:`IndexPool` probe with the value of
      ``selector_term`` (bound by earlier steps) instead of an extent scan.
    * ``eq-bind`` carries ``eval_term`` (evaluable now) and
      ``pattern_term`` (the side being unified/bound).
    * ``shard`` (a ``(shard_index, shard_count)`` pair, set only by
      :func:`repro.engine.planner.shard_join_plan` on one membership
      generator per clause) restricts the step's candidates to the oids
      :func:`shard_of` assigns to ``shard_index`` — the unit of work
      distribution for parallel execution.  Because every solution binds
      the sharded atom to exactly one oid, the per-shard solution sets
      partition the sequential one.
    """

    atom: Atom
    mode: str
    binds: Tuple[str, ...] = ()
    selector_path: Optional[Tuple[str, ...]] = None
    selector_term: Optional[Term] = None
    eval_term: Optional[Term] = None
    pattern_term: Optional[Term] = None
    shard: Optional[Tuple[int, int]] = None


def unify_term(term: Term, value: Value, binding: Binding,
               instance: Optional[Instance]) -> Optional[Binding]:
    """Unify a term pattern against a concrete value.

    Returns an extended binding, or None when the unification fails.  The
    input binding is never mutated.
    """
    if isinstance(term, Var):
        bound = binding.get(term.name)
        if bound is None:
            extended = dict(binding)
            extended[term.name] = value
            return extended
        return binding if bound == value else None
    if isinstance(term, Const):
        return binding if term.value == value else None
    if isinstance(term, RecordTerm):
        if not isinstance(value, Record):
            return None
        if set(term.labels()) != set(value.labels()):
            return None
        current: Optional[Binding] = binding
        for label, sub in term.fields:
            current = unify_term(sub, value.get(label), current, instance)
            if current is None:
                return None
        return current
    if isinstance(term, VariantTerm):
        if not isinstance(value, Variant) or value.label != term.label:
            return None
        return unify_term(term.payload, value.value, binding, instance)
    if isinstance(term, SkolemTerm):
        if not (isinstance(value, Oid) and value.is_keyed
                and value.class_name == term.class_name):
            return None
        return _unify_skolem_args(term, value.key, binding, instance)
    if isinstance(term, Proj):
        # Projections are not invertible: only usable when evaluable.
        if not is_evaluable(term, binding):
            return None
        try:
            actual = evaluate(term, binding, instance)
        except EvalError:
            return None
        return binding if actual == value else None
    return None


def _unify_skolem_args(term: SkolemTerm, key: Value, binding: Binding,
                       instance: Optional[Instance]) -> Optional[Binding]:
    """Recover Skolem arguments from a keyed oid's key and unify them."""
    args = list(term.args)
    if not args:
        return binding if key == Record(()) else None
    if args[0][0] is None:
        if len(args) == 1:
            return unify_term(args[0][1], key, binding, instance)
        if not isinstance(key, Record):
            return None
        current: Optional[Binding] = binding
        for index, (_, sub) in enumerate(args):
            label = f"arg{index}"
            if not key.has(label):
                return None
            current = unify_term(sub, key.get(label), current, instance)
            if current is None:
                return None
        return current
    if not isinstance(key, Record):
        return None
    if set(key.labels()) != {label for label, _ in args}:
        return None
    current = binding
    for label, sub in args:
        current = unify_term(sub, key.get(label), current, instance)
        if current is None:
            return None
    return current


def _is_pattern(term: Term) -> bool:
    """Can ``term`` be driven by unification against a value?"""
    if isinstance(term, (Var, Const)):
        return True
    if isinstance(term, RecordTerm):
        return all(_is_pattern(sub) for _, sub in term.fields)
    if isinstance(term, VariantTerm):
        return _is_pattern(term.payload)
    if isinstance(term, SkolemTerm):
        return all(_is_pattern(sub) for _, sub in term.args)
    return False  # projections need evaluation


class Matcher:
    """Enumerates bindings satisfying a conjunction of atoms.

    ``prefer_tests`` enables the join-ordering heuristic: among ready
    atoms, run cheap tests before opening generators, pruning partial
    bindings as early as possible.  Disabling it (atoms processed in
    textual order, generators included) is the A2 ablation — the results
    are identical but the search explores more bindings.

    ``index_pool`` injects a shared :class:`IndexPool`; when omitted the
    matcher owns a private pool (the pre-planner behaviour, indexes built
    lazily per matcher).  ``run_plan`` executes a precompiled sequence of
    :class:`PlanStep` (a fixed atom order chosen once by the program
    planner) instead of re-deriving the order per binding.
    """

    def __init__(self, instance: Instance,
                 prefer_tests: bool = True,
                 use_indexes: bool = True,
                 index_pool: Optional[IndexPool] = None) -> None:
        self.instance = instance
        self.prefer_tests = prefer_tests
        self.use_indexes = use_indexes
        # Hash indexes turning equality joins over class extents into
        # lookups, keeping normal-form execution one-pass in spirit *and*
        # in cost.  Shared across clauses when a pool is injected.
        self.pool = index_pool if index_pool is not None else \
            IndexPool(instance)
        # Memoised CRC-32 shard hashes: a sharded run filters the same
        # extents once per clause, so each oid's hash (stringify +
        # CRC) is computed once per matcher, not clauses x shards
        # times.  The raw hash is cached (shard-count independent).
        self._shard_hashes: Dict[Oid, int] = {}
        # Private columnar arrays, used only when the pool tracks a
        # different instance than this matcher (see :meth:`columns`).
        self._own_columns: Optional[ColumnStore] = None

    def columns(self) -> ColumnStore:
        """Columnar arrays over this matcher's instance.

        Shared through the pool whenever the pool tracks the same
        instance (the planned/incremental configuration, where
        ``rebase`` keeps the arrays patched); otherwise a matcher-
        private store is built lazily.
        """
        pool = self.pool
        if pool.instance is self.instance:
            return pool.columns()
        store = self._own_columns
        if store is None or store.instance is not self.instance:
            store = ColumnStore(self.instance)
            self._own_columns = store
        return store

    # ------------------------------------------------------------------
    def solutions(self, atoms: Sequence[Atom],
                  initial: Optional[Binding] = None,
                  plan: Optional[Sequence[PlanStep]] = None
                  ) -> Iterator[Binding]:
        """All bindings extending ``initial`` that satisfy ``atoms``.

        With ``plan`` the atoms are processed in the fixed, precompiled
        order instead of the dynamic readiness order; the solution set is
        identical (differential tests enforce this).  A plan compiled
        without knowledge of ``initial``'s variables cannot honour them
        (its steps would re-bind them), so such calls fall back to the
        dynamic order rather than return wrong solutions.
        """
        if plan is not None:
            if not _plan_conflicts_with(plan, initial):
                yield from self.run_plan(plan, initial)
                return
        yield from self._solve(list(atoms), dict(initial or {}))

    def satisfiable(self, atoms: Sequence[Atom],
                    initial: Optional[Binding] = None,
                    plan: Optional[Sequence[PlanStep]] = None) -> bool:
        """True iff at least one satisfying binding exists.

        With ``plan`` (a precompiled step order whose ``initial_bound``
        matches ``initial``'s variables — the constraint auditor's head
        probe), the search runs the fixed order; mismatches fall back to
        the dynamic order via :meth:`solutions`.
        """
        for _ in self.solutions(atoms, initial, plan=plan):
            return True
        return False

    # ------------------------------------------------------------------
    def _solve(self, atoms: List[Atom],
               binding: Binding) -> Iterator[Binding]:
        if not atoms:
            yield binding
            return
        index = self._pick_ready(atoms, binding)
        if index is None:
            pending = ", ".join(str(a) for a in atoms)
            raise MatchError(
                f"no atom is ready under the current binding; "
                f"pending: {pending} (is the clause range-restricted?)")
        atom = atoms[index]
        rest = atoms[:index] + atoms[index + 1:]
        for extended in self._expand(atom, binding, rest):
            yield from self._solve(rest, extended)

    def _pick_ready(self, atoms: Sequence[Atom],
                    binding: Binding) -> Optional[int]:
        """Index of the best ready atom.

        Priority: tests (filter immediately) > binds (deterministic
        definitions — they never multiply bindings and make values
        available to index selectors) > generators (enumerations).
        """
        bind_index: Optional[int] = None
        generator_index: Optional[int] = None
        for index, atom in enumerate(atoms):
            readiness = self._readiness(atom, binding)
            if readiness == "test":
                return index
            if readiness is None:
                continue
            if not self.prefer_tests:
                return index
            if readiness == "bind":
                if bind_index is None:
                    bind_index = index
            elif generator_index is None:
                generator_index = index
        if bind_index is not None:
            return bind_index
        return generator_index

    def _readiness(self, atom: Atom, binding: Binding) -> Optional[str]:
        if isinstance(atom, MemberAtom):
            if is_evaluable(atom.element, binding):
                return "test"
            if _is_pattern(atom.element):
                return "generate"
            return None
        if isinstance(atom, InAtom):
            if not is_evaluable(atom.collection, binding):
                return None
            if is_evaluable(atom.element, binding):
                return "test"
            if _is_pattern(atom.element):
                return "generate"
            return None
        if isinstance(atom, EqAtom):
            left_ok = is_evaluable(atom.left, binding)
            right_ok = is_evaluable(atom.right, binding)
            if left_ok and right_ok:
                return "test"
            if left_ok and _is_pattern(atom.right):
                return "bind"
            if right_ok and _is_pattern(atom.left):
                return "bind"
            return None
        if isinstance(atom, (NeqAtom, LtAtom, LeqAtom)):
            if (is_evaluable(atom.left, binding)
                    and is_evaluable(atom.right, binding)):
                return "test"
            return None
        return None

    def _expand(self, atom: Atom, binding: Binding,
                rest: Sequence[Atom] = ()) -> Iterator[Binding]:
        if isinstance(atom, MemberAtom):
            if is_evaluable(atom.element, binding):
                value = self._try_eval(atom.element, binding)
                if (isinstance(value, Oid)
                        and value.class_name == atom.class_name
                        and self.instance.has_object(value)):
                    yield binding
                return
            candidates = self._member_candidates(atom, binding, rest)
            for oid in candidates:
                extended = unify_term(atom.element, oid, binding,
                                      self.instance)
                if extended is not None:
                    yield extended
            return
        if isinstance(atom, InAtom):
            collection = self._try_eval(atom.collection, binding)
            if not isinstance(collection, (WolSet, WolList)):
                return
            if is_evaluable(atom.element, binding):
                value = self._try_eval(atom.element, binding)
                if any(value == element for element in collection):
                    yield binding
                return
            for element in _deterministic(collection):
                extended = unify_term(atom.element, element, binding,
                                      self.instance)
                if extended is not None:
                    yield extended
            return
        if isinstance(atom, EqAtom):
            left_ok = is_evaluable(atom.left, binding)
            right_ok = is_evaluable(atom.right, binding)
            if left_ok and right_ok:
                left = self._try_eval(atom.left, binding)
                right = self._try_eval(atom.right, binding)
                if left is not None and left == right:
                    yield binding
                return
            if left_ok:
                value = self._try_eval(atom.left, binding)
                if value is None:
                    return
                extended = unify_term(atom.right, value, binding,
                                      self.instance)
            else:
                value = self._try_eval(atom.right, binding)
                if value is None:
                    return
                extended = unify_term(atom.left, value, binding,
                                      self.instance)
            if extended is not None:
                yield extended
            return
        if isinstance(atom, NeqAtom):
            left = self._try_eval(atom.left, binding)
            right = self._try_eval(atom.right, binding)
            if left is not None and right is not None and left != right:
                yield binding
            return
        if isinstance(atom, (LtAtom, LeqAtom)):
            left = self._try_eval(atom.left, binding)
            right = self._try_eval(atom.right, binding)
            if left is None or right is None:
                return
            try:
                holds = (left < right if isinstance(atom, LtAtom)
                         else left <= right)
            except TypeError:
                return
            if holds:
                yield binding
            return

    def _try_eval(self, term: Term, binding: Binding) -> Optional[Value]:
        try:
            return evaluate(term, binding, self.instance)
        except EvalError:
            return None

    # ------------------------------------------------------------------
    # Index-assisted generation
    # ------------------------------------------------------------------
    def _member_candidates(self, atom: MemberAtom, binding: Binding,
                           rest: Sequence[Atom]) -> Sequence[Oid]:
        """Candidate oids for a membership generator.

        When the pending atoms determine the value of some projection
        path of the element (``X.country.name = <bound>``), a lazily
        built hash index narrows the candidates to the matching oids —
        the equality join becomes a lookup instead of a scan.
        """
        extent = self.instance.objects_of(atom.class_name)
        if not self.use_indexes or not isinstance(atom.element, Var):
            return extent
        selector = self._find_selector(atom.element.name, binding, rest)
        if selector is None:
            return extent
        path, value = selector
        return self.pool.lookup(atom.class_name, path, value)

    def _find_selector(self, element: str, binding: Binding,
                       rest: Sequence[Atom]
                       ) -> Optional[Tuple[Tuple[str, ...], Value]]:
        """A (projection path, known value) pair selecting the element.

        Follows chains of SNF definitions ``V = X.a``, ``W = V.b`` ...
        from the element variable, and values known either from the
        binding or from constant equations among the pending atoms.
        """
        chains: Dict[str, Tuple[str, ...]] = {element: ()}
        constants: Dict[str, Value] = {}
        for atom in rest:
            if (isinstance(atom, EqAtom) and isinstance(atom.left, Var)
                    and isinstance(atom.right, Const)):
                constants[atom.left.name] = atom.right.value
            elif (isinstance(atom, EqAtom)
                    and isinstance(atom.left, Const)
                    and isinstance(atom.right, Var)):
                constants[atom.right.name] = atom.left.value

        best: Optional[Tuple[Tuple[str, ...], Value]] = None
        for _ in range(4):  # bounded chain depth
            progressed = False
            for atom in rest:
                if not (isinstance(atom, EqAtom)
                        and isinstance(atom.left, Var)
                        and isinstance(atom.right, Proj)
                        and isinstance(atom.right.subject, Var)):
                    continue
                subject = atom.right.subject.name
                defined = atom.left.name
                if subject not in chains or defined in chains:
                    continue
                chains[defined] = chains[subject] + (atom.right.attr,)
                progressed = True
                value = binding.get(defined, constants.get(defined))
                if value is not None and best is None:
                    best = (chains[defined], value)
            if best is not None or not progressed:
                break
        return best

    # ------------------------------------------------------------------
    # Planned execution
    # ------------------------------------------------------------------
    def run_plan(self, steps: Sequence[PlanStep],
                 initial: Optional[Binding] = None) -> Iterator[Binding]:
        """Execute a precompiled step sequence (fixed atom order).

        Each step's readiness, direction and index selector were resolved
        statically by the planner, so the hot loop does no atom
        re-classification, no term-evaluability walks and no per-binding
        selector discovery — just evaluation, unification and (indexed)
        candidate enumeration.

        ``initial``'s variables must have been declared to the planner
        (``plan_clause(..., initial_bound=...)``): a step compiled to
        *bind* a variable would silently overwrite a pre-bound value.
        Such mismatches raise :class:`MatchError`; use
        :meth:`solutions`, which falls back to the dynamic order instead.
        """
        steps = tuple(steps)
        if _plan_conflicts_with(steps, initial):
            raise MatchError(
                "plan boundness assumptions do not match the initial "
                "binding (re-plan with matching initial_bound, or use "
                "solutions() for the dynamic fallback)")
        yield from self._run_steps(steps, 0, dict(initial or {}))

    def run_plan_columnar(self, steps: Sequence[PlanStep],
                          initial: Optional[Binding] = None,
                          stats=None) -> Iterator[Binding]:
        """Execute a plan batch-at-a-time (the vectorized hot path).

        Same contract and same binding sequence as :meth:`run_plan` —
        the plan runs over whole candidate columns instead of one
        binding dict at a time, falling back per-step to the scalar
        path for steps the vectorizer cannot compile (see
        :func:`repro.engine.columnar.step_vectorizable`).  ``stats``
        optionally collects vectorized/fallback step and batch-size
        counters (``ExecutionStats``/``IncrementalStats`` shape).
        """
        steps = tuple(steps)
        if _plan_conflicts_with(steps, initial):
            raise MatchError(
                "plan boundness assumptions do not match the initial "
                "binding (re-plan with matching initial_bound, or use "
                "solutions() for the dynamic fallback)")
        from ..engine.columnar import stream_plan_columnar
        return stream_plan_columnar(self, steps, initial, stats)

    def run_plan_trusted(self, steps: Tuple[PlanStep, ...],
                         initial: Binding) -> Iterator[Binding]:
        """Execute a plan whose boundness the caller already verified.

        The per-call conflict check of :meth:`run_plan` is linear in
        the plan size — measurable overhead when a delta join runs one
        plan per seed oid.  Callers that compiled the plan themselves
        with exactly ``initial``'s variables as ``initial_bound`` (the
        incremental engine's seeded plans) may skip it.
        """
        yield from self._run_steps(steps, 0, dict(initial))

    def _run_steps(self, steps: Tuple[PlanStep, ...], position: int,
                   binding: Binding) -> Iterator[Binding]:
        if position == len(steps):
            yield binding
            return
        step = steps[position]
        following = position + 1
        for extended in self._expand_step(step, binding):
            yield from self._run_steps(steps, following, extended)

    def _expand_step(self, step: PlanStep,
                     binding: Binding) -> Iterator[Binding]:
        atom = step.atom
        mode = step.mode
        if mode == STEP_MEMBER_SCAN or mode == STEP_MEMBER_INDEX:
            assert isinstance(atom, MemberAtom)
            if mode == STEP_MEMBER_INDEX and self.use_indexes:
                selector = step.selector_term
                if isinstance(selector, Var):
                    value = binding.get(selector.name)
                elif isinstance(selector, Const):
                    value = selector.value
                else:
                    # Constraint plans select on projection chains
                    # (``X.a.b = Y.a.b``); evaluate under the binding.
                    # An EvalError means no object can pass the equality
                    # test either, so the empty candidate set is exact.
                    value = self._try_eval(selector, binding)
                if value is None:
                    candidates: Sequence[Oid] = ()
                else:
                    candidates = self.pool.lookup(
                        atom.class_name, step.selector_path, value)
            else:
                candidates = self.instance.objects_of(atom.class_name)
            if step.shard is not None:
                index, count = step.shard
                hashes = self._shard_hashes
                filtered = []
                for oid in candidates:
                    value = hashes.get(oid)
                    if value is None:
                        value = shard_hash(oid)
                        hashes[oid] = value
                    if value % count == index:
                        filtered.append(oid)
                candidates = filtered
            element = atom.element
            if isinstance(element, Var):
                name = element.name
                for oid in candidates:
                    extended = dict(binding)
                    extended[name] = oid
                    yield extended
            else:
                for oid in candidates:
                    extended = unify_term(element, oid, binding,
                                          self.instance)
                    if extended is not None:
                        yield extended
            return
        if mode == STEP_MEMBER_TEST:
            assert isinstance(atom, MemberAtom)
            element = atom.element
            if isinstance(element, Var):
                value = binding.get(element.name)
            else:
                value = self._try_eval(element, binding)
            if (isinstance(value, Oid)
                    and value.class_name == atom.class_name
                    and self.instance.has_object(value)):
                yield binding
            return
        if mode == STEP_IN_GENERATE:
            assert isinstance(atom, InAtom)
            collection = self._try_eval(atom.collection, binding)
            if not isinstance(collection, (WolSet, WolList)):
                return
            element = atom.element
            if isinstance(element, Var):
                name = element.name
                for value in _deterministic(collection):
                    extended = dict(binding)
                    extended[name] = value
                    yield extended
            else:
                for value in _deterministic(collection):
                    extended = unify_term(element, value, binding,
                                          self.instance)
                    if extended is not None:
                        yield extended
            return
        if mode == STEP_IN_TEST:
            assert isinstance(atom, InAtom)
            collection = self._try_eval(atom.collection, binding)
            if not isinstance(collection, (WolSet, WolList)):
                return
            value = self._try_eval(atom.element, binding)
            if any(value == element for element in collection):
                yield binding
            return
        if mode == STEP_EQ_BIND:
            value = self._try_eval(step.eval_term, binding)
            if value is None:
                return
            pattern = step.pattern_term
            if isinstance(pattern, Var):
                extended = dict(binding)
                extended[pattern.name] = value
                yield extended
                return
            extended = unify_term(pattern, value, binding, self.instance)
            if extended is not None:
                yield extended
            return
        if mode == STEP_EQ_TEST:
            assert isinstance(atom, EqAtom)
            left = self._try_eval(atom.left, binding)
            right = self._try_eval(atom.right, binding)
            if left is not None and left == right:
                yield binding
            return
        if mode == STEP_COMPARE:
            yield from self._expand(atom, binding)
            return
        raise MatchError(f"unknown plan step mode {mode!r}")


def _plan_conflicts_with(steps: Sequence[PlanStep],
                         initial: Optional[Binding]) -> bool:
    """True when the plan's boundness assumptions don't match ``initial``.

    Two mismatch directions: a step *re-binds* a variable the caller
    pre-bound (the plan was compiled without it), or a step *requires* a
    variable that neither the caller nor any earlier step binds (the plan
    was compiled with an ``initial_bound`` the caller didn't supply).
    Either way the steps would silently compute wrong solutions.
    """
    pre_bound = set(initial or ())
    available = set(pre_bound)
    for step in steps:
        binds = set(step.binds)
        if binds & pre_bound:
            return True
        required = set(step.atom.variables()) - binds
        if step.selector_term is not None:
            required |= step.selector_term.variables()
        if not required <= available:
            return True
        available |= binds
    return False


def _deterministic(collection) -> List[Value]:
    """Iterate a collection in a deterministic order (the single
    definition lives in :mod:`repro.semantics.columns` so pre-sorted
    set columns and the scalar path can never diverge)."""
    return deterministic_order(collection)
