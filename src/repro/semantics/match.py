"""Conjunctive matching: enumerate variable bindings satisfying atoms.

This is the shared evaluation core of the satisfaction checker
(:mod:`repro.semantics.satisfaction`) and the one-pass execution engine
(:mod:`repro.engine.executor`): given a set of atoms and an instance,
enumerate all bindings of the atoms' variables that make every atom true.

Atoms are processed in a data-driven order: at each step the matcher picks
an atom that is *ready* under the current binding — one that can either be
tested outright or used to generate/propagate bindings.  Range-restricted
clauses always admit such an order; if no atom is ever ready the clause is
reported as non-evaluable rather than silently dropped.

Pattern unification against values supports the invertible positions of
:mod:`repro.lang.range_restriction`: variables, record fields, variant
payloads and Skolem arguments (recovering arguments from keyed identities).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..lang.ast import (Atom, Const, EqAtom, InAtom, LeqAtom, LtAtom,
                        MemberAtom, NeqAtom, Proj, RecordTerm, SkolemTerm,
                        Term, Var, VariantTerm)
from ..model.instance import Instance
from ..model.values import Oid, Record, Value, Variant, WolList, WolSet
from .eval import (Binding, EvalError, evaluate, is_evaluable, project,
                   skolem_key)


class MatchError(Exception):
    """Raised when atoms cannot be ordered for evaluation."""


def unify_term(term: Term, value: Value, binding: Binding,
               instance: Optional[Instance]) -> Optional[Binding]:
    """Unify a term pattern against a concrete value.

    Returns an extended binding, or None when the unification fails.  The
    input binding is never mutated.
    """
    if isinstance(term, Var):
        bound = binding.get(term.name)
        if bound is None:
            extended = dict(binding)
            extended[term.name] = value
            return extended
        return binding if bound == value else None
    if isinstance(term, Const):
        return binding if term.value == value else None
    if isinstance(term, RecordTerm):
        if not isinstance(value, Record):
            return None
        if set(term.labels()) != set(value.labels()):
            return None
        current: Optional[Binding] = binding
        for label, sub in term.fields:
            current = unify_term(sub, value.get(label), current, instance)
            if current is None:
                return None
        return current
    if isinstance(term, VariantTerm):
        if not isinstance(value, Variant) or value.label != term.label:
            return None
        return unify_term(term.payload, value.value, binding, instance)
    if isinstance(term, SkolemTerm):
        if not (isinstance(value, Oid) and value.is_keyed
                and value.class_name == term.class_name):
            return None
        return _unify_skolem_args(term, value.key, binding, instance)
    if isinstance(term, Proj):
        # Projections are not invertible: only usable when evaluable.
        if not is_evaluable(term, binding):
            return None
        try:
            actual = evaluate(term, binding, instance)
        except EvalError:
            return None
        return binding if actual == value else None
    return None


def _unify_skolem_args(term: SkolemTerm, key: Value, binding: Binding,
                       instance: Optional[Instance]) -> Optional[Binding]:
    """Recover Skolem arguments from a keyed oid's key and unify them."""
    args = list(term.args)
    if not args:
        return binding if key == Record(()) else None
    if args[0][0] is None:
        if len(args) == 1:
            return unify_term(args[0][1], key, binding, instance)
        if not isinstance(key, Record):
            return None
        current: Optional[Binding] = binding
        for index, (_, sub) in enumerate(args):
            label = f"arg{index}"
            if not key.has(label):
                return None
            current = unify_term(sub, key.get(label), current, instance)
            if current is None:
                return None
        return current
    if not isinstance(key, Record):
        return None
    if set(key.labels()) != {label for label, _ in args}:
        return None
    current = binding
    for label, sub in args:
        current = unify_term(sub, key.get(label), current, instance)
        if current is None:
            return None
    return current


def _is_pattern(term: Term) -> bool:
    """Can ``term`` be driven by unification against a value?"""
    if isinstance(term, (Var, Const)):
        return True
    if isinstance(term, RecordTerm):
        return all(_is_pattern(sub) for _, sub in term.fields)
    if isinstance(term, VariantTerm):
        return _is_pattern(term.payload)
    if isinstance(term, SkolemTerm):
        return all(_is_pattern(sub) for _, sub in term.args)
    return False  # projections need evaluation


class Matcher:
    """Enumerates bindings satisfying a conjunction of atoms.

    ``prefer_tests`` enables the join-ordering heuristic: among ready
    atoms, run cheap tests before opening generators, pruning partial
    bindings as early as possible.  Disabling it (atoms processed in
    textual order, generators included) is the A2 ablation — the results
    are identical but the search explores more bindings.
    """

    def __init__(self, instance: Instance,
                 prefer_tests: bool = True,
                 use_indexes: bool = True) -> None:
        self.instance = instance
        self.prefer_tests = prefer_tests
        self.use_indexes = use_indexes
        # Lazily-built hash indexes: (class, attribute path) -> value ->
        # matching oids.  These turn equality joins over class extents
        # into hash lookups, keeping normal-form execution one-pass in
        # spirit *and* in cost.
        self._path_index: Dict[Tuple[str, Tuple[str, ...]],
                               Dict[Value, Tuple[Oid, ...]]] = {}

    # ------------------------------------------------------------------
    def solutions(self, atoms: Sequence[Atom],
                  initial: Optional[Binding] = None) -> Iterator[Binding]:
        """All bindings extending ``initial`` that satisfy ``atoms``."""
        yield from self._solve(list(atoms), dict(initial or {}))

    def satisfiable(self, atoms: Sequence[Atom],
                    initial: Optional[Binding] = None) -> bool:
        """True iff at least one satisfying binding exists."""
        for _ in self.solutions(atoms, initial):
            return True
        return False

    # ------------------------------------------------------------------
    def _solve(self, atoms: List[Atom],
               binding: Binding) -> Iterator[Binding]:
        if not atoms:
            yield binding
            return
        index = self._pick_ready(atoms, binding)
        if index is None:
            pending = ", ".join(str(a) for a in atoms)
            raise MatchError(
                f"no atom is ready under the current binding; "
                f"pending: {pending} (is the clause range-restricted?)")
        atom = atoms[index]
        rest = atoms[:index] + atoms[index + 1:]
        for extended in self._expand(atom, binding, rest):
            yield from self._solve(rest, extended)

    def _pick_ready(self, atoms: Sequence[Atom],
                    binding: Binding) -> Optional[int]:
        """Index of the best ready atom.

        Priority: tests (filter immediately) > binds (deterministic
        definitions — they never multiply bindings and make values
        available to index selectors) > generators (enumerations).
        """
        bind_index: Optional[int] = None
        generator_index: Optional[int] = None
        for index, atom in enumerate(atoms):
            readiness = self._readiness(atom, binding)
            if readiness == "test":
                return index
            if readiness is None:
                continue
            if not self.prefer_tests:
                return index
            if readiness == "bind":
                if bind_index is None:
                    bind_index = index
            elif generator_index is None:
                generator_index = index
        if bind_index is not None:
            return bind_index
        return generator_index

    def _readiness(self, atom: Atom, binding: Binding) -> Optional[str]:
        if isinstance(atom, MemberAtom):
            if is_evaluable(atom.element, binding):
                return "test"
            if _is_pattern(atom.element):
                return "generate"
            return None
        if isinstance(atom, InAtom):
            if not is_evaluable(atom.collection, binding):
                return None
            if is_evaluable(atom.element, binding):
                return "test"
            if _is_pattern(atom.element):
                return "generate"
            return None
        if isinstance(atom, EqAtom):
            left_ok = is_evaluable(atom.left, binding)
            right_ok = is_evaluable(atom.right, binding)
            if left_ok and right_ok:
                return "test"
            if left_ok and _is_pattern(atom.right):
                return "bind"
            if right_ok and _is_pattern(atom.left):
                return "bind"
            return None
        if isinstance(atom, (NeqAtom, LtAtom, LeqAtom)):
            if (is_evaluable(atom.left, binding)
                    and is_evaluable(atom.right, binding)):
                return "test"
            return None
        return None

    def _expand(self, atom: Atom, binding: Binding,
                rest: Sequence[Atom] = ()) -> Iterator[Binding]:
        if isinstance(atom, MemberAtom):
            if is_evaluable(atom.element, binding):
                value = self._try_eval(atom.element, binding)
                if (isinstance(value, Oid)
                        and value.class_name == atom.class_name
                        and self.instance.has_object(value)):
                    yield binding
                return
            candidates = self._member_candidates(atom, binding, rest)
            for oid in candidates:
                extended = unify_term(atom.element, oid, binding,
                                      self.instance)
                if extended is not None:
                    yield extended
            return
        if isinstance(atom, InAtom):
            collection = self._try_eval(atom.collection, binding)
            if not isinstance(collection, (WolSet, WolList)):
                return
            if is_evaluable(atom.element, binding):
                value = self._try_eval(atom.element, binding)
                if any(value == element for element in collection):
                    yield binding
                return
            for element in _deterministic(collection):
                extended = unify_term(atom.element, element, binding,
                                      self.instance)
                if extended is not None:
                    yield extended
            return
        if isinstance(atom, EqAtom):
            left_ok = is_evaluable(atom.left, binding)
            right_ok = is_evaluable(atom.right, binding)
            if left_ok and right_ok:
                left = self._try_eval(atom.left, binding)
                right = self._try_eval(atom.right, binding)
                if left is not None and left == right:
                    yield binding
                return
            if left_ok:
                value = self._try_eval(atom.left, binding)
                if value is None:
                    return
                extended = unify_term(atom.right, value, binding,
                                      self.instance)
            else:
                value = self._try_eval(atom.right, binding)
                if value is None:
                    return
                extended = unify_term(atom.left, value, binding,
                                      self.instance)
            if extended is not None:
                yield extended
            return
        if isinstance(atom, NeqAtom):
            left = self._try_eval(atom.left, binding)
            right = self._try_eval(atom.right, binding)
            if left is not None and right is not None and left != right:
                yield binding
            return
        if isinstance(atom, (LtAtom, LeqAtom)):
            left = self._try_eval(atom.left, binding)
            right = self._try_eval(atom.right, binding)
            if left is None or right is None:
                return
            try:
                holds = (left < right if isinstance(atom, LtAtom)
                         else left <= right)
            except TypeError:
                return
            if holds:
                yield binding
            return

    def _try_eval(self, term: Term, binding: Binding) -> Optional[Value]:
        try:
            return evaluate(term, binding, self.instance)
        except EvalError:
            return None

    # ------------------------------------------------------------------
    # Index-assisted generation
    # ------------------------------------------------------------------
    def _member_candidates(self, atom: MemberAtom, binding: Binding,
                           rest: Sequence[Atom]) -> Sequence[Oid]:
        """Candidate oids for a membership generator.

        When the pending atoms determine the value of some projection
        path of the element (``X.country.name = <bound>``), a lazily
        built hash index narrows the candidates to the matching oids —
        the equality join becomes a lookup instead of a scan.
        """
        extent = self.instance.objects_of(atom.class_name)
        if not self.use_indexes or not isinstance(atom.element, Var):
            return extent
        selector = self._find_selector(atom.element.name, binding, rest)
        if selector is None:
            return extent
        path, value = selector
        index = self._index_for(atom.class_name, path)
        return index.get(value, ())

    def _find_selector(self, element: str, binding: Binding,
                       rest: Sequence[Atom]
                       ) -> Optional[Tuple[Tuple[str, ...], Value]]:
        """A (projection path, known value) pair selecting the element.

        Follows chains of SNF definitions ``V = X.a``, ``W = V.b`` ...
        from the element variable, and values known either from the
        binding or from constant equations among the pending atoms.
        """
        chains: Dict[str, Tuple[str, ...]] = {element: ()}
        constants: Dict[str, Value] = {}
        for atom in rest:
            if (isinstance(atom, EqAtom) and isinstance(atom.left, Var)
                    and isinstance(atom.right, Const)):
                constants[atom.left.name] = atom.right.value
            elif (isinstance(atom, EqAtom)
                    and isinstance(atom.left, Const)
                    and isinstance(atom.right, Var)):
                constants[atom.right.name] = atom.left.value

        best: Optional[Tuple[Tuple[str, ...], Value]] = None
        for _ in range(4):  # bounded chain depth
            progressed = False
            for atom in rest:
                if not (isinstance(atom, EqAtom)
                        and isinstance(atom.left, Var)
                        and isinstance(atom.right, Proj)
                        and isinstance(atom.right.subject, Var)):
                    continue
                subject = atom.right.subject.name
                defined = atom.left.name
                if subject not in chains or defined in chains:
                    continue
                chains[defined] = chains[subject] + (atom.right.attr,)
                progressed = True
                value = binding.get(defined, constants.get(defined))
                if value is not None and best is None:
                    best = (chains[defined], value)
            if best is not None or not progressed:
                break
        return best

    def _index_for(self, class_name: str, path: Tuple[str, ...]
                   ) -> Dict[Value, Tuple[Oid, ...]]:
        key = (class_name, path)
        index = self._path_index.get(key)
        if index is not None:
            return index
        built: Dict[Value, List[Oid]] = {}
        for oid in self.instance.objects_of(class_name):
            value: Optional[Value] = oid
            for attr in path:
                try:
                    value = project(value, attr, self.instance)
                except EvalError:
                    value = None
                    break
            if value is not None:
                built.setdefault(value, []).append(oid)
        frozen = {value: tuple(oids) for value, oids in built.items()}
        self._path_index[key] = frozen
        return frozen


def _deterministic(collection) -> List[Value]:
    """Iterate a collection in a deterministic order."""
    if isinstance(collection, WolList):
        return list(collection)
    return sorted(collection, key=str)
