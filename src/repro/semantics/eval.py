"""Term evaluation against a database instance.

Evaluates WOL terms to values under a variable binding, dereferencing object
identities for projections (the paper's ``x.a`` notation) and interpreting
Skolem terms as keyed object identities: ``Mk_C(args)`` denotes the identity
uniquely determined by the class and the argument values, so equal arguments
give equal identities and distinct arguments give distinct identities —
exactly the injectivity the paper requires of Skolem functions.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..lang.ast import (Const, Proj, RecordTerm, SkolemTerm, Term, Var,
                        VariantTerm)
from ..model.instance import Instance, InstanceError
from ..model.values import Oid, Record, Value, Variant

#: A variable binding: variable name -> value.
Binding = Dict[str, Value]


class EvalError(Exception):
    """Raised when a term cannot be evaluated (unbound variable, bad
    projection...)."""


def skolem_key(class_name: str, args) -> Value:
    """The key value packed into a Skolem-generated object identity.

    * a single positional argument is the key itself,
    * several positional arguments pack into a record ``arg0``, ``arg1``...
    * named arguments pack into a record of those names.

    The packing is injective, which makes ``Oid.keyed`` faithful to the
    paper's Skolem semantics.
    """
    values = list(args)
    if not values:
        return Record(())
    if values[0][0] is None:
        if len(values) == 1:
            return values[0][1]
        return Record(tuple(
            (f"arg{index}", value)
            for index, (_, value) in enumerate(values)))
    return Record(tuple((label, value) for label, value in values))


def is_evaluable(term: Term, binding: Mapping[str, Value]) -> bool:
    """True when every variable of ``term`` is bound.

    Evaluation may still fail (e.g. projecting a missing attribute), but
    that is then a genuine error rather than an ordering problem.
    """
    return all(name in binding for name in term.variables())


def evaluate(term: Term, binding: Mapping[str, Value],
             instance: Optional[Instance] = None) -> Value:
    """Evaluate ``term`` to a value.

    ``instance`` supplies the valuation used to dereference object
    identities in projections; a projection off an oid without an instance
    is an :class:`EvalError`.
    """
    if isinstance(term, Var):
        try:
            return binding[term.name]
        except KeyError:
            raise EvalError(f"unbound variable {term.name}") from None
    if isinstance(term, Const):
        return term.value
    if isinstance(term, Proj):
        subject = evaluate(term.subject, binding, instance)
        return project(subject, term.attr, instance)
    if isinstance(term, VariantTerm):
        return Variant(term.label,
                       evaluate(term.payload, binding, instance))
    if isinstance(term, RecordTerm):
        return Record(tuple(
            (label, evaluate(value, binding, instance))
            for label, value in term.fields))
    if isinstance(term, SkolemTerm):
        args = tuple(
            (label, evaluate(value, binding, instance))
            for label, value in term.args)
        return Oid.keyed(term.class_name, skolem_key(term.class_name, args))
    raise EvalError(f"cannot evaluate term {term!r}")


def project(subject: Value, attr: str,
            instance: Optional[Instance]) -> Value:
    """Project ``attr`` from ``subject``, dereferencing oids."""
    if isinstance(subject, Oid):
        if instance is None:
            raise EvalError(
                f"cannot dereference {subject} without an instance")
        try:
            subject = instance.value_of(subject)
        except InstanceError as exc:
            raise EvalError(str(exc)) from exc
    if not isinstance(subject, Record):
        raise EvalError(f"cannot project {attr!r} from non-record value")
    if not subject.has(attr):
        raise EvalError(f"record has no attribute {attr!r}")
    return subject.get(attr)
