"""Columnar instance representation (the vectorized executor's layout).

A :class:`ColumnStore` shreds an :class:`~repro.model.instance.Instance`
into per-class arrays, built lazily the first time the vectorized plan
executor (:mod:`repro.engine.columnar`) touches a class:

* an **extent array** of oids in instance insertion order, plus an
  intern table mapping each live oid to its integer row;
* **scalar attribute columns**: one list per ``(class, attribute)``,
  aligned with the extent rows, holding the stored field value or
  :data:`MISSING` where the object lacks the attribute;
* **set columns** for collection-valued attributes: a flattened values
  array with per-row ``(start, length)`` offsets, each row's elements
  pre-sorted into the matcher's deterministic order (so a vectorized
  ``in``-generator never re-sorts per binding);
* **shard codes**: each row's CRC-32 partition hash, so parallel shard
  filters become array masks instead of per-oid hashing.

The store is *patchable under deltas*: :meth:`patch` applies exactly the
edit order of :meth:`repro.evolution.delta.Delta.apply_to` — deletions
tombstone rows, updates rewrite columns in place (dict insertion order
keeps the row position), insertions append — so a patched extent stays
byte-identical to a rebuild from the updated instance.  When the caller
cannot supply the strict per-class edit sets, :meth:`refresh` drops the
touched classes for lazy rebuild instead.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..model.instance import Instance
from ..model.values import Oid, Record, Value, WolList, WolSet


class _Missing:
    """Sentinel for "no value here" (distinct from any WOL value)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<missing>"


#: Column entry marking an absent attribute / failed projection.  The
#: vectorized executor treats it exactly like the scalar matcher treats
#: an :class:`~repro.semantics.eval.EvalError`: the row is dropped.
MISSING = _Missing()


def deterministic_order(collection) -> List[Value]:
    """A collection's elements in the matcher's deterministic order.

    Lists keep their order, sets sort by textual form — the same rule
    as ``Matcher._deterministic``, shared here so pre-sorted set
    columns and the scalar path can never diverge.
    """
    if isinstance(collection, WolList):
        return list(collection)
    if isinstance(collection, WolSet):
        elements = collection.elements
        if len(elements) < 2:
            return list(elements)
        return sorted(elements, key=str)
    return sorted(collection, key=str)


class _SetColumn:
    """One flattened collection column: values + per-row offsets.

    In-place row updates append the new elements at the tail and
    repoint the row's offsets; the hole left behind is never read.
    """

    __slots__ = ("values", "starts", "lengths")

    def __init__(self) -> None:
        self.values: List[Value] = []
        self.starts: List[int] = []
        self.lengths: List[int] = []

    def append_row(self, elements: Sequence[Value]) -> None:
        self.starts.append(len(self.values))
        self.lengths.append(len(elements))
        self.values.extend(elements)

    def rewrite_row(self, row: int, elements: Sequence[Value]) -> None:
        self.starts[row] = len(self.values)
        self.lengths[row] = len(elements)
        self.values.extend(elements)

    def slice_of(self, row: int) -> List[Value]:
        start = self.starts[row]
        return self.values[start:start + self.lengths[row]]


class _ClassColumns:
    """The columnar state of one class (rows = raw extent positions)."""

    __slots__ = ("oids", "rows", "alive", "live", "scalars", "sets",
                 "set_lens", "codes", "_extent", "_extent_rows", "_shards")

    def __init__(self, oids: Sequence[Oid]) -> None:
        #: Raw rows in insertion order; tombstoned rows stay in place.
        self.oids: List[Oid] = list(oids)
        #: Intern table: live oid -> row (tombstoned oids are evicted).
        self.rows: Dict[Oid, int] = {
            oid: row for row, oid in enumerate(self.oids)}
        self.alive: List[bool] = [True] * len(self.oids)
        self.live: int = len(self.oids)
        self.scalars: Dict[str, List[Value]] = {}
        self.sets: Dict[str, _SetColumn] = {}
        #: Element-count-only columns (no flattened values): enough for
        #: multiplicity-expansion stages, far cheaper to build.
        self.set_lens: Dict[str, List[int]] = {}
        self.codes: Optional[List[int]] = None
        self._extent: Optional[List[Oid]] = None
        self._extent_rows: Optional[List[int]] = None
        self._shards: Dict[Tuple[int, int], List[Oid]] = {}

    def extent(self) -> List[Oid]:
        cached = self._extent
        if cached is None:
            if self.live == len(self.oids):
                cached = list(self.oids)
            else:
                alive = self.alive
                cached = [oid for row, oid in enumerate(self.oids)
                          if alive[row]]
            self._extent = cached
        return cached

    def extent_rows(self) -> List[int]:
        """The raw row index of each :meth:`extent` entry, aligned."""
        cached = self._extent_rows
        if cached is None:
            if self.live == len(self.oids):
                cached = list(range(len(self.oids)))
            else:
                alive = self.alive
                cached = [row for row in range(len(self.oids))
                          if alive[row]]
            self._extent_rows = cached
        return cached

    def invalidate_views(self) -> None:
        self._extent = None
        self._extent_rows = None
        self._shards.clear()


def _scalar_entry(value: Value, attr: str) -> Value:
    if isinstance(value, Record) and value.has(attr):
        return value.get(attr)
    return MISSING


def _set_entry(value: Value, attr: str) -> List[Value]:
    if isinstance(value, Record) and value.has(attr):
        field = value.get(attr)
        if isinstance(field, (WolSet, WolList)):
            return deterministic_order(field)
    return []


def _set_len_entry(value: Value, attr: str) -> int:
    if isinstance(value, Record) and value.has(attr):
        field = value.get(attr)
        if isinstance(field, (WolSet, WolList)):
            return len(field)
    return 0


class ColumnStore:
    """Per-class columnar arrays over one instance, built lazily."""

    def __init__(self, instance: Instance) -> None:
        self.instance = instance
        self._classes: Dict[str, _ClassColumns] = {}
        #: Maintenance counters (observability; never semantics).
        self.classes_built = 0
        self.columns_built = 0
        self.rows_patched = 0

    # ------------------------------------------------------------------
    # Lazy construction
    # ------------------------------------------------------------------
    def _class(self, class_name: str) -> _ClassColumns:
        columns = self._classes.get(class_name)
        if columns is None:
            columns = _ClassColumns(self.instance.objects_of(class_name))
            self._classes[class_name] = columns
            self.classes_built += 1
        return columns

    def extent(self, class_name: str) -> List[Oid]:
        """The live oids of one class, in instance insertion order."""
        return self._class(class_name).extent()

    def row_map(self, class_name: str) -> Dict[Oid, int]:
        """The intern table: live oid -> raw row position."""
        return self._class(class_name).rows

    def extent_rows(self, class_name: str) -> List[int]:
        """Raw row indices aligned with :meth:`extent` — the batch
        executor threads these alongside scan-bound oid columns so
        downstream gathers index arrays instead of hashing oids."""
        return self._class(class_name).extent_rows()

    def scalar_column(self, class_name: str, attr: str) -> List[Value]:
        """The per-row values of one attribute (:data:`MISSING` gaps)."""
        columns = self._class(class_name)
        column = columns.scalars.get(attr)
        if column is None:
            if columns.live == len(columns.oids):
                # No tombstones: the raw rows are exactly the
                # valuation dict in iteration order (updates rewrite
                # in place, insertions append), so build straight off
                # the stored values without per-oid hash lookups.
                column = [
                    value._index.get(attr, MISSING)
                    if isinstance(value, Record) else MISSING
                    for value in
                    self.instance.valuations[class_name].values()]
            else:
                value_of = self.instance.value_of
                alive = columns.alive
                column = [
                    _scalar_entry(value_of(oid), attr) if alive[row]
                    else MISSING
                    for row, oid in enumerate(columns.oids)]
            columns.scalars[attr] = column
            self.columns_built += 1
        return column

    def _set_column(self, class_name: str, attr: str) -> _SetColumn:
        columns = self._class(class_name)
        column = columns.sets.get(attr)
        if column is None:
            column = _SetColumn()
            if columns.live == len(columns.oids):
                # Tombstone-free fast path (see ``scalar_column``),
                # with the append inlined: per row one dict probe, one
                # sort and three list appends.
                values = column.values
                starts = column.starts
                lengths = column.lengths
                for value in self.instance.valuations[class_name].values():
                    field = (value._index.get(attr)
                             if isinstance(value, Record) else None)
                    starts.append(len(values))
                    if isinstance(field, (WolSet, WolList)):
                        elements = deterministic_order(field)
                        lengths.append(len(elements))
                        values.extend(elements)
                    else:
                        lengths.append(0)
            else:
                value_of = self.instance.value_of
                alive = columns.alive
                for row, oid in enumerate(columns.oids):
                    column.append_row(
                        _set_entry(value_of(oid), attr) if alive[row]
                        else ())
            columns.sets[attr] = column
            self.columns_built += 1
        return column

    def set_lengths(self, class_name: str, attr: str) -> List[int]:
        """Per-row element counts of one collection attribute.

        Multiplicity-only consumers (the fused dead-generator stage)
        never look at the elements, so this skips the flattened values
        array and the per-row deterministic ordering entirely.  Reuses
        a full set column when one is already built.
        """
        columns = self._class(class_name)
        full = columns.sets.get(attr)
        if full is not None:
            return full.lengths
        column = columns.set_lens.get(attr)
        if column is None:
            if columns.live == len(columns.oids):
                column = []
                append = column.append
                for value in self.instance.valuations[class_name].values():
                    field = (value._index.get(attr)
                             if isinstance(value, Record) else None)
                    append(len(field)
                           if isinstance(field, (WolSet, WolList)) else 0)
            else:
                value_of = self.instance.value_of
                alive = columns.alive
                column = [
                    _set_len_entry(value_of(oid), attr) if alive[row]
                    else 0
                    for row, oid in enumerate(columns.oids)]
            columns.set_lens[attr] = column
            self.columns_built += 1
        return column

    def set_slice(self, oid: Oid, attr: str) -> Sequence[Value]:
        """``oid``'s collection elements at ``attr``, pre-ordered.

        Empty when the object is gone, lacks the attribute, or holds a
        non-collection there — all cases where an ``in``-generator
        yields nothing.
        """
        columns = self._class(oid.class_name)
        row = columns.rows.get(oid)
        if row is None:
            return ()
        return self._set_column(oid.class_name, attr).slice_of(row)

    def shard_extent(self, class_name: str, shard_index: int,
                     shard_count: int) -> List[Oid]:
        """The class extent masked down to one shard's rows."""
        columns = self._class(class_name)
        key = (shard_index, shard_count)
        cached = columns._shards.get(key)
        if cached is not None:
            return cached
        codes = self._codes(class_name)
        alive = columns.alive
        cached = [oid for row, oid in enumerate(columns.oids)
                  if alive[row] and codes[row] % shard_count == shard_index]
        columns._shards[key] = cached
        return cached

    def _codes(self, class_name: str) -> List[int]:
        from .match import shard_hash  # circular at module load only
        columns = self._class(class_name)
        codes = columns.codes
        if codes is None:
            codes = [shard_hash(oid) for oid in columns.oids]
            columns.codes = codes
        return codes

    # ------------------------------------------------------------------
    # Delta maintenance
    # ------------------------------------------------------------------
    def patch(self, new_instance: Instance,
              strict_removed: Mapping[str, Sequence[Oid]],
              strict_added: Mapping[str, Sequence[Oid]]) -> None:
        """Patch built columns in place for one applied delta.

        ``strict_removed``/``strict_added`` are the per-class oids the
        delta itself names (the same strict sets
        :meth:`repro.semantics.match.IndexPool.rebase` uses): removed
        minus added = deletions, the intersection = in-place updates,
        added minus removed = insertions appended in ``strict_added``
        order — exactly ``Delta.apply_to``'s edit order, so patched
        extents match a rebuild from ``new_instance`` byte for byte.
        Classes the store never materialised are skipped (they build
        lazily from the new instance); any inconsistency observed while
        patching falls back to invalidating the class.
        """
        touched = set(strict_removed) | set(strict_added)
        for class_name in touched:
            columns = self._classes.get(class_name)
            if columns is None:
                continue
            removed = set(strict_removed.get(class_name, ()))
            added = tuple(strict_added.get(class_name, ()))
            added_set = set(added)
            ok = True
            for oid in removed:
                if oid in added_set:
                    continue  # update, handled below
                row = columns.rows.pop(oid, None)
                if row is None:
                    ok = False
                    break
                columns.alive[row] = False
                columns.live -= 1
                self.rows_patched += 1
            if ok:
                ok = self._patch_added(new_instance, columns, added,
                                       removed)
            columns.invalidate_views()
            expected = len(new_instance.valuations.get(class_name, ()))
            if not ok or columns.live != expected:
                del self._classes[class_name]
        self.instance = new_instance

    def _patch_added(self, new_instance: Instance,
                     columns: _ClassColumns, added: Sequence[Oid],
                     removed: Iterable[Oid]) -> bool:
        removed = set(removed)
        for oid in added:
            try:
                value = new_instance.value_of(oid)
            except Exception:
                return False
            if oid in removed:  # update: rewrite the row in place
                row = columns.rows.get(oid)
                if row is None or not columns.alive[row]:
                    return False
            else:  # insert: append a fresh row
                if oid in columns.rows:
                    return False
                row = len(columns.oids)
                columns.oids.append(oid)
                columns.alive.append(True)
                columns.rows[oid] = row
                columns.live += 1
                if columns.codes is not None:
                    from .match import shard_hash
                    columns.codes.append(shard_hash(oid))
            for attr, column in columns.scalars.items():
                entry = _scalar_entry(value, attr)
                if row == len(column):
                    column.append(entry)
                else:
                    column[row] = entry
            for attr, column in columns.sets.items():
                elements = _set_entry(value, attr)
                if row == len(column.starts):
                    column.append_row(elements)
                else:
                    column.rewrite_row(row, elements)
            for attr, lens in columns.set_lens.items():
                entry = _set_len_entry(value, attr)
                if row == len(lens):
                    lens.append(entry)
                else:
                    lens[row] = entry
            self.rows_patched += 1
        return True

    def refresh(self, new_instance: Instance,
                touched_classes: Iterable[str]) -> None:
        """Re-point at ``new_instance``, dropping the touched classes.

        The no-strict-sets fallback: classes whose objects may have
        changed rebuild lazily; untouched classes keep their arrays
        (their valuations are carried over unchanged)."""
        for class_name in touched_classes:
            self._classes.pop(class_name, None)
        self.instance = new_instance

    def stats(self) -> Dict[str, int]:
        return {
            "classes_built": self.classes_built,
            "columns_built": self.columns_built,
            "rows_patched": self.rows_patched,
        }
