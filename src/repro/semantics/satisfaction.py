"""Clause satisfaction over instances (paper Section 3.1).

A clause is *satisfied* iff for every instantiation of the body variables
making all body atoms true, there is an instantiation of any additional head
variables making all head atoms true.

Clauses may span several databases (constraints over a source, over a
target, or inter-database transformation clauses); callers merge the
participating instances with :func:`merge_instances` first so that one
valuation covers every class mentioned.

Skolem terms are interpreted canonically: ``Mk_C(args)`` denotes the keyed
object identity determined by its argument values.  Satisfaction of key
clauses like ``Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name`` therefore
holds exactly for instances whose oids *are* the Skolem-generated ones —
which is what the execution engine produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..lang.ast import Clause
from ..model.instance import Instance, InstanceError
from ..model.schema import merge_schemas
from ..model.values import Oid, Value, format_value
from .eval import Binding
from .match import Matcher


@dataclass
class Violation:
    """A body binding with no head extension: a counterexample."""

    clause: Clause
    binding: Binding

    def __str__(self) -> str:
        label = self.clause.name or str(self.clause)
        witness = ", ".join(
            f"{name} = {format_value(value)}"
            for name, value in sorted(self.binding.items()))
        return f"clause {label} violated at {{{witness}}}"


def merge_instances(name: str, instances: Sequence[Instance]) -> Instance:
    """Union several instances over the merged schema.

    Class names must be disjoint across the inputs (use distinct schemas per
    database, as the paper does).  A duplicated class would silently lose
    one input's objects to the other's, so the collision is detected here
    and raised as :class:`~repro.model.instance.InstanceError` *before*
    any valuation is assembled — the schema-level check alone reports
    schema names, which are often both auto-generated (``__source__``).
    """
    seen: Dict[str, int] = {}
    for position, inst in enumerate(instances):
        for cname in inst.schema.class_names():
            if cname in seen:
                raise InstanceError(
                    f"cannot merge instances {name!r}: class {cname!r} "
                    f"appears in both instance #{seen[cname]} and "
                    f"instance #{position} (class names must be disjoint; "
                    f"merging would overwrite one side's objects)")
            seen[cname] = position
    schema = merge_schemas(name, [inst.schema for inst in instances])
    valuations: Dict[str, Dict[Oid, Value]] = {}
    for inst in instances:
        for cname in inst.schema.class_names():
            valuations[cname] = dict(inst.valuations[cname])
    return Instance(schema, valuations)


def clause_violations(instance: Instance, clause: Clause,
                      limit: Optional[int] = None,
                      matcher: Optional[Matcher] = None,
                      plan=None, columnar: bool = True) -> List[Violation]:
    """Counterexamples to ``clause`` in ``instance`` (up to ``limit``).

    ``matcher`` injects a shared matcher (and with it a shared
    :class:`~repro.semantics.match.IndexPool`); by default the clause
    gets a private one with lazy indexes — the naive path, kept as the
    differential oracle for the planned audit.  ``plan`` supplies a
    :class:`~repro.engine.planner.ConstraintPlan`: the body enumeration
    and the per-solution head-satisfiability probe then run their
    precompiled step orders instead of re-deriving atom readiness for
    every partial binding.  Planned and naive runs report the same
    violations (differential tests in ``tests/constraints`` enforce it).

    With both a plan and ``columnar``, the body enumeration runs as
    batch stages through the vectorized compiler
    (:func:`repro.engine.columnar.stream_plan_columnar`) — same
    solutions in the same order, so ``limit`` truncates identically.
    The per-solution head probe stays scalar: it is an existence check
    with an early exit, which the batch model cannot shortcut.
    """
    matcher = matcher if matcher is not None else Matcher(instance)
    body_vars = frozenset().union(
        *(atom.variables() for atom in clause.body)) if clause.body else frozenset()
    body_steps = plan.body.steps if (
        plan is not None and plan.body is not None) else None
    head_steps = plan.head.steps if (
        plan is not None and plan.head is not None) else None
    if body_steps is not None and columnar:
        from ..engine.columnar import stream_plan_columnar
        body_bindings = stream_plan_columnar(matcher, body_steps, None)
    else:
        body_bindings = matcher.solutions(clause.body, plan=body_steps)
    violations: List[Violation] = []
    for body_binding in body_bindings:
        # Project to body variables: head checking re-derives the rest.
        projected = {name: value for name, value in body_binding.items()
                     if name in body_vars}
        if not matcher.satisfiable(clause.head, projected,
                                   plan=head_steps):
            violations.append(Violation(clause, projected))
            if limit is not None and len(violations) >= limit:
                return violations
    return violations


def satisfies_clause(instance: Instance, clause: Clause) -> bool:
    """True iff ``instance`` satisfies ``clause``."""
    return not clause_violations(instance, clause, limit=1)


def program_violations(instance: Instance, program: Iterable[Clause],
                       limit_per_clause: Optional[int] = None,
                       use_planner: bool = True,
                       plan=None,
                       parallel: Optional[int] = None,
                       columnar: bool = True) -> List[Violation]:
    """All violations of all clauses (constraint audit).

    By default the whole audit is *planned*: every clause's body and
    head probe are compiled once by :func:`repro.engine.planner.plan_audit`
    and executed over one shared, prebuilt :class:`IndexPool` instead of
    a fresh matcher (with private lazy indexes) per clause.
    ``use_planner=False`` forces that naive per-clause path — the
    differential oracle.  ``plan`` injects a precomputed
    :class:`~repro.engine.planner.AuditPlan` (e.g. to amortise planning
    and index builds across repeated audits of one instance).
    ``parallel=N`` fans the planned audit out across ``N`` worker
    processes (:func:`repro.engine.parallel.audit_parallel`): each
    worker enumerates its hash-shard of every clause's body solutions
    and the violation sets union, identical to the sequential set.
    """
    clauses = list(program)
    if parallel is not None:
        if not use_planner or plan is not None:
            raise ValueError(
                "parallel audits shard join plans; they cannot run "
                "with use_planner=False or an injected plan")
        from ..engine.parallel import audit_parallel
        result = audit_parallel(clauses, instance, parallel,
                                limit_per_clause=limit_per_clause,
                                columnar=columnar)
        return result.violations(clauses)
    audit_plan = plan
    if audit_plan is not None and audit_plan.pool.instance is not instance:
        raise ValueError(
            "injected audit plan was built for a different instance; "
            "its indexes would silently produce wrong violation sets "
            "(re-plan with plan_audit against this instance)")
    if audit_plan is None and use_planner:
        from ..engine.planner import plan_audit
        audit_plan = plan_audit(clauses, instance)
    violations: List[Violation] = []
    if audit_plan is None:
        for clause in clauses:
            violations.extend(
                clause_violations(instance, clause, limit_per_clause,
                                  columnar=columnar))
        return violations
    matcher = Matcher(instance, index_pool=audit_plan.pool)
    for index, clause in enumerate(clauses):
        # Plans align with the clause sequence; an injected plan built
        # from a different sequence is matched by clause instead.
        if (index < len(audit_plan.plans)
                and audit_plan.plans[index].clause is clause):
            clause_plan = audit_plan.plans[index]
        else:
            clause_plan = audit_plan.plan_for(clause)
        violations.extend(clause_violations(
            instance, clause, limit_per_clause, matcher=matcher,
            plan=clause_plan, columnar=columnar))
    return violations


def satisfies_program(instance: Instance,
                      program: Iterable[Clause],
                      use_planner: bool = True) -> bool:
    """True iff every clause is satisfied."""
    return not program_violations(instance, program, limit_per_clause=1,
                                  use_planner=use_planner)
