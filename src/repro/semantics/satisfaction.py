"""Clause satisfaction over instances (paper Section 3.1).

A clause is *satisfied* iff for every instantiation of the body variables
making all body atoms true, there is an instantiation of any additional head
variables making all head atoms true.

Clauses may span several databases (constraints over a source, over a
target, or inter-database transformation clauses); callers merge the
participating instances with :func:`merge_instances` first so that one
valuation covers every class mentioned.

Skolem terms are interpreted canonically: ``Mk_C(args)`` denotes the keyed
object identity determined by its argument values.  Satisfaction of key
clauses like ``Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name`` therefore
holds exactly for instances whose oids *are* the Skolem-generated ones —
which is what the execution engine produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..lang.ast import Atom, Clause, Program
from ..model.instance import Instance, InstanceError
from ..model.schema import Schema, merge_schemas
from ..model.values import Oid, Value, format_value
from .eval import Binding
from .match import Matcher


@dataclass
class Violation:
    """A body binding with no head extension: a counterexample."""

    clause: Clause
    binding: Binding

    def __str__(self) -> str:
        label = self.clause.name or str(self.clause)
        witness = ", ".join(
            f"{name} = {format_value(value)}"
            for name, value in sorted(self.binding.items()))
        return f"clause {label} violated at {{{witness}}}"


def merge_instances(name: str, instances: Sequence[Instance]) -> Instance:
    """Union several instances over the merged schema.

    Class names must be disjoint across the inputs (use distinct schemas per
    database, as the paper does).
    """
    schema = merge_schemas(name, [inst.schema for inst in instances])
    valuations: Dict[str, Dict[Oid, Value]] = {}
    for inst in instances:
        for cname in inst.schema.class_names():
            valuations[cname] = dict(inst.valuations[cname])
    return Instance(schema, valuations)


def clause_violations(instance: Instance, clause: Clause,
                      limit: Optional[int] = None) -> List[Violation]:
    """Counterexamples to ``clause`` in ``instance`` (up to ``limit``)."""
    matcher = Matcher(instance)
    body_vars = frozenset().union(
        *(atom.variables() for atom in clause.body)) if clause.body else frozenset()
    violations: List[Violation] = []
    for body_binding in matcher.solutions(clause.body):
        # Project to body variables: head checking re-derives the rest.
        projected = {name: value for name, value in body_binding.items()
                     if name in body_vars}
        if not matcher.satisfiable(clause.head, projected):
            violations.append(Violation(clause, projected))
            if limit is not None and len(violations) >= limit:
                return violations
    return violations


def satisfies_clause(instance: Instance, clause: Clause) -> bool:
    """True iff ``instance`` satisfies ``clause``."""
    return not clause_violations(instance, clause, limit=1)


def program_violations(instance: Instance, program: Iterable[Clause],
                       limit_per_clause: Optional[int] = None
                       ) -> List[Violation]:
    """All violations of all clauses (constraint audit)."""
    violations: List[Violation] = []
    for clause in program:
        violations.extend(
            clause_violations(instance, clause, limit_per_clause))
    return violations


def satisfies_program(instance: Instance,
                      program: Iterable[Clause]) -> bool:
    """True iff every clause is satisfied."""
    return not program_violations(instance, program, limit_per_clause=1)
