"""Semantics of WOL clauses: evaluation, matching, satisfaction."""

from .eval import Binding, EvalError, evaluate, is_evaluable, project, skolem_key
from .match import MatchError, Matcher, unify_term
from .satisfaction import (Violation, clause_violations, merge_instances,
                           program_violations, satisfies_clause,
                           satisfies_program)

__all__ = [
    "Binding", "EvalError", "evaluate", "is_evaluable", "project",
    "skolem_key",
    "MatchError", "Matcher", "unify_term",
    "Violation", "clause_violations", "merge_instances",
    "program_violations", "satisfies_clause", "satisfies_program",
]
