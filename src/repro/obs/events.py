"""The structured event log: JSON lines over stdlib ``logging``.

Operationally interesting moments — slow queries, WAL resets,
compactions, replica reseeds and outages, 5xx errors — are emitted as
one JSON object per line through the ``repro.events`` logger.  Every
event carries the active trace id (when a trace is running), so a
slow-query line correlates with the span tree that explains it.

As a library, ``repro`` attaches only a ``NullHandler`` — events go
nowhere until an application (the ``serve`` CLI, a test) calls
:func:`configure_event_log` or wires its own handler.  The event
*schema* is stable::

    {"ts": <unix seconds>, "level": "info", "event": "slow_query",
     "trace_id": "4f2a..."?, ...event-specific fields}
"""

from __future__ import annotations

import json
import logging
from typing import Any, Dict, Optional, TextIO

from .trace import current_trace_id

__all__ = [
    "EVENT_LOGGER_NAME",
    "JsonEventFormatter",
    "configure_event_log",
    "emit_slow_query",
    "log_event",
    "logger",
]

EVENT_LOGGER_NAME = "repro.events"

logger = logging.getLogger(EVENT_LOGGER_NAME)
logger.addHandler(logging.NullHandler())


def log_event(event: str, level: int = logging.INFO,
              **fields: Any) -> None:
    """Emit one structured event (a no-op unless a handler listens).

    ``fields`` must be JSON-serialisable; the active trace id is
    attached automatically.  The enabled-check runs first, so calling
    this on a hot-ish path costs one level comparison when nobody is
    listening.
    """
    if not logger.isEnabledFor(level):
        return
    payload: Dict[str, Any] = {"event": event}
    trace_id = current_trace_id()
    if trace_id is not None:
        payload["trace_id"] = trace_id
    payload.update(fields)
    logger.log(level, event, extra={"repro_event": payload})


class JsonEventFormatter(logging.Formatter):
    """Format event records (and stray log records) as JSON lines."""

    def format(self, record: logging.LogRecord) -> str:
        payload = getattr(record, "repro_event", None)
        if payload is None:
            payload = {"event": record.getMessage()}
        document = {"ts": round(record.created, 3),
                    "level": record.levelname.lower()}
        document.update(payload)
        return json.dumps(document, sort_keys=True, default=str)


def configure_event_log(stream: Optional[TextIO] = None,
                        level: int = logging.INFO) -> logging.Handler:
    """Attach a JSON-lines handler to the event logger.

    Idempotent per stream: calling twice with the same stream does not
    stack duplicate handlers.  Returns the handler so callers (tests)
    can detach it with ``logger.removeHandler``.
    """
    for existing in logger.handlers:
        if (isinstance(existing, logging.StreamHandler)
                and getattr(existing, "stream", None) is stream
                and isinstance(existing.formatter, JsonEventFormatter)):
            logger.setLevel(level)
            return existing
    handler = logging.StreamHandler(stream) if stream is not None \
        else logging.StreamHandler()
    handler.setFormatter(JsonEventFormatter())
    logger.addHandler(handler)
    logger.setLevel(level)
    return handler


def emit_slow_query(endpoint: str, elapsed_ms: float,
                    threshold_ms: float, **fields: Any) -> None:
    """The slow-query event: a read crossed ``--slow-query-ms``."""
    log_event("slow_query", level=logging.WARNING, endpoint=endpoint,
              ms=round(elapsed_ms, 3),
              threshold_ms=round(threshold_ms, 3), **fields)
