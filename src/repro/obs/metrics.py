"""Process-wide metrics: counters, gauges and fixed-bucket histograms.

Dependency-free (stdlib only), thread-safe, cheap enough for hot
paths, resettable for tests, and rendered in the Prometheus text
exposition format (version 0.0.4) for ``GET /metrics``.

Design:

* A :class:`MetricsRegistry` holds *families* — one per metric name —
  each carrying a fixed label-name tuple.  ``family.labels(...)``
  interns one child per label-value combination; hot paths resolve
  their child once and call ``inc``/``observe``/``set`` on it.
* Every child guards its state with its own small lock, so two
  threads bumping different counters never contend.
* ``registry.reset()`` zeroes every sample but keeps registrations —
  the test-isolation primitive.
* :func:`set_enabled` flips one module-global flag; when off, every
  mutation is a no-op (the ``--no-obs`` benchmark baseline).

The module-level :data:`REGISTRY` is the process default; everything
in ``repro`` that is not per-session records into it.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "BATCH_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "REGISTRY",
    "SIZE_BUCKETS",
    "enabled",
    "get_registry",
    "publish_engine_stats",
    "set_enabled",
]

#: Request/operation latency buckets, in seconds (1 ms .. 10 s).
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0)

#: Payload-size buckets, in bytes (64 B .. 16 MiB).
SIZE_BUCKETS: Tuple[float, ...] = (
    64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304,
    16777216)

#: Group-commit batch-size buckets (deltas per applied batch).
BATCH_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1000)

# One global switch, read on every mutation.  A plain module global is
# a single dict lookup — cheap enough for the hot paths this guards,
# and exactly what the --no-obs baseline flips off.
_ENABLED = True


def set_enabled(value: bool) -> None:
    """Globally enable/disable metric mutations (``--no-obs``)."""
    global _ENABLED
    _ENABLED = bool(value)


def enabled() -> bool:
    """Whether metric mutations are currently recorded."""
    return _ENABLED


class Counter:
    """A monotonically increasing counter with atomic increments.

    Standalone — usable unregistered (e.g. per-session statistics that
    must not be shared across sessions in one process) or interned as
    a registry family child.
    """

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not _ENABLED:
            return
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Gauge:
    """A value that can go up and down (or be set outright)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """A fixed-bucket histogram of observed values.

    ``buckets`` are the *upper bounds* of the cumulative buckets; an
    implicit ``+Inf`` bucket always exists.  ``observe`` costs one
    bisect plus one locked increment.
    """

    __slots__ = ("_lock", "buckets", "_counts", "_sum", "_count")

    def __init__(self, buckets: Sequence[float] = LATENCY_BUCKETS) -> None:
        ordered = tuple(float(b) for b in buckets)
        if not ordered:
            raise ValueError("a histogram needs at least one bucket")
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(
                f"histogram buckets must be strictly increasing: "
                f"{buckets!r}")
        self._lock = threading.Lock()
        self.buckets = ordered
        self._counts = [0] * (len(ordered) + 1)  # trailing +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        if not _ENABLED:
            return
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> Tuple[Tuple[int, ...], float, int]:
        """``(per-bucket counts incl. +Inf, sum, count)`` atomically."""
        with self._lock:
            return tuple(self._counts), self._sum, self._count

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, +Inf last."""
        counts, _total_sum, total = self.snapshot()
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), total))
        return out

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._sum = 0.0
            self._count = 0


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """All children of one metric name (one per label-value tuple)."""

    __slots__ = ("name", "kind", "help", "labelnames", "buckets",
                 "_lock", "_children")

    def __init__(self, name: str, kind: str, help_text: str,
                 labelnames: Tuple[str, ...],
                 buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.labelnames = labelnames
        self.buckets = tuple(buckets) if buckets is not None else None
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}
        if not labelnames:
            self._children[()] = self._make_child()

    def _make_child(self):
        if self.kind == "histogram":
            return Histogram(self.buckets or LATENCY_BUCKETS)
        return _KINDS[self.kind]()

    def labels(self, *values: object, **kwvalues: object):
        """The child for one label-value combination (interned)."""
        if kwvalues:
            if values:
                raise ValueError(
                    "pass label values positionally or by name, not both")
            try:
                values = tuple(kwvalues[name] for name in self.labelnames)
            except KeyError as exc:
                raise ValueError(
                    f"metric {self.name} needs labels "
                    f"{list(self.labelnames)}, got "
                    f"{sorted(kwvalues)}") from exc
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"metric {self.name} takes {len(self.labelnames)} "
                f"label value(s), got {len(values)}")
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    # Convenience proxies so an unlabelled family can be used as its
    # own (single) child: ``registry.counter("x", "...").inc()``.
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    @property
    def value(self) -> float:
        return self.labels().value

    def samples(self) -> Dict[Tuple[str, ...], object]:
        with self._lock:
            return dict(self._children)

    def reset(self) -> None:
        with self._lock:
            for child in self._children.values():
                child.reset()


def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _format_number(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _render_labels(labelnames: Sequence[str],
                   values: Sequence[str],
                   extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = [f'{name}="{_escape_label(value)}"'
             for name, value in zip(labelnames, values)]
    if extra is not None:
        pairs.append(f'{extra[0]}="{extra[1]}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


class MetricsRegistry:
    """A process-wide, named collection of metric families."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    def _family(self, name: str, kind: str, help_text: str,
                labelnames: Sequence[str],
                buckets: Optional[Sequence[float]] = None) -> _Family:
        names = tuple(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != names:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind}{list(family.labelnames)}; cannot "
                        f"re-register as {kind}{list(names)}")
                return family
            family = _Family(name, kind, help_text, names,
                             buckets=buckets)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str,
                labelnames: Sequence[str] = ()) -> _Family:
        """Register (idempotently) and return a counter family."""
        return self._family(name, "counter", help_text, labelnames)

    def gauge(self, name: str, help_text: str,
              labelnames: Sequence[str] = ()) -> _Family:
        """Register (idempotently) and return a gauge family."""
        return self._family(name, "gauge", help_text, labelnames)

    def histogram(self, name: str, help_text: str,
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = LATENCY_BUCKETS) -> _Family:
        """Register (idempotently) and return a histogram family."""
        return self._family(name, "histogram", help_text, labelnames,
                            buckets=buckets)

    # ------------------------------------------------------------------
    # Introspection (tests, /metrics)
    # ------------------------------------------------------------------
    def families(self) -> List[_Family]:
        with self._lock:
            return [self._families[name]
                    for name in sorted(self._families)]

    def get(self, name: str) -> Optional[_Family]:
        with self._lock:
            return self._families.get(name)

    def value(self, name: str,
              labels: Optional[Mapping[str, str]] = None) -> float:
        """One counter/gauge sample (0.0 when never touched)."""
        family = self.get(name)
        if family is None:
            return 0.0
        key = (tuple(str(labels[n]) for n in family.labelnames)
               if labels else ())
        child = family.samples().get(key)
        if child is None:
            return 0.0
        if isinstance(child, Histogram):
            raise TypeError(f"{name} is a histogram; read its "
                            f"count/sum via get()")
        return child.value

    def reset(self) -> None:
        """Zero every sample; registrations survive (test isolation)."""
        with self._lock:
            families = list(self._families.values())
        for family in families:
            family.reset()

    def render(self) -> str:
        """The full registry in Prometheus text exposition format."""
        lines: List[str] = []
        for family in self.families():
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key in sorted(family.samples()):
                child = family.samples()[key]
                if isinstance(child, Histogram):
                    for bound, cumulative in child.cumulative():
                        labels = _render_labels(
                            family.labelnames, key,
                            extra=("le", _format_number(bound)))
                        lines.append(f"{family.name}_bucket{labels} "
                                     f"{cumulative}")
                    base = _render_labels(family.labelnames, key)
                    lines.append(f"{family.name}_sum{base} "
                                 f"{_format_number(child.sum)}")
                    lines.append(f"{family.name}_count{base} "
                                 f"{child.count}")
                else:
                    labels = _render_labels(family.labelnames, key)
                    lines.append(f"{family.name}{labels} "
                                 f"{_format_number(child.value)}")
        return "\n".join(lines) + "\n"


#: The process-default registry: everything in ``repro`` that is not
#: explicitly per-session records here, and ``GET /metrics`` renders it.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-default :class:`MetricsRegistry`."""
    return REGISTRY


# ----------------------------------------------------------------------
# Engine-stats bridge
# ----------------------------------------------------------------------

#: ExecutionStats attributes mirrored into registry counters, by
#: metric suffix.  Read with getattr so any stats-like object (the
#: incremental engine's IncrementalStats included) publishes the
#: fields it has.
_ENGINE_FIELDS = (
    ("clauses", "clauses_run"),
    ("bindings", "bindings_found"),
    ("objects_created", "objects_created"),
    ("index_builds", "indexes_built"),
    ("index_hits", "index_hits"),
    ("index_misses", "index_misses"),
    ("vectorized_steps", "vectorized_steps"),
    ("fallback_steps", "fallback_steps"),
    ("vectorized_rows", "vectorized_rows"),
)


def publish_engine_stats(engine: str, stats: object,
                         registry: Optional[MetricsRegistry] = None
                         ) -> None:
    """Mirror one execution's stats into per-engine registry counters.

    Replaces the ad-hoc "read ExecutionStats off the last run" pattern
    with cumulative ``repro_engine_*_total{engine=...}`` counters that
    survive across requests and engines.  Cheap: one call per
    transform/program/delta-apply, not per row.
    """
    if not _ENABLED:
        return
    registry = registry or REGISTRY
    registry.counter("repro_engine_runs_total",
                     "Engine executions by engine.",
                     ("engine",)).labels(engine).inc()
    for suffix, attr in _ENGINE_FIELDS:
        amount = getattr(stats, attr, 0) or 0
        if amount:
            registry.counter(
                f"repro_engine_{suffix}_total",
                f"Cumulative ExecutionStats.{attr} by engine.",
                ("engine",)).labels(engine).inc(amount)
