"""``repro.obs`` — the dependency-free observability spine.

Three pillars, one package:

* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges and fixed-bucket histograms, rendered in Prometheus text
  format by ``GET /metrics`` on every service node.
* :mod:`repro.obs.trace` — span trees with monotonic timings; the
  trace id rides the ``X-Repro-Trace`` header across nodes and the
  tree surfaces as EXPLAIN-ANALYZE output (``--trace`` / ``?trace=1``).
* :mod:`repro.obs.events` — structured JSON event logging (slow
  queries, WAL resets, compactions, replica reseeds/outages, 5xx),
  each event stamped with the active trace id.

Everything is stdlib-only and safe to import from any layer.
"""

from .events import (EVENT_LOGGER_NAME, JsonEventFormatter,
                     configure_event_log, emit_slow_query, log_event)
from .metrics import (BATCH_BUCKETS, LATENCY_BUCKETS, REGISTRY,
                      SIZE_BUCKETS, Counter, Gauge, Histogram,
                      MetricsRegistry, enabled, get_registry,
                      publish_engine_stats, set_enabled)
from .trace import (NULL_SPAN, Span, Trace, current_span, current_trace,
                    current_trace_id, new_trace_id, render_trace_json,
                    span, start_trace)

__all__ = [
    "BATCH_BUCKETS",
    "Counter",
    "EVENT_LOGGER_NAME",
    "Gauge",
    "Histogram",
    "JsonEventFormatter",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NULL_SPAN",
    "REGISTRY",
    "SIZE_BUCKETS",
    "Span",
    "Trace",
    "configure_event_log",
    "current_span",
    "current_trace",
    "current_trace_id",
    "emit_slow_query",
    "enabled",
    "get_registry",
    "log_event",
    "new_trace_id",
    "publish_engine_stats",
    "render_trace_json",
    "set_enabled",
    "span",
    "start_trace",
]
