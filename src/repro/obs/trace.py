"""Request tracing: a span tree with monotonic timings.

A *trace* is one tree of :class:`Span` nodes rooted at a request (an
HTTP handler, a CLI transform, a program run).  Spans nest through a
``contextvars`` variable, so the instrumented layers never pass a
trace object around — they call :func:`span` and either land under
the active parent or hit the null fast path (one context-variable
read) when nothing is tracing.

Propagation: the trace id travels client → leader → follower in the
``X-Repro-Trace`` HTTP header (see ``service/server.py`` and
``service/client.py``); a traced response carries the serialised tree
in the envelope's ``trace`` field when the request asked with
``?trace=1``.  :meth:`Trace.render` prints the EXPLAIN-ANALYZE-style
tree the CLI ``--trace`` flags show.
"""

from __future__ import annotations

import time
import uuid
from contextvars import ContextVar
from typing import Any, Dict, List, Optional

__all__ = [
    "NULL_SPAN",
    "Span",
    "Trace",
    "current_span",
    "current_trace",
    "current_trace_id",
    "new_trace_id",
    "render_trace_json",
    "span",
    "start_trace",
]

_CURRENT: ContextVar[Optional["Span"]] = ContextVar(
    "repro_obs_current_span", default=None)
_TRACE: ContextVar[Optional["Trace"]] = ContextVar(
    "repro_obs_current_trace", default=None)


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id."""
    return uuid.uuid4().hex[:16]


class Span:
    """One timed node of a trace tree."""

    __slots__ = ("name", "attrs", "children", "duration_ms", "_t0")

    def __init__(self, name: str,
                 attrs: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.attrs: Dict[str, Any] = attrs or {}
        self.children: List[Span] = []
        self.duration_ms: float = 0.0
        self._t0: float = 0.0

    def set(self, **attrs: Any) -> None:
        """Attach/overwrite attributes (e.g. ``rows_out`` post-hoc)."""
        self.attrs.update(attrs)

    def __bool__(self) -> bool:
        return True

    def to_json(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"name": self.name,
                               "ms": round(self.duration_ms, 3)}
        if self.attrs:
            doc["attrs"] = dict(self.attrs)
        if self.children:
            doc["spans"] = [child.to_json() for child in self.children]
        return doc

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, ms={self.duration_ms:.3f}, "
                f"children={len(self.children)})")


class _NullSpan:
    """The no-op span handed out when nothing is tracing."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass

    def __bool__(self) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_CONTEXT = _NullSpanContext()


class _SpanContext:
    __slots__ = ("_span", "_token")

    def __init__(self, span_node: Span) -> None:
        self._span = span_node
        self._token = None

    def __enter__(self) -> Span:
        self._token = _CURRENT.set(self._span)
        self._span._t0 = time.perf_counter()
        return self._span

    def __exit__(self, *exc_info: object) -> bool:
        node = self._span
        node.duration_ms = (time.perf_counter() - node._t0) * 1000.0
        _CURRENT.reset(self._token)
        return False


def span(name: str, **attrs: Any):
    """A child span under the active one — or a no-op when untraced.

    The untraced fast path costs one context-variable read and returns
    a shared null context; hot paths may call this per plan step
    without measurable overhead when no trace is active.
    """
    parent = _CURRENT.get()
    if parent is None:
        return _NULL_CONTEXT
    node = Span(name, attrs or None)
    parent.children.append(node)
    return _SpanContext(node)


class Trace:
    """One complete trace: an id plus the root span."""

    __slots__ = ("trace_id", "root")

    def __init__(self, trace_id: str, root: Span) -> None:
        self.trace_id = trace_id
        self.root = root

    @property
    def duration_ms(self) -> float:
        return self.root.duration_ms

    def to_json(self) -> Dict[str, Any]:
        return {"trace_id": self.trace_id, "root": self.root.to_json()}

    def render(self) -> str:
        """The EXPLAIN-ANALYZE-style tree (CLI ``--trace`` output)."""
        return render_trace_json(self.to_json())


class _TraceContext:
    __slots__ = ("_trace", "_tokens")

    def __init__(self, trace: Trace) -> None:
        self._trace = trace
        self._tokens = None

    def __enter__(self) -> Trace:
        self._tokens = (_TRACE.set(self._trace),
                        _CURRENT.set(self._trace.root))
        self._trace.root._t0 = time.perf_counter()
        return self._trace

    def __exit__(self, *exc_info: object) -> bool:
        root = self._trace.root
        root.duration_ms = (time.perf_counter() - root._t0) * 1000.0
        trace_token, span_token = self._tokens
        _CURRENT.reset(span_token)
        _TRACE.reset(trace_token)
        return False


def start_trace(name: str, trace_id: Optional[str] = None,
                **attrs: Any):
    """Open a new trace rooted at ``name`` (a context manager).

    ``trace_id`` adopts an id arriving from upstream (the
    ``X-Repro-Trace`` header); omitted, a fresh id is minted.  The
    yielded :class:`Trace` is complete once the ``with`` block exits.
    """
    root = Span(name, attrs or None)
    return _TraceContext(Trace(trace_id or new_trace_id(), root))


def current_span() -> Optional[Span]:
    """The active span, or None when nothing is tracing."""
    return _CURRENT.get()


def current_trace() -> Optional[Trace]:
    """The active trace, or None."""
    return _TRACE.get()


def current_trace_id() -> Optional[str]:
    """The active trace id (what events stamp), or None."""
    trace = _TRACE.get()
    return trace.trace_id if trace is not None else None


def _format_attrs(attrs: Optional[Dict[str, Any]]) -> str:
    if not attrs:
        return ""
    inner = ", ".join(f"{key}={attrs[key]}" for key in sorted(attrs))
    return f"  {{{inner}}}"


def _render_span(doc: Dict[str, Any], prefix: str, is_last: bool,
                 lines: List[str]) -> None:
    branch = "└─ " if is_last else "├─ "
    lines.append(f"{prefix}{branch}{doc['name']} — {doc.get('ms', 0.0):.2f} ms"
                 f"{_format_attrs(doc.get('attrs'))}")
    children = doc.get("spans", [])
    child_prefix = prefix + ("   " if is_last else "│  ")
    for index, child in enumerate(children):
        _render_span(child, child_prefix,
                     index == len(children) - 1, lines)


def render_trace_json(doc: Dict[str, Any]) -> str:
    """Render a serialised trace document as the text tree.

    Accepts both the full ``{"trace_id", "root"}`` document (what the
    service envelope carries) and a bare root-span document, so the
    client/CLI can print traces it did not produce.
    """
    root = doc.get("root", doc)
    trace_id = doc.get("trace_id")
    header = f"trace {trace_id} · " if trace_id else ""
    lines = [f"{header}{root['name']} — {root.get('ms', 0.0):.2f} ms"
             f"{_format_attrs(root.get('attrs'))}"]
    children = root.get("spans", [])
    for index, child in enumerate(children):
        _render_span(child, "", index == len(children) - 1, lines)
    return "\n".join(lines)
