"""The durable warehouse store: snapshot + WAL, recovery, compaction.

A store directory is one evolving source instance made durable::

    store/
      CURRENT.json            -> which snapshot + WAL are live
      snap-<sha256>.json      content-addressed instance snapshots
      wal.jsonl               append-only delta log (label-addressed)

Writes are deltas (:meth:`WarehouseStore.append`): validated against
the in-memory instance, encoded with durable labels, appended to the
WAL, then applied.  Reads are the in-memory ``instance`` — the store
is the system of record for the *source*; transformed targets are
derived state the service layer keeps warm.

Recovery (:meth:`WarehouseStore.open`) replays the WAL tail over the
latest snapshot: records at or below the snapshot's ``base_seq`` are
skipped (a crash between manifest flip and WAL reset leaves them
behind), a torn final record is dropped and truncated away, and any
other damage refuses loudly.  The replayed tail is kept as
``tail`` — the service layer re-applies it through the incremental
engine so the warm index pool is rebuilt via the existing ``rebase``
path instead of from scratch.

Compaction (:meth:`WarehouseStore.snapshot`) writes a new snapshot at
the current sequence number, atomically repoints ``CURRENT``, resets
the WAL and prunes unreferenced snapshots.  Every step is
crash-ordered: interrupt it anywhere and reopening yields the same
instance.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional, Tuple

from ..evolution.delta import Delta, delta_from_json, delta_to_json
from ..model.instance import Instance
from ..obs.events import log_event
from ..obs.metrics import LATENCY_BUCKETS, REGISTRY
from .snapshot import (CURRENT_NAME, LabelMap, load_snapshot,
                       read_current, write_current, write_snapshot)
from .wal import TornTail, WriteAheadLog

WAL_NAME = "wal.jsonl"

_COMPACTION_SECONDS = REGISTRY.histogram(
    "repro_store_compaction_seconds",
    "Wall time of one store compaction (snapshot + manifest flip + "
    "WAL reset + prune).", buckets=LATENCY_BUCKETS)
_COMPACTIONS_TOTAL = REGISTRY.counter(
    "repro_store_compactions_total", "Store compactions completed.")


class StoreError(Exception):
    """Raised on store misuse or unrecoverable on-disk damage."""


class WarehouseStore:
    """One durable source instance under append-only delta writes."""

    def __init__(self, path: str, wal: WriteAheadLog,
                 instance: Instance, seq: int, base_seq: int,
                 snapshot_file: str, labels: LabelMap,
                 base_instance: Instance,
                 tail: List[Tuple[int, Delta]],
                 recovered_torn: Optional[TornTail] = None) -> None:
        self.path = path
        self.wal = wal
        self.instance = instance
        self.seq = seq
        self.base_seq = base_seq
        self.snapshot_file = snapshot_file
        self.labels = labels
        #: Instance the live snapshot holds (the warm-rebuild base).
        self.base_instance = base_instance
        #: Deltas applied since the live snapshot, in sequence order.
        self.tail = tail
        #: Raw label-addressed WAL payloads since the live snapshot,
        #: as ``(seq, payload)`` in sequence order — the replication
        #: feed ``export_records`` serves without re-reading the log
        #: file.  Compaction *replaces* the list (never mutates it in
        #: place) so concurrent exporters keep a consistent view.
        self.payload_tail: List[Tuple[int, Any]] = []
        #: The torn final WAL record recovery dropped, if any.
        self.recovered_torn = recovered_torn
        self.appended = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @staticmethod
    def exists(path: str) -> bool:
        return os.path.exists(os.path.join(path, CURRENT_NAME))

    @classmethod
    def create(cls, path: str, instance: Instance,
               fsync: bool = False) -> "WarehouseStore":
        """Initialise a store directory with ``instance`` as snapshot 0."""
        if cls.exists(path):
            raise StoreError(f"{path} already holds a warehouse store")
        os.makedirs(path, exist_ok=True)
        name = write_snapshot(path, instance, base_seq=0)
        wal = WriteAheadLog(os.path.join(path, WAL_NAME), fsync=fsync)
        wal.reset()
        write_current(path, name, base_seq=0, wal=WAL_NAME)
        return cls(path, wal, instance, seq=0, base_seq=0,
                   snapshot_file=name,
                   labels=LabelMap.derived_from_dump(instance),
                   base_instance=instance, tail=[])

    @classmethod
    def open(cls, path: str, fsync: bool = False) -> "WarehouseStore":
        """Recover: latest snapshot + WAL tail, torn final record dropped."""
        manifest = read_current(path)
        instance, base_seq, labels = load_snapshot(
            path, manifest["snapshot"])
        base_instance = instance
        wal = WriteAheadLog(os.path.join(path, manifest["wal"]),
                            fsync=fsync)
        records, torn = wal.replay()
        tail: List[Tuple[int, Delta]] = []
        seq = base_seq
        for record in records:
            if record.seq <= base_seq:
                # Subsumed by the snapshot: a crash between the
                # manifest flip and the WAL reset leaves these behind.
                continue
            if record.seq != seq + 1:
                raise StoreError(
                    f"WAL gap: expected seq {seq + 1}, found "
                    f"{record.seq} — records were lost mid-log")
            captured: Dict[Tuple[str, str], Any] = {}
            delta = delta_from_json(record.payload, instance,
                                    labels=labels.by_label,
                                    capture_labels=captured)
            labels.absorb(captured)
            instance = delta.apply_to(instance)
            tail.append((record.seq, delta))
            seq = record.seq
        if torn is not None:
            wal.truncate_at(torn.offset)
        store = cls(path, wal, instance, seq=seq, base_seq=base_seq,
                    snapshot_file=manifest["snapshot"], labels=labels,
                    base_instance=base_instance, tail=tail,
                    recovered_torn=torn)
        store.payload_tail = [(record.seq, record.payload)
                              for record in records
                              if record.seq > base_seq]
        return store

    @classmethod
    def open_or_create(cls, path: str,
                       initial: Optional[Instance] = None,
                       fsync: bool = False) -> "WarehouseStore":
        if cls.exists(path):
            return cls.open(path, fsync=fsync)
        if initial is None:
            raise StoreError(
                f"{path} holds no store and no initial instance was "
                f"given to create one")
        return cls.create(path, initial, fsync=fsync)

    def close(self) -> None:
        self.wal.close()

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def append(self, delta: Delta) -> int:
        """Durably apply one delta; returns its WAL sequence number.

        Validation happens *before* the WAL append — an inapplicable
        delta (unknown oid, type error, dangling reference) must never
        be acknowledged into the log, or recovery would refuse the
        whole store.
        """
        if delta.is_empty():
            return self.seq
        seq = self.seq + 1
        updated = delta.apply_to(self.instance)
        payload = delta_to_json(delta, oid_encoder=self.labels.encoder(seq))
        self.wal.append(seq, payload)
        self.instance = updated
        self.seq = seq
        self.tail.append((seq, delta))
        self.payload_tail.append((seq, payload))
        self.appended += 1
        return seq

    def decode_delta(self, data: Dict[str, Any]) -> Delta:
        """Decode a label-addressed delta JSON against this store.

        Labels the document introduces (freshly inserted anonymous
        objects) are absorbed into the store's map, so the caller's
        chosen label stays the durable address of the new object — the
        WAL encoder reuses it instead of minting another.
        """
        captured: Dict[Tuple[str, str], Any] = {}
        delta = delta_from_json(data, self.instance,
                                labels=self.labels.by_label,
                                capture_labels=captured)
        self.labels.absorb(captured)
        return delta

    # ------------------------------------------------------------------
    # Replication export
    # ------------------------------------------------------------------
    def export_records(self, from_seq: int,
                       limit: int) -> List[Tuple[int, Any]]:
        """Raw WAL records with ``seq >= from_seq``, at most ``limit``.

        The records are the label-addressed payloads exactly as the
        WAL holds them — what a follower replays through its own store
        to stay a deterministic copy of this one.  Records at or below
        ``base_seq`` are gone (subsumed by the live snapshot); asking
        for them returns an empty list, and the caller must reseed from
        the snapshot instead.
        """
        tail = self.payload_tail  # one coherent list even mid-compaction
        if not tail or limit <= 0:
            return []
        first = tail[0][0]
        if from_seq < first:
            return []
        start = from_seq - first
        return tail[start:start + limit]

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def snapshot(self, prune: bool = True) -> str:
        """Write a snapshot at the current state; reset the WAL.

        Crash-ordering: the new snapshot lands fully (content-addressed,
        fsynced) before ``CURRENT`` flips to it, and the WAL reset comes
        last — replay skips records the snapshot subsumed, so dying
        between any two steps loses nothing.
        """
        start = time.perf_counter()
        subsumed = len(self.tail)
        name = write_snapshot(self.path, self.instance, self.seq)
        write_current(self.path, name, base_seq=self.seq, wal=WAL_NAME)
        self.wal.reset()
        self.snapshot_file = name
        self.base_seq = self.seq
        self.base_instance = self.instance
        self.tail = []
        # A fresh list, not .clear(): an exporter holding the old one
        # still sees a coherent pre-compaction tail.
        self.payload_tail = []
        self.labels = LabelMap.derived_from_dump(self.instance)
        if prune:
            self._prune_snapshots(keep=name)
        elapsed = time.perf_counter() - start
        _COMPACTION_SECONDS.observe(elapsed)
        _COMPACTIONS_TOTAL.inc()
        log_event("compaction", path=self.path, snapshot=name,
                  base_seq=self.seq, subsumed_records=subsumed,
                  ms=round(elapsed * 1000, 3))
        return name

    def _prune_snapshots(self, keep: str) -> None:
        for entry in os.listdir(self.path):
            if (entry.startswith("snap-") and entry.endswith(".json")
                    and entry != keep):
                try:
                    os.remove(os.path.join(self.path, entry))
                except OSError:
                    pass  # pruning is garbage collection, not integrity

    # ------------------------------------------------------------------
    # Canonical serialisation
    # ------------------------------------------------------------------
    def canonical_json(self) -> Dict[str, Any]:
        """The instance rendered with *durable* object addresses.

        :func:`repro.io.json_io.instance_to_json` labels anonymous
        objects by sorted process-local serials, so its output is only
        canonical within one process.  This rendering addresses every
        anonymous object by its store label and orders entries by that
        durable address — two stores holding the same logical state
        produce byte-identical documents no matter how many
        crash/reopen cycles minted their serials.  The differential
        recovery tests pin exactly this.
        """
        import json as _json

        from ..io.json_io import schema_to_json, value_to_json

        def encode_oid(oid: Any) -> Dict[str, Any]:
            if oid.is_keyed:
                return {"$oid": oid.class_name,
                        "key": value_to_json(oid.key)}
            label = self.labels.by_oid.get(oid)
            if label is None:
                raise StoreError(
                    f"{oid} has no durable label — it never entered "
                    f"the store through a snapshot or delta")
            return {"$oid": oid.class_name, "label": label}

        objects: Dict[str, Any] = {}
        for cname in self.instance.schema.class_names():
            entries = []
            for oid in self.instance.objects_of(cname):
                identity = encode_oid(oid)
                entries.append((_json.dumps(identity, sort_keys=True), {
                    "id": identity,
                    "value": value_to_json(self.instance.value_of(oid),
                                           encode_oid),
                }))
            objects[cname] = [entry for _, entry in sorted(
                entries, key=lambda item: item[0])]
        return {"format": 1, "seq": self.seq,
                "schema": schema_to_json(self.instance.schema),
                "objects": objects}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "seq": self.seq,
            "base_seq": self.base_seq,
            "snapshot": self.snapshot_file,
            "wal_records": len(self.tail),
            "wal_bytes": self.wal.size_bytes(),
            "appended": self.appended,
            "recovered_torn": self.recovered_torn is not None,
            "classes": self.instance.class_sizes(),
        }


__all__ = ["StoreError", "WarehouseStore", "WAL_NAME"]
