"""Durable warehouse store: snapshots + write-ahead delta log.

The paper's Morphase is an operational system — transformation programs
are compiled once and run "many times" against *evolving* sources
(Section 6).  This package makes the evolving source durable: a store
directory holds content-addressed snapshots of the instance plus an
append-only write-ahead log of :class:`~repro.evolution.delta.Delta`
records (label-addressed JSON, so anonymous object identities survive
restarts).  Opening a store replays the WAL tail over the latest
snapshot — tolerating a torn final record — and yields exactly the
instance an uninterrupted process would hold.
"""

from .wal import TornTail, WalError, WalRecord, WriteAheadLog
from .snapshot import LabelMap, SnapshotError, load_snapshot, write_snapshot
from .store import StoreError, WarehouseStore

__all__ = [
    "TornTail", "WalError", "WalRecord", "WriteAheadLog",
    "LabelMap", "SnapshotError", "load_snapshot", "write_snapshot",
    "StoreError", "WarehouseStore",
]
