"""Content-addressed instance snapshots and durable object labels.

A snapshot is the full JSON dump of one instance version
(:func:`repro.io.json_io.instance_to_json`) wrapped with the WAL
sequence number it subsumes, written to a file named by the SHA-256 of
its canonical content.  Content addressing makes snapshot writes
idempotent and tamper-evident: the store verifies the digest on load,
and two stores holding the same instance version share the same
snapshot name byte for byte.

The ``CURRENT`` manifest — the only mutably named file in a store —
points at the live snapshot and is replaced atomically (temp file +
``os.replace``), so a crash during compaction leaves either the old
generation or the new one, never a half-written pointer.

:class:`LabelMap` solves the identity problem that makes persistence
of this data model non-trivial: anonymous oids carry process-local
serials, so the only durable way to address them is the dump-label
scheme (``Class#n``) of :mod:`repro.io.json_io`.  The map tracks the
bidirectional ``(class, label) <-> oid`` relation for one store
generation: derived from the snapshot dump on load, extended with
fresh WAL labels (``Class#w<seq>.<n>``, a namespace no dump ever
assigns) as deltas insert new anonymous objects, and re-derived when a
new snapshot re-dumps the instance.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Optional, Tuple

from ..io.json_io import instance_from_json, instance_to_json
from ..model.instance import Instance
from ..model.values import Oid

#: Store format version, bumped on any on-disk layout change.
FORMAT = 1


class SnapshotError(Exception):
    """Raised on missing or damaged snapshot files."""


class LabelMap:
    """Durable ``(class, label) <-> oid`` addressing for one store.

    Keyed oids never enter the map (their key value is already a
    durable address); anonymous oids must, because their serials die
    with the process that minted them.
    """

    def __init__(self, labels: Optional[Dict[Tuple[str, str], Oid]]
                 = None) -> None:
        self.by_label: Dict[Tuple[str, str], Oid] = dict(labels or {})
        self.by_oid: Dict[Oid, str] = {
            oid: label for (_, label), oid in self.by_label.items()}
        self._fresh = 0

    @classmethod
    def derived_from_dump(cls, instance: Instance) -> "LabelMap":
        """The labels a dump of ``instance`` would assign, exactly.

        Mirrors :func:`repro.io.json_io.instance_to_json` — per class,
        anonymous oids are labelled ``Class#<index>`` in sorted-string
        order — so a map derived in-process agrees with one captured by
        loading the written snapshot.
        """
        labels: Dict[Tuple[str, str], Oid] = {}
        for cname in instance.schema.class_names():
            for index, oid in enumerate(
                    sorted(instance.objects_of(cname), key=str)):
                if not oid.is_keyed:
                    labels[(cname, f"{cname}#{index}")] = oid
        return cls(labels)

    def record(self, cname: str, label: str, oid: Oid) -> None:
        self.by_label[(cname, label)] = oid
        self.by_oid[oid] = label

    def absorb(self, labels: Dict[Tuple[str, str], Oid]) -> None:
        """Merge labels captured by a delta decode."""
        for (cname, label), oid in labels.items():
            self.record(cname, label, oid)

    def label_of(self, oid: Oid, seq: int) -> str:
        """The durable label for ``oid``, minting one if unseen.

        Fresh labels are namespaced by the WAL sequence number that
        introduces them (``Class#w<seq>.<n>``) — unique within the
        store generation and disjoint from dump-derived ``Class#<n>``
        labels, so a replayed WAL resolves them to exactly one fresh
        oid each.
        """
        label = self.by_oid.get(oid)
        if label is None:
            self._fresh += 1
            label = f"{oid.class_name}#w{seq}.{self._fresh}"
            self.record(oid.class_name, label, oid)
        return label

    def encoder(self, seq: int):
        """An ``oid_encoder`` for
        :func:`repro.evolution.delta.delta_to_json`."""
        def encode(oid: Oid) -> Any:
            if oid.is_keyed:
                from ..io.json_io import value_to_json
                return {"$oid": oid.class_name,
                        "key": value_to_json(oid.key)}
            return {"$oid": oid.class_name,
                    "label": self.label_of(oid, seq)}
        return encode


# ----------------------------------------------------------------------
# Snapshot files
# ----------------------------------------------------------------------

def _canonical_bytes(document: Dict[str, Any]) -> bytes:
    return json.dumps(document, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def snapshot_name(content: bytes) -> str:
    return f"snap-{hashlib.sha256(content).hexdigest()[:24]}.json"


def write_snapshot(directory: str, instance: Instance,
                   base_seq: int) -> str:
    """Write a content-addressed snapshot; return its file name."""
    document = {
        "format": FORMAT,
        "base_seq": base_seq,
        "instance": instance_to_json(instance),
    }
    content = _canonical_bytes(document)
    name = snapshot_name(content)
    path = os.path.join(directory, name)
    if not os.path.exists(path):
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(content)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    return name


def load_snapshot(directory: str, name: str
                  ) -> Tuple[Instance, int, LabelMap]:
    """Load and verify a snapshot: instance, base_seq, its labels."""
    path = os.path.join(directory, name)
    try:
        with open(path, "rb") as handle:
            content = handle.read()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {name}: {exc}") from exc
    if snapshot_name(content) != name:
        raise SnapshotError(
            f"snapshot {name} fails its content check — the file was "
            f"modified after it was written")
    document = json.loads(content.decode("utf-8"))
    if document.get("format") != FORMAT:
        raise SnapshotError(
            f"snapshot {name} has format {document.get('format')!r}; "
            f"this build reads format {FORMAT}")
    labels: Dict[Tuple[str, str], Oid] = {}
    instance = instance_from_json(document["instance"], labels=labels)
    return instance, int(document["base_seq"]), LabelMap(labels)


# ----------------------------------------------------------------------
# CURRENT manifest
# ----------------------------------------------------------------------

CURRENT_NAME = "CURRENT.json"


def write_current(directory: str, snapshot: str, base_seq: int,
                  wal: str) -> None:
    """Atomically repoint the store at a snapshot generation."""
    document = {"format": FORMAT, "snapshot": snapshot,
                "base_seq": base_seq, "wal": wal}
    path = os.path.join(directory, CURRENT_NAME)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def read_current(directory: str) -> Dict[str, Any]:
    path = os.path.join(directory, CURRENT_NAME)
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise SnapshotError(
            f"{directory} is not a warehouse store (no "
            f"{CURRENT_NAME}): {exc}") from exc
    except ValueError as exc:
        raise SnapshotError(
            f"{directory}/{CURRENT_NAME} is unreadable: {exc}") from exc
    if document.get("format") != FORMAT:
        raise SnapshotError(
            f"store format {document.get('format')!r} unsupported "
            f"(this build reads format {FORMAT})")
    return document
