"""Append-only write-ahead log of JSON records.

One record per line: compact JSON carrying a monotonically increasing
sequence number, the payload, and a CRC-32 of the canonical payload
text.  The format is chosen for its failure behaviour, not elegance —
a crash mid-append leaves a *torn* final line (no newline, or a JSON
prefix, or a checksum mismatch), and replay must distinguish that
expected tear from corruption in the middle of the log:

* a damaged **final** record is tolerated: replay returns every intact
  record before it plus a :class:`TornTail` describing where the log
  stops making sense, and the opener truncates the file there so new
  appends never interleave with garbage;
* a damaged record **followed by an intact one** cannot be a torn
  append (appends are sequential) and raises :class:`WalError`.

Durability of an append is a single ``write`` + ``flush`` (+ optional
``fsync``); sequence numbers come from the caller so the log composes
with the snapshot's ``base_seq`` watermark (records at or below it are
skipped on replay instead of double-applied after a compaction race).
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple

from ..obs.events import log_event
from ..obs.metrics import LATENCY_BUCKETS, REGISTRY

_APPEND_SECONDS = REGISTRY.histogram(
    "repro_wal_append_seconds",
    "Wall time of one durable WAL append (write + flush + fsync).",
    buckets=LATENCY_BUCKETS)
_FSYNC_SECONDS = REGISTRY.histogram(
    "repro_wal_fsync_seconds",
    "Wall time of the fsync portion of a WAL append (fsync mode only).",
    buckets=LATENCY_BUCKETS)
_APPENDS_TOTAL = REGISTRY.counter(
    "repro_wal_appends_total", "WAL records durably appended.")
_RESETS_TOTAL = REGISTRY.counter(
    "repro_wal_resets_total",
    "WAL resets (log emptied after a snapshot subsumed it).")


class WalError(Exception):
    """Raised on corruption that cannot be a torn final append."""


def _crc(payload_text: str) -> int:
    return zlib.crc32(payload_text.encode("utf-8")) & 0xFFFFFFFF


def _canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class WalRecord:
    """One intact log record."""

    seq: int
    payload: Any


@dataclass(frozen=True)
class TornTail:
    """Where an interrupted final append left the log.

    ``offset`` is the byte position of the first damaged record —
    truncating the file there yields a log of intact records only.
    """

    offset: int
    reason: str


class WriteAheadLog:
    """The append-only delta log backing one warehouse store."""

    def __init__(self, path: str, fsync: bool = False) -> None:
        self.path = path
        self.fsync = fsync
        self._handle = None

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, seq: int, payload: Any) -> None:
        """Durably append one record (flushed before returning).

        A failed write (disk full, I/O error) truncates the file back
        to its pre-append length before re-raising: leaving partial
        bytes behind would turn the *next* successful append into
        mid-log corruption — a damaged record followed by an intact
        one — which replay rightly refuses to recover.
        """
        text = _canonical(payload)
        line = _canonical({"seq": seq, "crc": _crc(text),
                           "payload": payload}) + "\n"
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        try:
            before = os.path.getsize(self.path)
        except OSError:
            before = 0
        start = time.perf_counter()
        try:
            self._handle.write(line)
            self._handle.flush()
            if self.fsync:
                sync_start = time.perf_counter()
                os.fsync(self._handle.fileno())
                _FSYNC_SECONDS.observe(time.perf_counter() - sync_start)
        except Exception:
            try:
                self.truncate_at(before)
            except OSError:
                pass  # the truncate is best-effort damage control
            raise
        _APPEND_SECONDS.observe(time.perf_counter() - start)
        _APPENDS_TOTAL.inc()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def _scan(self) -> Iterator[Tuple[int, bytes, bool]]:
        """Yield ``(offset, line, complete)`` per physical line."""
        with open(self.path, "rb") as handle:
            offset = 0
            for line in handle:
                complete = line.endswith(b"\n")
                yield offset, line.rstrip(b"\n"), complete
                offset += len(line)

    @staticmethod
    def _decode(line: bytes) -> Tuple[Optional[WalRecord], str]:
        try:
            record = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None, "unparseable record"
        if not (isinstance(record, dict) and "seq" in record
                and "crc" in record and "payload" in record):
            return None, "record missing seq/crc/payload"
        if _crc(_canonical(record["payload"])) != record["crc"]:
            return None, "checksum mismatch"
        return WalRecord(int(record["seq"]), record["payload"]), ""

    def replay(self) -> Tuple[List[WalRecord], Optional[TornTail]]:
        """All intact records, plus the torn tail if the log has one.

        Raises :class:`WalError` when a damaged record is *followed* by
        an intact one — that is mid-log corruption, not a torn append,
        and silently dropping acknowledged records would be data loss.

        Sequence numbers must be strictly increasing: appends hand out
        ``seq`` monotonically, so a duplicate or regressing ``seq`` can
        only mean the log was tampered with or mis-assembled — and a
        follower tailing this log over ``/wal?from=seq`` would double-
        or mis-apply the duplicated records.  That is corruption too,
        never a torn append.
        """
        if not os.path.exists(self.path):
            return [], None
        records: List[WalRecord] = []
        torn: Optional[TornTail] = None
        for offset, line, complete in self._scan():
            record, problem = (self._decode(line) if complete
                               else (None, "no trailing newline"))
            if record is None:
                if torn is None:
                    torn = TornTail(offset, problem)
                continue
            if torn is not None:
                raise WalError(
                    f"{self.path}: damaged record at byte "
                    f"{torn.offset} ({torn.reason}) is followed by an "
                    f"intact one — the log is corrupt, not torn")
            if records and record.seq <= records[-1].seq:
                raise WalError(
                    f"{self.path}: record seq {record.seq} at byte "
                    f"{offset} does not increase on the previous seq "
                    f"{records[-1].seq} — appends are strictly "
                    f"monotonic, so the log is corrupt")
            records.append(record)
        return records, torn

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def truncate_at(self, offset: int) -> None:
        """Drop everything from ``offset`` on (torn-tail cleanup)."""
        self.close()
        with open(self.path, "rb+") as handle:
            handle.truncate(offset)

    def reset(self) -> None:
        """Empty the log (after a snapshot subsumed its records)."""
        size = self.size_bytes()
        self.close()
        with open(self.path, "w", encoding="utf-8"):
            pass
        _RESETS_TOTAL.inc()
        log_event("wal_reset", path=self.path, dropped_bytes=size)

    def size_bytes(self) -> int:
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0
