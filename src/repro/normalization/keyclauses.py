"""Recognition and application of key clauses (paper Sections 3.1, 4.1).

Target-side key clauses like ::

    Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name;

tell the normaliser how to *identify* the objects a transformation clause
creates: a producer's head must determine the key attributes, from which the
Skolem identity is derived (the combination of (T1)/(T3) with (C3) in the
paper's Section 4.1).

Source-side key clauses like the paper's (C8) ::

    X = Y <= X in CountryE, Y in CountryE, X.name = Y.name;

are recognised into :data:`~repro.normalization.congruence.KeyPaths` and fed
to the congruence engine's key-merging (Example 4.1's optimisation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..lang.ast import (Atom, Clause, Const, EqAtom, MemberAtom, Proj,
                        SkolemTerm, Term, Var)
from ..model.keys import KeySpec
from .congruence import Congruence, Unsatisfiable, congruence_of


class KeyClauseError(Exception):
    """Raised for malformed or missing key clauses."""


@dataclass(frozen=True)
class KeyClause:
    """A recognised target key clause.

    ``object_var`` is the clause's variable for the keyed object and
    ``skolem`` its head identity; ``definitions`` are the SNF body atoms
    tracing the Skolem arguments from the object.
    """

    class_name: str
    object_var: str
    skolem: SkolemTerm
    definitions: Tuple[EqAtom, ...]
    source: Clause

    def __str__(self) -> str:
        return str(self.source)


def recognise_key_clause(clause: Clause) -> Optional[KeyClause]:
    """Recognise an SNF clause of key shape, or return None.

    Shape: head is a single ``X = Mk_C(...)``; body is ``X in C`` plus
    definition atoms ``V = rhs`` that (transitively) trace the Skolem
    arguments from ``X``.
    """
    if len(clause.head) != 1:
        return None
    head = clause.head[0]
    if not (isinstance(head, EqAtom) and isinstance(head.left, Var)
            and isinstance(head.right, SkolemTerm)):
        return None
    object_var = head.left.name
    skolem = head.right
    class_name = skolem.class_name

    member_found = False
    definitions: List[EqAtom] = []
    for atom in clause.body:
        if isinstance(atom, MemberAtom):
            if not (isinstance(atom.element, Var)
                    and atom.element.name == object_var
                    and atom.class_name == class_name):
                return None
            member_found = True
        elif isinstance(atom, EqAtom):
            definitions.append(atom)
        else:
            return None
    if not member_found:
        return None
    return KeyClause(class_name, object_var, skolem,
                     tuple(definitions), clause)


def derive_identity(congruence: Congruence, object_term: Term,
                    key_clause: KeyClause) -> Optional[SkolemTerm]:
    """Instantiate a key clause against a clause's congruence.

    ``object_term`` is the clause's variable for an object of the key's
    class.  The key clause's definition atoms are matched (in dependency
    order) by congruence lookups; when every Skolem argument resolves the
    derived identity is returned, otherwise None — the clause does not
    determine the object's key.
    """
    binding: Dict[str, Term] = {key_clause.object_var: object_term}
    pending = list(key_clause.definitions)
    progress = True
    while pending and progress:
        progress = False
        still: List[EqAtom] = []
        for atom in pending:
            resolved = _resolve_definition(congruence, atom, binding)
            if resolved:
                progress = True
            else:
                still.append(atom)
        pending = still

    args: List[Tuple[Optional[str], Term]] = []
    for label, arg in key_clause.skolem.args:
        if isinstance(arg, Const):
            args.append((label, arg))
            continue
        assert isinstance(arg, Var)
        value = binding.get(arg.name)
        if value is None:
            return None
        args.append((label, value))
    return SkolemTerm(key_clause.class_name, tuple(args))


def _resolve_definition(congruence: Congruence, atom: EqAtom,
                        binding: Dict[str, Term]) -> bool:
    """Try to bind ``atom.left`` by looking its rhs up in the congruence."""
    assert isinstance(atom.left, Var)
    if atom.left.name in binding:
        return False
    rhs = atom.right
    if any(name not in binding for name in rhs.variables()):
        return False
    instantiated = rhs.substitute(binding)
    try:
        value = congruence.lookup_rhs(instantiated)
    except ValueError:
        return False
    if value is None:
        return False
    binding[atom.left.name] = value
    return True


def recognise_source_key_paths(clause: Clause) -> Optional[Tuple[str, Tuple[Tuple[str, ...], ...]]]:
    """Recognise a (C8)-style source key clause into key paths.

    Shape: head ``X = Y``; body ``X in C, Y in C`` plus *pure* projection
    definitions implying ``X.p = Y.p`` for a set of attribute paths ``p``.
    Returns ``(class_name, paths)`` or None.

    Soundness: a key clause must be *unconditional*.  Bodies mentioning
    other objects, comparisons, constructions or constants (e.g. the
    paper's (C5), which only equates cities whose ``is_capital`` is true)
    are conditional equalities and are rejected — merging on them would be
    unsound.
    """
    if len(clause.head) != 1:
        return None
    head = clause.head[0]
    if not (isinstance(head, EqAtom) and isinstance(head.left, Var)
            and isinstance(head.right, Var)):
        return None
    x_name, y_name = head.left.name, head.right.name
    members: Dict[str, str] = {}
    for atom in clause.body:
        if isinstance(atom, MemberAtom):
            if not isinstance(atom.element, Var):
                return None
            members[atom.element.name] = atom.class_name
        elif isinstance(atom, EqAtom):
            # Only variable/projection equations over variables: anything
            # with constants or constructions makes the clause conditional.
            if not isinstance(atom.left, Var):
                return None
            if isinstance(atom.right, Var):
                continue
            if not (isinstance(atom.right, Proj)
                    and isinstance(atom.right.subject, Var)):
                return None
        else:
            return None
    if set(members) != {x_name, y_name}:
        return None
    if members.get(x_name) is None or members.get(x_name) != members.get(y_name):
        return None
    class_name = members[x_name]

    try:
        congruence = congruence_of(clause.body)
    except Unsatisfiable:
        return None

    x_paths = _paths_from(congruence, clause.body, x_name)
    y_paths = _paths_from(congruence, clause.body, y_name)
    shared: List[Tuple[str, ...]] = []
    for path, rep in sorted(x_paths.items()):
        other = y_paths.get(path)
        if other is not None and other == rep:
            shared.append(path)
    # Drop paths extending another shared path: if the body equated
    # ``X.country = Y.country`` then ``country.name`` equality is implied
    # and redundant — the faithful (and sound) key keeps the prefix.
    shared = [path for path in shared
              if not any(other != path and path[:len(other)] == other
                         for other in shared)]
    if not shared:
        return None
    return class_name, tuple(shared)


def _paths_from(congruence: Congruence, atoms: Sequence[Atom],
                root: str, max_depth: int = 4) -> Dict[Tuple[str, ...], Term]:
    """All projection paths from ``root`` recorded in the atoms, with the
    representative each path reaches."""
    out: Dict[Tuple[str, ...], Term] = {}
    frontier: List[Tuple[Tuple[str, ...], Term]] = [((), Var(root))]
    attrs = sorted({atom.right.attr for atom in atoms
                    if isinstance(atom, EqAtom)
                    and isinstance(atom.right, Proj)})
    for _ in range(max_depth):
        next_frontier: List[Tuple[Tuple[str, ...], Term]] = []
        for path, term in frontier:
            for attr in attrs:
                try:
                    value = congruence.lookup_projection(term, attr)
                except ValueError:
                    continue
                if value is None:
                    continue
                new_path = path + (attr,)
                if new_path not in out:
                    out[new_path] = value
                    next_frontier.append((new_path, value))
        frontier = next_frontier
        if not frontier:
            break
    return out


def key_paths_from_spec(keys: KeySpec) -> Dict[str, Tuple[Tuple[Tuple[str, ...], ...], ...]]:
    """Alternative-key metadata from a schema-level key specification.

    Each class gets one alternative: the tuple of its key function's paths.
    """
    out: Dict[str, Tuple[Tuple[Tuple[str, ...], ...], ...]] = {}
    for cname in keys.classes():
        fn = keys.key_for(cname)
        out[cname] = (tuple(path for _, path in fn.components),)
    return out
