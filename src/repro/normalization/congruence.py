"""Congruence closure over SNF atom sets.

This is the reasoning core of the normaliser and of the constraint-based
optimiser (paper Section 4.2).  Given the atoms of an SNF clause it
maintains equivalence classes of variables/constants under:

* explicit equalities ``X = Y`` and ``X = c``;
* *functionality* of projection: two atoms ``V = X.a`` and ``W = X.a``
  imply ``V = W`` (congruence);
* *injectivity* of constructors: ``X = ins_l(V)`` and ``X = ins_l(W)``
  imply ``V = W``; likewise for record fields and Skolem arguments
  (Skolem functions are injective by definition, Section 3.1);
* *key constraints* on classes: two members of a keyed class whose key
  paths are provably equal are the same object (the paper's Example 4.1
  optimisation).

It simultaneously detects unsatisfiability: distinct constants identified,
clashing variant labels or Skolem classes, an object in two classes,
``X != X``, false constant comparisons.  Unsatisfiable clauses can never
fire and are rejected, "causing unsatisfiable rules to be rejected"
(Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..lang.ast import (
    Atom, Const, EqAtom, InAtom, LeqAtom, LtAtom, MemberAtom, NeqAtom, Proj,
    RecordTerm, SkolemTerm, Term, Var, VariantTerm)
from ..model.values import Record, Variant

#: One attribute path: a chain of attribute names.
Path = Tuple[str, ...]
#: One key: the tuple of paths whose combined value determines an object.
KeyTuple = Tuple[Path, ...]
#: Key metadata for the optimiser: class name -> *alternative* keys (a
#: class may have several independent keys; each alone suffices to merge).
KeyPaths = Mapping[str, Tuple[KeyTuple, ...]]


class Unsatisfiable(Exception):
    """The atom set can never be satisfied."""


@dataclass(frozen=True)
class _Node:
    """A union-find node id: variables by name, constants by value."""

    kind: str  # "var" | "const"
    payload: object

    def __str__(self) -> str:
        return str(self.payload)


def _var(name: str) -> _Node:
    return _Node("var", name)


def _const(value: object) -> _Node:
    # bool is an int in Python; tag the type to keep true != 1.
    return _Node("const", (type(value).__name__, value))


@dataclass(frozen=True)
class _App:
    """A function application over representative nodes (for congruence)."""

    op: str            # "proj:a" | "variant:l" | "record:l1,l2" | "skolem:C"
    args: Tuple[_Node, ...]


class Congruence:
    """Incremental congruence closure over SNF atoms."""

    def __init__(self, key_paths: Optional[KeyPaths] = None) -> None:
        self._parent: Dict[_Node, _Node] = {}
        self._members: Dict[_Node, Set[str]] = {}   # rep -> class names
        # rep -> constructor definition (injective): (_App)
        self._constructions: Dict[_Node, _App] = {}
        # app -> result rep (for functional lookups incl. projections)
        self._apps: Dict[_App, _Node] = {}
        self._key_paths = dict(key_paths or {})
        self._disequalities: List[Tuple[_Node, _Node]] = []

    # ------------------------------------------------------------------
    # Union-find
    # ------------------------------------------------------------------
    def _find(self, node: _Node) -> _Node:
        root = node
        while self._parent.get(root, root) != root:
            root = self._parent[root]
        while self._parent.get(node, node) != node:
            self._parent[node], node = root, self._parent[node]
        return root

    def _union(self, left: _Node, right: _Node) -> None:
        left, right = self._find(left), self._find(right)
        if left == right:
            return
        if left.kind == "const" and right.kind == "const":
            raise Unsatisfiable(
                f"distinct constants equated: {left} = {right}")
        # Prefer constants as representatives, then original variables
        # over auxiliaries, then lexicographic for determinism.
        if _rep_priority(right) < _rep_priority(left):
            left, right = right, left
        self._parent[right] = left
        # Merge class memberships.
        if right in self._members:
            for cname in self._members.pop(right):
                self._add_membership(left, cname)
        # Merge constructor definitions (injectivity).  Checking *both*
        # merged roots keeps the closure order-independent: whichever
        # side carried the construction, it is re-anchored (and, when the
        # surviving root is a constant, reconciled) the same way.
        for node in (right, left):
            if node in self._constructions and self._find(node) != node:
                self._add_construction(node, self._constructions.pop(node))

    def _union_changed(self, left: _Node, right: _Node) -> bool:
        """Union returning whether the two roots were actually distinct."""
        if self._find(left) == self._find(right):
            return False
        self._union(left, right)
        return True

    def _reconcile_const_construction(self, const_node: _Node,
                                      app: _App) -> bool:
        """A constant equated with a constructed value.

        Order-independence requires this to behave identically whether
        the construction reaches the constant via :meth:`_union` (the
        constant becomes the representative of a constructed variable)
        or directly in :meth:`_add_construction` (``0 = <a: X>``).  The
        constant's *value* decides: a variant/record value with the same
        shape decomposes (unifying the construction's arguments with the
        value's components); anything else can never equal a constructed
        value and is Unsatisfiable.  Returns True when any decomposition
        merged previously distinct classes.
        """
        assert const_node.kind == "const"
        value = const_node.payload[1]  # (type tag, value)
        op, _, detail = app.op.partition(":")
        if op == "variant" and isinstance(value, Variant):
            if value.label != detail:
                raise Unsatisfiable(
                    f"constant {const_node} has variant label "
                    f"{value.label!r}, not {detail!r}")
            return self._union_changed(app.args[0], _const(value.value))
        if op == "record" and isinstance(value, Record):
            labels = tuple(detail.split(",")) if detail else ()
            if set(labels) != set(value.labels()):
                raise Unsatisfiable(
                    f"constant {const_node} has record labels "
                    f"{sorted(value.labels())}, not {sorted(labels)}")
            changed = False
            for label, arg in zip(labels, app.args, strict=False):
                changed |= self._union_changed(arg, _const(value.get(label)))
            return changed
        raise Unsatisfiable(
            f"constant {const_node} equated with a constructed "
            f"value ({app.op})")

    # ------------------------------------------------------------------
    # Node helpers
    # ------------------------------------------------------------------
    def _node_of(self, term: Term) -> _Node:
        if isinstance(term, Var):
            return self._find(_var(term.name))
        if isinstance(term, Const):
            return self._find(_const(term.value))
        raise ValueError(f"not an SNF-simple term: {term!r}")

    def _add_membership(self, rep: _Node, class_name: str) -> None:
        rep = self._find(rep)
        if rep.kind == "const":
            raise Unsatisfiable(
                f"constant {rep} asserted to be in class {class_name}")
        classes = self._members.setdefault(rep, set())
        if classes and class_name not in classes:
            other = sorted(classes)[0]
            raise Unsatisfiable(
                f"object in two classes: {class_name} and {other}")
        classes.add(class_name)

    def _add_construction(self, rep: _Node, app: _App) -> None:
        rep = self._find(rep)
        if rep.kind == "const":
            # Constructions are never stored under constant reps: the
            # clash (or decomposition) happens right here, in whichever
            # atom/argument order the constant and the construction meet.
            self._reconcile_const_construction(rep, app)
            return
        existing = self._constructions.get(rep)
        if existing is None:
            self._constructions[rep] = app
            return
        if existing.op != app.op or len(existing.args) != len(app.args):
            raise Unsatisfiable(
                f"conflicting constructions {existing.op} vs {app.op}")
        # Injectivity: unify the arguments pairwise.
        for old, new in zip(existing.args, app.args, strict=True):
            self._union(old, new)

    def _register_app(self, app: _App, result: _Node) -> None:
        """Functional lookup table (projection congruence)."""
        existing = self._apps.get(app)
        if existing is None:
            self._apps[app] = result
        else:
            self._union(existing, result)

    # ------------------------------------------------------------------
    # Atom ingestion
    # ------------------------------------------------------------------
    def add_atom(self, atom: Atom) -> None:
        if isinstance(atom, EqAtom):
            self._add_equality(atom.left, atom.right)
        elif isinstance(atom, MemberAtom):
            self._add_membership(self._node_of(atom.element),
                                 atom.class_name)
        elif isinstance(atom, NeqAtom):
            self._disequalities.append(
                (self._node_of(atom.left), self._node_of(atom.right)))
        elif isinstance(atom, (InAtom, LtAtom, LeqAtom)):
            pass  # no equational content
        else:
            raise ValueError(f"unknown atom kind: {atom!r}")

    def _add_equality(self, left: Term, right: Term) -> None:
        if isinstance(right, (Var, Const)):
            self._union(self._node_of_fresh(left), self._node_of_fresh(right))
            return
        target = self._node_of_fresh(left)
        if isinstance(right, Proj):
            app = _App(f"proj:{right.attr}",
                       (self._node_of_fresh(right.subject),))
            self._register_app(app, target)
            return
        if isinstance(right, VariantTerm):
            app = _App(f"variant:{right.label}",
                       (self._node_of_fresh(right.payload),))
            self._add_construction(target, app)
            self._register_app(app, target)
            return
        if isinstance(right, RecordTerm):
            labels = ",".join(right.labels())
            app = _App(f"record:{labels}", tuple(
                self._node_of_fresh(value) for _, value in right.fields))
            self._add_construction(target, app)
            self._register_app(app, target)
            return
        if isinstance(right, SkolemTerm):
            arg_labels = ",".join(
                label if label is not None else f"arg{index}"
                for index, (label, _) in enumerate(right.args))
            app = _App(f"skolem:{right.class_name}:{arg_labels}", tuple(
                self._node_of_fresh(value) for _, value in right.args))
            self._add_construction(target, app)
            self._register_app(app, target)
            return
        raise ValueError(f"not an SNF right-hand side: {right!r}")

    def _node_of_fresh(self, term: Term) -> _Node:
        node = self._node_of(term)
        return node

    # ------------------------------------------------------------------
    # Closure
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Run congruence + key merging to a fixpoint, then check."""
        for _ in range(10_000):
            if not (self._congruence_round() or self._key_round()):
                break
        else:  # pragma: no cover - defensive
            raise RuntimeError("congruence closure did not converge")
        self._check_disequalities()

    def _congruence_round(self) -> bool:
        """Re-canonicalise the app table; returns True on any merge."""
        changed = False
        rebuilt: Dict[_App, _Node] = {}
        for app, result in list(self._apps.items()):
            canon = _App(app.op, tuple(self._find(a) for a in app.args))
            result = self._find(result)
            existing = rebuilt.get(canon)
            if existing is None:
                rebuilt[canon] = result
            elif self._find(existing) != result:
                self._union(existing, result)
                changed = True
        self._apps = rebuilt
        # Re-canonicalise constructions (keys may have merged reps).
        constructions: Dict[_Node, _App] = {}
        for rep, app in list(self._constructions.items()):
            canon_rep = self._find(rep)
            canon_app = _App(app.op, tuple(self._find(a) for a in app.args))
            if canon_rep.kind == "const":
                # A constructed class was merged into a constant since
                # this entry was stored: reconcile, don't re-anchor.
                if self._reconcile_const_construction(canon_rep, canon_app):
                    changed = True
                continue
            if canon_rep in constructions:
                existing_app = constructions[canon_rep]
                if (existing_app.op != canon_app.op
                        or len(existing_app.args) != len(canon_app.args)):
                    raise Unsatisfiable(
                        f"conflicting constructions {existing_app.op} "
                        f"vs {canon_app.op}")
                for old, new in zip(existing_app.args, canon_app.args,
                                    strict=True):
                    if self._find(old) != self._find(new):
                        self._union(old, new)
                        changed = True
            else:
                constructions[canon_rep] = canon_app
        self._constructions = constructions
        return changed

    def _key_round(self) -> bool:
        """Merge same-class members with provably equal keys."""
        if not self._key_paths:
            return False
        changed = False
        by_class: Dict[str, List[_Node]] = {}
        for rep, classes in list(self._members.items()):
            rep = self._find(rep)
            for cname in classes:
                if cname in self._key_paths:
                    by_class.setdefault(cname, []).append(rep)
        for cname, reps in by_class.items():
            for paths in self._key_paths[cname]:
                signature: Dict[Tuple[_Node, ...], _Node] = {}
                for rep in reps:
                    key = self._key_signature(rep, paths)
                    if key is None:
                        continue
                    other = signature.get(key)
                    if other is None:
                        signature[key] = rep
                    elif self._find(other) != self._find(rep):
                        self._union(other, rep)
                        changed = True
        return changed

    def _key_signature(self, rep: _Node,
                       paths: Tuple[Tuple[str, ...], ...]
                       ) -> Optional[Tuple[_Node, ...]]:
        components: List[_Node] = []
        for path in paths:
            node = self._find(rep)
            for attr in path:
                step = self._apps.get(
                    _App(f"proj:{attr}", (self._find(node),)))
                if step is None:
                    return None
                node = self._find(step)
            components.append(node)
        return tuple(components)

    def _check_disequalities(self) -> None:
        for left, right in self._disequalities:
            if self._find(left) == self._find(right):
                raise Unsatisfiable(
                    f"disequality violated: {left} != {right}")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def representative(self, term: Term) -> Term:
        """The canonical Var/Const for an SNF-simple term."""
        node = self._node_of(term)
        if node.kind == "const":
            return Const(node.payload[1])  # type: ignore[index]
        return Var(str(node.payload))

    def same(self, left: Term, right: Term) -> bool:
        return self._node_of(left) == self._node_of(right)

    def classes_of(self, term: Term) -> Set[str]:
        return set(self._members.get(self._node_of(term), ()))

    def lookup_projection(self, subject: Term, attr: str) -> Optional[Term]:
        """The representative of ``subject.attr`` if recorded."""
        app = _App(f"proj:{attr}", (self._node_of(subject),))
        node = self._apps.get(app)
        if node is None:
            return None
        return self._node_to_term(self._find(node))

    def lookup_rhs(self, rhs: Term) -> Optional[Term]:
        """The representative equal to an SNF right-hand side, if recorded.

        ``rhs`` must have Var/Const leaves already resolvable in this
        congruence; returns None when no atom defined such a value.
        """
        if isinstance(rhs, (Var, Const)):
            return self._node_to_term(self._node_of(rhs))
        app = self._app_of_rhs(rhs)
        node = self._apps.get(app)
        if node is None:
            return None
        return self._node_to_term(self._find(node))

    def _app_of_rhs(self, rhs: Term) -> _App:
        if isinstance(rhs, Proj):
            return _App(f"proj:{rhs.attr}", (self._node_of(rhs.subject),))
        if isinstance(rhs, VariantTerm):
            return _App(f"variant:{rhs.label}",
                        (self._node_of(rhs.payload),))
        if isinstance(rhs, RecordTerm):
            labels = ",".join(rhs.labels())
            return _App(f"record:{labels}", tuple(
                self._node_of(value) for _, value in rhs.fields))
        if isinstance(rhs, SkolemTerm):
            arg_labels = ",".join(
                label if label is not None else f"arg{index}"
                for index, (label, _) in enumerate(rhs.args))
            return _App(f"skolem:{rhs.class_name}:{arg_labels}", tuple(
                self._node_of(value) for _, value in rhs.args))
        raise ValueError(f"not an SNF right-hand side: {rhs!r}")

    def construction_of(self, term: Term) -> Optional[Tuple[str, Tuple[Term, ...]]]:
        """The constructor definition of a term's class, if any."""
        app = self._constructions.get(self._node_of(term))
        if app is None:
            return None
        return app.op, tuple(self._node_to_term(self._find(a))
                             for a in app.args)

    def _node_to_term(self, node: _Node) -> Term:
        if node.kind == "const":
            return Const(node.payload[1])  # type: ignore[index]
        return Var(str(node.payload))


def _rep_priority(node: _Node) -> Tuple[int, str]:
    """Lower sorts first: constants, then user variables, then auxiliaries."""
    if node.kind == "const":
        return (0, str(node.payload))
    name = str(node.payload)
    if name.startswith("_s"):
        return (2, name)
    return (1, name)


def congruence_of(atoms: Sequence[Atom],
                  key_paths: Optional[KeyPaths] = None) -> Congruence:
    """Build and close a congruence over ``atoms``.

    Raises :class:`Unsatisfiable` when the atoms are contradictory.
    """
    congruence = Congruence(key_paths)
    for atom in atoms:
        congruence.add_atom(atom)
    congruence.close()
    _check_constant_comparisons(atoms, congruence)
    return congruence


def _check_constant_comparisons(atoms: Sequence[Atom],
                                congruence: Congruence) -> None:
    for atom in atoms:
        if not isinstance(atom, (LtAtom, LeqAtom)):
            continue
        left = congruence.representative(atom.left)
        right = congruence.representative(atom.right)
        if isinstance(left, Const) and isinstance(right, Const):
            try:
                holds = (left.value < right.value
                         if isinstance(atom, LtAtom)
                         else left.value <= right.value)
            except TypeError:
                raise Unsatisfiable(
                    f"incomparable constants in {atom}") from None
            if not holds:
                raise Unsatisfiable(f"false comparison {atom}")
        elif (isinstance(atom, LtAtom)
                and congruence.same(atom.left, atom.right)):
            raise Unsatisfiable(f"irreflexive comparison {atom}")
