"""The Morphase compilation pipeline: SNF, congruence, normal form."""

from .snf import SnfError, is_snf_atom, is_snf_clause, snf_clause, snf_program
from .congruence import Congruence, KeyPaths, Unsatisfiable, congruence_of
from .keyclauses import (KeyClause, KeyClauseError, derive_identity,
                         key_paths_from_spec, recognise_key_clause,
                         recognise_source_key_paths)
from .optimize import (clause_signature, is_body_satisfiable,
                       simplify_clause)
from .normalize import (NormalizationError, NormalizationOptions,
                        NormalizationReport, NormalizedProgram, normalize)

__all__ = [
    "SnfError", "is_snf_atom", "is_snf_clause", "snf_clause", "snf_program",
    "Congruence", "KeyPaths", "Unsatisfiable", "congruence_of",
    "KeyClause", "KeyClauseError", "derive_identity", "key_paths_from_spec",
    "recognise_key_clause", "recognise_source_key_paths",
    "clause_signature", "is_body_satisfiable", "simplify_clause",
    "NormalizationError", "NormalizationOptions", "NormalizationReport",
    "NormalizedProgram", "normalize",
]
