"""Normal-form derivation for WOL transformation programs (paper Section 5).

A transformation clause in *normal form* completely defines an insert into
the target database in terms of the source database only: its body contains
no target classes, and its head identifies a target object (by Skolem key)
and supplies its attribute values.  Morphase trades compile-time expense for
run-time efficiency by rewriting a program so that all clauses are in normal
form; the result can then be applied in a single pass.

The pipeline implemented here:

1. **SNF** every clause (:mod:`repro.normalization.snf`).
2. **Classify** clauses: source constraints, target key clauses, producers
   (head creates target objects), assigners (head writes attributes of
   target objects identified in the body), and residual constraints.
3. **Derive identities** for created objects from key clauses
   (Section 4.1: keys determine transformations).
4. **Close producers**: unfold body references to target classes through
   the producers of those classes, in topological order of the
   identity-dependency graph; a cycle violates Morphase's non-recursiveness
   restriction and is reported.
5. **Merge assigners** into producers, one combination per choice of
   assigner per missing attribute — the source of the potential exponential
   blow-up the paper reports when constraints are omitted; with constraints
   the congruence engine rejects unsatisfiable combinations and collapses
   redundant joins (Section 4.2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from ..lang.ast import (
    Atom, Clause, EqAtom, InAtom, MemberAtom, Program, Proj, SkolemTerm, Term,
    Var)
from ..lang.range_restriction import body_bound_variables
from ..model.keys import KeySpec
from ..model.schema import Schema
from .congruence import KeyPaths, Unsatisfiable, congruence_of
from .keyclauses import (KeyClause, derive_identity, key_paths_from_spec,
                         recognise_key_clause, recognise_source_key_paths)
from .optimize import clause_signature, is_body_satisfiable, simplify_clause
from .snf import snf_clause


class NormalizationError(Exception):
    """Raised when a program cannot be brought into normal form."""


@dataclass
class NormalizationOptions:
    """Tuning knobs, mirroring the paper's ablations.

    ``use_constraints``
        apply constraint knowledge: source-key merging of variables and
        rejection of unsatisfiable derived clauses (Section 4.2).  Off, the
        normaliser keeps every combination — the paper's exponential case.
    ``simplify``
        canonicalise bodies and drop unused definitions.
    ``max_clauses``
        guard against runaway blow-up; exceeded -> error.
    """

    use_constraints: bool = True
    simplify: bool = True
    max_clauses: int = 200_000
    #: (class, attribute) pairs that need not be covered by every emitted
    #: clause: the attribute accumulates at run time from separate merged
    #: clauses (and may be filled by executor defaults).  Used by the
    #: schema-evolution 'default' policy.
    optional_attributes: FrozenSet[Tuple[str, str]] = frozenset()


@dataclass
class NormalizationReport:
    """Statistics of one normalisation run (basis of benches E3/E4)."""

    input_clauses: int = 0
    input_size: int = 0
    normal_clauses: int = 0
    normal_size: int = 0
    producers: int = 0
    assigners: int = 0
    pruned_unsatisfiable: int = 0
    merged_combinations: int = 0
    uncovered: Dict[str, List[str]] = field(default_factory=dict)
    elapsed_seconds: float = 0.0


@dataclass
class NormalizedProgram:
    """The output of :func:`normalize`."""

    clauses: Tuple[Clause, ...]
    source_constraints: Tuple[Clause, ...]
    target_constraints: Tuple[Clause, ...]
    key_clauses: Dict[str, KeyClause]
    source_key_paths: Dict[str, Tuple[Tuple[Tuple[str, ...], ...], ...]]
    report: NormalizationReport

    def program(self) -> Program:
        return Program(self.clauses)

    def size(self) -> int:
        return sum(clause.size() for clause in self.clauses)


# ----------------------------------------------------------------------
# Clause analysis
# ----------------------------------------------------------------------

@dataclass
class _Analyzed:
    """An SNF clause with its target-object structure extracted."""

    clause: Clause
    created: Dict[str, str]          # created var -> class (head members)
    identities: Dict[str, SkolemTerm]  # var -> head identity
    assigned_attrs: Dict[str, Set[str]]  # var -> attrs written in head
    external: Dict[str, str]         # body-identified target var -> class

    @property
    def name(self) -> str:
        return self.clause.name or "<anon>"


def _head_assignments(clause: Clause) -> Dict[str, Set[str]]:
    """Map object var -> attributes written by head atoms ``V = X.a``.

    Set-insertion handles (``V = X.a`` paired with a head ``E in V``) are
    not assignments: the attribute accumulates elements instead.
    """
    collection_vars = {
        atom.collection.name for atom in clause.head
        if isinstance(atom, InAtom) and isinstance(atom.collection, Var)}
    out: Dict[str, Set[str]] = {}
    for atom in clause.head:
        if (isinstance(atom, EqAtom) and isinstance(atom.right, Proj)
                and isinstance(atom.right.subject, Var)
                and not (isinstance(atom.left, Var)
                         and atom.left.name in collection_vars)):
            out.setdefault(atom.right.subject.name, set()).add(
                atom.right.attr)
    return out


def _analyze(clause: Clause, target_classes: FrozenSet[str]) -> _Analyzed:
    created: Dict[str, str] = {}
    for atom in clause.head:
        if (isinstance(atom, MemberAtom)
                and atom.class_name in target_classes
                and isinstance(atom.element, Var)):
            created[atom.element.name] = atom.class_name

    identities: Dict[str, SkolemTerm] = {}
    for atom in clause.head:
        if (isinstance(atom, EqAtom) and isinstance(atom.left, Var)
                and isinstance(atom.right, SkolemTerm)
                and atom.right.class_name in target_classes):
            identities[atom.left.name] = atom.right

    body_members: Dict[str, str] = {}
    for atom in clause.body:
        if (isinstance(atom, MemberAtom)
                and atom.class_name in target_classes
                and isinstance(atom.element, Var)):
            body_members[atom.element.name] = atom.class_name

    assigned = _head_assignments(clause)
    external = {var: cname for var, cname in body_members.items()
                if var in assigned and var not in created}
    return _Analyzed(clause, created, identities, assigned, external)


# ----------------------------------------------------------------------
# Identity derivation
# ----------------------------------------------------------------------

def _ensure_identities(analyzed: _Analyzed,
                       key_clauses: Mapping[str, KeyClause]) -> _Analyzed:
    """Add derived ``X = Mk_C(...)`` head atoms for created objects."""
    missing = [var for var in analyzed.created
               if var not in analyzed.identities]
    if not missing:
        return analyzed
    try:
        congruence = congruence_of(analyzed.clause.atoms())
    except Unsatisfiable as exc:
        raise NormalizationError(
            f"clause {analyzed.name}: head and body are "
            f"contradictory") from exc
    new_atoms: List[Atom] = []
    for var in missing:
        cname = analyzed.created[var]
        key_clause = key_clauses.get(cname)
        if key_clause is None:
            raise NormalizationError(
                f"clause {analyzed.name}: no key clause for target class "
                f"{cname}; cannot identify the created object {var}")
        identity = derive_identity(congruence, Var(var), key_clause)
        if identity is None:
            raise NormalizationError(
                f"clause {analyzed.name}: cannot derive the key of class "
                f"{cname} for object {var}; the clause does not determine "
                f"all key attributes")
        analyzed.identities[var] = identity
        new_atoms.append(EqAtom(Var(var), identity))
    clause = Clause(analyzed.clause.head + tuple(new_atoms),
                    analyzed.clause.body, name=analyzed.clause.name,
                    kind=analyzed.clause.kind)
    return _Analyzed(clause, analyzed.created, analyzed.identities,
                     analyzed.assigned_attrs, analyzed.external)


def _identity_args_evaluable(analyzed: _Analyzed) -> None:
    bound = body_bound_variables(analyzed.clause)
    for var, identity in analyzed.identities.items():
        if var not in analyzed.created:
            continue
        for name in identity.variables():
            if name not in bound and name not in analyzed.created:
                raise NormalizationError(
                    f"clause {analyzed.name}: key argument {name} of "
                    f"{identity} is not determined by the body")


# ----------------------------------------------------------------------
# Unfolding
# ----------------------------------------------------------------------

def _reads_of(clause: Clause, var: str) -> List[EqAtom]:
    """Body atoms reading attributes of ``var``: ``V = var.a``."""
    reads = []
    for atom in clause.body:
        if (isinstance(atom, EqAtom) and isinstance(atom.right, Proj)
                and isinstance(atom.right.subject, Var)
                and atom.right.subject.name == var):
            reads.append(atom)
    return reads


def _assignment_value(producer: Clause, object_var: str,
                      attr: str) -> Optional[Term]:
    """The value the producer's head assigns to ``object_var.attr``."""
    for atom in producer.head:
        if (isinstance(atom, EqAtom) and isinstance(atom.right, Proj)
                and isinstance(atom.right.subject, Var)
                and atom.right.subject.name == object_var
                and atom.right.attr == attr):
            return atom.left
    return None


def _unfold_member(clause: Clause, member: MemberAtom,
                   producer: _Analyzed) -> Optional[Clause]:
    """Replace a body ``Y in D`` through one closed producer of ``D``.

    Returns the unfolded clause, or None when a read of ``Y`` cannot be
    resolved against the producer's head assignments.
    """
    assert isinstance(member.element, Var)
    y = member.element.name
    renamed = producer.clause.rename_apart(clause.variables())
    produced_var = None
    for var, cname in producer.created.items():
        if cname == member.class_name:
            produced_var = var
            break
    if produced_var is None:
        return None
    # Recover the renamed names by positional correspondence.
    rename_map = _infer_renaming(producer.clause, renamed)
    produced_var = rename_map.get(produced_var, produced_var)
    identity = None
    for atom in renamed.head:
        if (isinstance(atom, EqAtom) and isinstance(atom.left, Var)
                and atom.left.name == produced_var
                and isinstance(atom.right, SkolemTerm)):
            identity = atom.right
            break
    if identity is None:
        return None

    new_body: List[Atom] = []
    for atom in clause.body:
        if atom == member:
            continue
        if (isinstance(atom, EqAtom) and isinstance(atom.right, Proj)
                and isinstance(atom.right.subject, Var)
                and atom.right.subject.name == y):
            value = _assignment_value(renamed, produced_var,
                                      atom.right.attr)
            if value is None:
                return None
            new_body.append(EqAtom(atom.left, value))
            continue
        new_body.append(atom)
    new_body.extend(renamed.body)
    new_body.append(EqAtom(Var(y), identity))
    return Clause(clause.head, tuple(new_body), name=clause.name,
                  kind=clause.kind)


def _infer_renaming(original: Clause, renamed: Clause) -> Dict[str, str]:
    """Variable mapping between a clause and its renamed-apart copy."""
    mapping: Dict[str, str] = {}
    for orig_atom, new_atom in zip(original.atoms(), renamed.atoms(),
                                   strict=True):
        _match_vars(orig_atom, new_atom, mapping)
    return mapping


def _match_vars(orig, new, mapping: Dict[str, str]) -> None:
    orig_terms = orig.terms() if isinstance(orig, Atom) else [orig]
    new_terms = new.terms() if isinstance(new, Atom) else [new]
    for o, n in zip(orig_terms, new_terms, strict=True):
        for osub, nsub in zip(o.walk(), n.walk(), strict=True):
            if isinstance(osub, Var) and isinstance(nsub, Var):
                mapping[osub.name] = nsub.name


def _close_clause(analyzed: _Analyzed, target_classes: FrozenSet[str],
                  closed: Mapping[str, List[_Analyzed]],
                  keep_members: FrozenSet[str],
                  key_paths: Optional[KeyPaths],
                  options: NormalizationOptions,
                  report: NormalizationReport) -> List[Clause]:
    """Unfold all body target members (except ``keep_members`` vars)."""
    results: List[Clause] = []
    worklist: List[Clause] = [analyzed.clause]
    while worklist:
        clause = worklist.pop()
        member = None
        for atom in clause.body:
            if (isinstance(atom, MemberAtom)
                    and atom.class_name in target_classes
                    and isinstance(atom.element, Var)
                    and atom.element.name not in keep_members):
                member = atom
                break
        if member is None:
            results.append(clause)
            continue
        producers = closed.get(member.class_name, [])
        for producer in producers:
            unfolded = _unfold_member(clause, member, producer)
            if unfolded is None:
                continue
            if options.use_constraints and not is_body_satisfiable(
                    unfolded, key_paths):
                report.pruned_unsatisfiable += 1
                continue
            worklist.append(unfolded)
            if (len(worklist) + len(results)) > options.max_clauses:
                raise NormalizationError(
                    "normalisation exceeded the clause budget "
                    f"({options.max_clauses}); the program may be "
                    "recursive or exponentially ambiguous")
    return results


# ----------------------------------------------------------------------
# Assigner merging
# ----------------------------------------------------------------------

def _merge_assigner(producer: _Analyzed, producer_var: str,
                    assigner: _Analyzed, assigner_var: str
                    ) -> Optional[Clause]:
    """Merge one closed assigner into one closed producer."""
    renamed = assigner.clause.rename_apart(producer.clause.variables())
    rename_map = _infer_renaming(assigner.clause, renamed)
    x_a = rename_map.get(assigner_var, assigner_var)
    # Substitute the assigner's object variable by the producer's.
    substituted = renamed.substitute({x_a: Var(producer_var)})

    body: List[Atom] = list(producer.clause.body)
    for atom in substituted.body:
        if (isinstance(atom, MemberAtom)
                and isinstance(atom.element, Var)
                and atom.element.name == producer_var):
            continue  # the producer's own membership
        if (isinstance(atom, EqAtom) and isinstance(atom.right, Proj)
                and isinstance(atom.right.subject, Var)
                and atom.right.subject.name == producer_var):
            value = _assignment_value(producer.clause, producer_var,
                                      atom.right.attr)
            if value is None:
                return None  # reads an attribute the producer lacks
            body.append(EqAtom(atom.left, value))
            continue
        body.append(atom)

    head = list(producer.clause.head) + [
        atom for atom in substituted.head if atom not in producer.clause.head]
    name_parts = [producer.clause.name or "p", assigner.clause.name or "a"]
    return Clause(tuple(head), tuple(body), name="+".join(name_parts),
                  kind=producer.clause.kind)


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------

def normalize(program: Program, source_schema: Schema,
              target_schema: Schema,
              source_keys: Optional[KeySpec] = None,
              options: Optional[NormalizationOptions] = None
              ) -> NormalizedProgram:
    """Rewrite ``program`` into an equivalent normal-form program.

    ``source_schema`` / ``target_schema`` decide which classes are read and
    which are written; ``source_keys`` supplies schema-level surrogate keys
    for the optimiser (key clauses inside the program are recognised too).
    """
    options = options or NormalizationOptions()
    report = NormalizationReport()
    start = time.perf_counter()

    source_classes = frozenset(source_schema.class_names())
    target_classes = frozenset(target_schema.class_names())
    overlap = source_classes & target_classes
    if overlap:
        raise NormalizationError(
            f"source and target schemas share classes: {sorted(overlap)}")

    report.input_clauses = len(program)
    report.input_size = program.size()

    snf_clauses = [snf_clause(clause) for clause in program]

    source_constraints: List[Clause] = []
    target_constraints: List[Clause] = []
    key_clauses: Dict[str, KeyClause] = {}
    producers: List[_Analyzed] = []
    assigners: List[_Analyzed] = []
    source_key_paths: Dict[str, Tuple[Tuple[Tuple[str, ...], ...], ...]] = {}
    if source_keys is not None:
        source_key_paths.update(key_paths_from_spec(source_keys))

    for clause in snf_clauses:
        mentioned = clause.classes_mentioned()
        unknown = mentioned - source_classes - target_classes
        if unknown:
            raise NormalizationError(
                f"clause {clause.name or clause}: unknown classes "
                f"{sorted(unknown)}")
        touches_target = bool(mentioned & target_classes)
        if not touches_target:
            source_constraints.append(clause)
            recognised = recognise_source_key_paths(clause)
            if recognised is not None:
                cname, paths = recognised
                existing = source_key_paths.get(cname, ())
                if paths not in existing:
                    source_key_paths[cname] = existing + (paths,)
            continue
        key_clause = recognise_key_clause(clause)
        if key_clause is not None and key_clause.class_name in target_classes:
            if key_clause.class_name in key_clauses:
                raise NormalizationError(
                    f"multiple key clauses for class "
                    f"{key_clause.class_name}")
            key_clauses[key_clause.class_name] = key_clause
            continue
        analyzed = _analyze(clause, target_classes)
        if analyzed.created:
            if analyzed.external:
                raise NormalizationError(
                    f"clause {analyzed.name}: creates objects and assigns "
                    f"attributes of other target objects in one clause; "
                    f"split it into separate clauses")
            producers.append(analyzed)
        elif analyzed.external:
            assigners.append(analyzed)
        else:
            target_constraints.append(clause)

    key_paths: Optional[KeyPaths] = (
        source_key_paths if options.use_constraints else None)

    report.producers = len(producers)
    report.assigners = len(assigners)

    # Identity derivation.
    producers = [_ensure_identities(p, key_clauses) for p in producers]
    for producer in producers:
        _identity_args_evaluable(producer)

    # Producer dependency graph over target classes.
    by_class: Dict[str, List[_Analyzed]] = {}
    deps: Dict[str, Set[str]] = {cname: set() for cname in target_classes}
    for producer in producers:
        body_targets = {
            atom.class_name for atom in producer.clause.body
            if isinstance(atom, MemberAtom)
            and atom.class_name in target_classes}
        for cname in set(producer.created.values()):
            by_class.setdefault(cname, []).append(producer)
            deps[cname] |= body_targets
    order = _topological(deps)

    # Close producers class by class.
    closed: Dict[str, List[_Analyzed]] = {}
    for cname in order:
        closed[cname] = []
        for producer in by_class.get(cname, []):
            for clause in _close_clause(producer, target_classes, closed,
                                        frozenset(), key_paths, options,
                                        report):
                if options.simplify:
                    simplified = simplify_clause(
                        clause, key_paths,
                        prune_unsat=options.use_constraints)
                    if simplified is None:
                        report.pruned_unsatisfiable += 1
                        continue
                    clause = simplified
                analyzed = _analyze(clause, target_classes)
                closed[cname].append(analyzed)

    # Close assigners (keep their object variables' memberships).
    closed_assigners: Dict[str, List[Tuple[str, _Analyzed]]] = {}
    for assigner in assigners:
        if len(assigner.external) != 1:
            raise NormalizationError(
                f"clause {assigner.name}: assigns attributes of "
                f"{len(assigner.external)} distinct target objects; only "
                f"one is supported")
        (obj_var, cname), = assigner.external.items()
        for clause in _close_clause(assigner, target_classes, closed,
                                    frozenset({obj_var}), key_paths,
                                    options, report):
            if options.simplify:
                simplified = simplify_clause(
                    clause, key_paths, prune_unsat=options.use_constraints)
                if simplified is None:
                    report.pruned_unsatisfiable += 1
                    continue
                clause = simplified
            analyzed = _analyze(clause, target_classes)
            closed_assigners.setdefault(cname, []).append(
                (obj_var, analyzed))

    # Combine producers with assigners per class.
    normal: List[Clause] = []
    signatures: Set[Tuple[str, str]] = set()
    uncovered: Dict[str, Set[str]] = {}
    for cname in order:
        # Set-valued attributes accumulate (and default to empty), so
        # they never gate completeness.
        from ..model.types import RecordType as _RecordType, SetType as _SetType
        ctype = target_schema.class_type(cname)
        attrs = {
            label for label in target_schema.attributes(cname)
            if not (isinstance(ctype, _RecordType)
                    and isinstance(ctype.field_type(label), _SetType))}
        for producer in closed.get(cname, []):
            produced_vars = [var for var, pc in producer.created.items()
                             if pc == cname]
            for produced_var in produced_vars:
                assigned = producer.assigned_attrs.get(produced_var, set())
                missing = sorted(attrs - assigned)
                candidates: List[List[Tuple[str, _Analyzed]]] = []
                covered_missing: List[str] = []
                optional_pairs: List[Tuple[str, _Analyzed]] = []
                for attr in missing:
                    options_for_attr = [
                        (objvar, assigner)
                        for objvar, assigner in closed_assigners.get(
                            cname, [])
                        if attr in assigner.assigned_attrs.get(objvar,
                                                               set())]
                    if (cname, attr) in options.optional_attributes:
                        # Optional: never required for completeness; its
                        # assigners merge as *additional* clauses whose
                        # writes accumulate at run time.
                        optional_pairs.extend(options_for_attr)
                        continue
                    if options_for_attr:
                        covered_missing.append(attr)
                        candidates.append(options_for_attr)
                    else:
                        uncovered.setdefault(cname, set()).add(attr)
                # Depth-first combination with early pruning: a partial
                # merge that is already unsatisfiable kills its whole
                # subtree.  This is why constraint knowledge keeps
                # compilation tractable (Section 6) — without it the
                # full choices^attributes tree is materialised.
                def emit(clause: Clause) -> None:
                    if options.simplify:
                        simplified = simplify_clause(
                            clause, key_paths,
                            prune_unsat=options.use_constraints)
                        if simplified is None:
                            report.pruned_unsatisfiable += 1
                            return
                        clause = simplified
                    signature = clause_signature(clause)
                    if signature not in signatures:
                        signatures.add(signature)
                        normal.append(clause)
                    if len(normal) > options.max_clauses:
                        raise NormalizationError(
                            "normalisation exceeded the clause budget")

                def dfs(index: int, current: _Analyzed) -> None:
                    if index == len(candidates):
                        report.merged_combinations += 1
                        emit(current.clause)
                        # Optional attributes: also emit the combination
                        # extended by each optional assigner (one at a
                        # time; the keyed object accumulates them).
                        for objvar, assigner in optional_pairs:
                            extended = _merge_assigner(
                                current, produced_var, assigner, objvar)
                            if extended is None:
                                continue
                            if options.use_constraints and \
                                    not is_body_satisfiable(extended,
                                                            key_paths):
                                report.pruned_unsatisfiable += 1
                                continue
                            emit(extended)
                        return
                    attr = covered_missing[index]
                    if attr in current.assigned_attrs.get(produced_var,
                                                          set()):
                        # An earlier assigner covered it already.
                        dfs(index + 1, current)
                        return
                    for objvar, assigner in candidates[index]:
                        merged = _merge_assigner(current, produced_var,
                                                 assigner, objvar)
                        if merged is None:
                            continue
                        if options.use_constraints and \
                                not is_body_satisfiable(merged, key_paths):
                            report.pruned_unsatisfiable += 1
                            continue
                        dfs(index + 1, _analyze(merged, target_classes))

                dfs(0, producer)

    # Combination can yield several clauses with the same ancestor names
    # (e.g. without pruning both variant branches survive): disambiguate.
    seen_names: Dict[str, int] = {}
    unique: List[Clause] = []
    for clause in normal:
        name = clause.name
        if name is not None:
            count = seen_names.get(name, 0) + 1
            seen_names[name] = count
            if count > 1:
                name = f"{name}#{count}"
        unique.append(Clause(clause.head, clause.body, name=name,
                             kind=clause.kind))
    normal = unique

    report.normal_clauses = len(normal)
    report.normal_size = sum(clause.size() for clause in normal)
    report.uncovered = {cname: sorted(attrs)
                        for cname, attrs in uncovered.items()}
    report.elapsed_seconds = time.perf_counter() - start

    return NormalizedProgram(
        clauses=tuple(normal),
        source_constraints=tuple(source_constraints),
        target_constraints=tuple(target_constraints),
        key_clauses=key_clauses,
        source_key_paths=source_key_paths,
        report=report)


def _topological(deps: Mapping[str, Set[str]]) -> List[str]:
    """Topological order (dependencies first); cycle -> error."""
    order: List[str] = []
    state: Dict[str, int] = {}

    def visit(node: str, stack: List[str]) -> None:
        mark = state.get(node, 0)
        if mark == 2:
            return
        if mark == 1:
            cycle = stack[stack.index(node):] + [node]
            raise NormalizationError(
                "recursive target-class dependency: "
                + " -> ".join(cycle)
                + " (Morphase requires non-recursive programs)")
        state[node] = 1
        stack.append(node)
        for dep in sorted(deps.get(node, ())):
            if dep != node:
                visit(dep, stack)
            else:
                raise NormalizationError(
                    f"recursive target-class dependency: {node} -> {node}")
        stack.pop()
        state[node] = 2
        order.append(node)

    for node in sorted(deps):
        visit(node, [])
    return order
