"""Constraint-based clause simplification (paper Section 4.2).

Applies the congruence engine to clause bodies to:

* merge variables provably equal (equalities, constructor injectivity,
  projection functionality, and *source key constraints* — Example 4.1's
  collapse of a self-join),
* reject clauses with unsatisfiable bodies ("causing unsatisfiable rules
  to be rejected"),
* drop duplicate atoms and unused total definitions.

The paper reports that this optimisation is "extremely important in gaining
acceptable performance"; benchmarks E3/E4/A1 measure exactly that.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..lang.ast import (Atom, Clause, Const, EqAtom, InAtom, LeqAtom, LtAtom,
                        MemberAtom, NeqAtom, Proj, RecordTerm, SkolemTerm,
                        Term, Var, VariantTerm)
from ..semantics.match import ELEMENT_STEP
from .congruence import Congruence, KeyPaths, Unsatisfiable, congruence_of


class OptimizeError(Exception):
    """Raised on malformed input to the optimiser."""


def _rewrite_simple(term: Term, congruence: Congruence) -> Term:
    """Rewrite a Var/Const through the congruence representatives."""
    if isinstance(term, (Var, Const)):
        return congruence.representative(term)
    raise OptimizeError(f"not an SNF-simple term: {term!r}")


def _rewrite_rhs(term: Term, congruence: Congruence) -> Term:
    if isinstance(term, (Var, Const)):
        return _rewrite_simple(term, congruence)
    if isinstance(term, Proj):
        subject = _rewrite_simple(term.subject, congruence)
        if isinstance(subject, Const):
            # A projection subject merged with a constant: leave the
            # original variable to keep the atom well-formed.
            subject = term.subject
        return Proj(subject, term.attr)
    if isinstance(term, VariantTerm):
        return VariantTerm(term.label,
                           _rewrite_simple(term.payload, congruence))
    if isinstance(term, RecordTerm):
        return RecordTerm(tuple(
            (label, _rewrite_simple(value, congruence))
            for label, value in term.fields))
    if isinstance(term, SkolemTerm):
        return SkolemTerm(term.class_name, tuple(
            (label, _rewrite_simple(value, congruence))
            for label, value in term.args))
    raise OptimizeError(f"not an SNF right-hand side: {term!r}")


def _rewrite_atom(atom: Atom, congruence: Congruence) -> Optional[Atom]:
    """Canonicalise one atom; None when it became trivially true."""
    if isinstance(atom, MemberAtom):
        return MemberAtom(_rewrite_simple(atom.element, congruence),
                          atom.class_name)
    if isinstance(atom, InAtom):
        return InAtom(_rewrite_simple(atom.element, congruence),
                      _rewrite_simple(atom.collection, congruence))
    if isinstance(atom, EqAtom):
        left = (_rewrite_simple(atom.left, congruence)
                if isinstance(atom.left, (Var, Const)) else atom.left)
        right = _rewrite_rhs(atom.right, congruence)
        if left == right:
            return None
        return EqAtom(left, right)
    if isinstance(atom, (NeqAtom, LtAtom, LeqAtom)):
        left = _rewrite_simple(atom.left, congruence)
        right = _rewrite_simple(atom.right, congruence)
        if isinstance(left, Const) and isinstance(right, Const):
            # Constant comparisons were checked during closure; drop.
            return None
        return type(atom)(left, right)
    raise OptimizeError(f"unknown atom kind: {atom!r}")


def _prune_unused(body: List[Atom], needed_seed: Set[str]) -> List[Atom]:
    """Drop single-definition equations whose variable is never needed.

    Definitions are total (projections, constructions), so removing an
    unused one preserves the clause's solutions.  Multi-definition
    variables encode join conditions and are always kept.
    """
    needed = set(needed_seed)
    definition_count: Dict[str, int] = {}
    for atom in body:
        if isinstance(atom, EqAtom) and isinstance(atom.left, Var):
            definition_count[atom.left.name] = (
                definition_count.get(atom.left.name, 0) + 1)

    for atom in body:
        if isinstance(atom, EqAtom):
            if not isinstance(atom.left, Var):
                # Constant on the left: a test; its rhs vars are needed.
                needed |= atom.right.variables()
            elif definition_count.get(atom.left.name, 0) > 1:
                needed.add(atom.left.name)
                needed |= atom.right.variables()
        else:
            needed |= atom.variables()

    changed = True
    while changed:
        changed = False
        for atom in body:
            if (isinstance(atom, EqAtom) and isinstance(atom.left, Var)
                    and atom.left.name in needed):
                for name in atom.right.variables():
                    if name not in needed:
                        needed.add(name)
                        changed = True

    kept: List[Atom] = []
    for atom in body:
        if (isinstance(atom, EqAtom) and isinstance(atom.left, Var)
                and definition_count.get(atom.left.name, 0) == 1
                and atom.left.name not in needed):
            continue
        kept.append(atom)
    return kept


def simplify_clause(clause: Clause,
                    key_paths: Optional[KeyPaths] = None,
                    prune_unsat: bool = True,
                    prune_unused: bool = True) -> Optional[Clause]:
    """Simplify an SNF clause's body using its equational consequences.

    Head *identity* atoms (``X = Mk_C(...)``) participate in the reasoning:
    when a merged clause binds the same object in its body, Skolem
    injectivity equates the key arguments, which is what triggers the
    paper's Example 4.1 self-join collapse.  (This is the "application of
    source and target constraints to simplify clauses" of Section 5.)

    Returns the simplified clause, or None when the body is unsatisfiable
    and ``prune_unsat`` is set (the clause can never fire).  When
    ``prune_unsat`` is false an unsatisfiable clause is returned unchanged,
    modelling a normaliser run without constraint knowledge.
    """
    identity_atoms = [atom for atom in clause.head
                      if isinstance(atom, EqAtom)
                      and isinstance(atom.left, Var)
                      and isinstance(atom.right, SkolemTerm)]
    try:
        congruence = congruence_of(
            tuple(clause.body) + tuple(identity_atoms), key_paths)
    except Unsatisfiable:
        return None if prune_unsat else clause

    body: List[Atom] = []
    seen: Set[Atom] = set()
    for atom in clause.body:
        rewritten = _rewrite_atom(atom, congruence)
        if rewritten is not None and rewritten not in seen:
            seen.add(rewritten)
            body.append(rewritten)

    head: List[Atom] = []
    seen_head: Set[Atom] = set()
    for atom in clause.head:
        rewritten = _rewrite_atom(atom, congruence)
        if rewritten is not None and rewritten not in seen_head:
            seen_head.add(rewritten)
            head.append(rewritten)
    if not head:
        # The whole head became trivially true; keep a tautology so the
        # clause stays well-formed (it will be dropped by callers).
        head = [EqAtom(Const(True), Const(True))]

    if prune_unused:
        needed = set()
        for atom in head:
            needed |= atom.variables()
        body = _prune_unused(body, needed)

    return Clause(tuple(head), tuple(body), name=clause.name,
                  kind=clause.kind)


def constant_bindings(body: Sequence[Atom]) -> Dict[str, "Const"]:
    """Variables equated to a constant anywhere in ``body``.

    This is join-planning metadata: a constant-bound variable at the end
    of a projection chain makes the chain an index selector even before
    any generator has run (the planner and the matcher's dynamic selector
    discovery agree on this).
    """
    constants: Dict[str, Const] = {}
    for atom in body:
        if not isinstance(atom, EqAtom):
            continue
        if isinstance(atom.left, Var) and isinstance(atom.right, Const):
            constants[atom.left.name] = atom.right
        elif isinstance(atom.left, Const) and isinstance(atom.right, Var):
            constants[atom.right.name] = atom.left
    return constants


def definition_chains(body: Sequence[Atom], root: str,
                      max_depth: int = 6) -> Dict[str, Tuple[str, ...]]:
    """Access paths reachable from ``root`` through SNF definitions.

    Follows projection definitions ``V = X.a``, ``W = V.b`` ... and
    collection memberships ``E in V`` (recorded as an :data:`ELEMENT_STEP`
    hop) and maps each reached variable to its path from ``root`` (the
    root itself maps to the empty path).  SNF bodies define each such
    variable once, so the paths are unambiguous; ``max_depth`` bounds the
    walk.

    The execution planner (:mod:`repro.engine.planner`) uses these chains
    to decide, per membership generator, whether a hash index over
    ``(class, path)`` can replace the extent scan — including joins that
    go *through* set-valued attributes (``S in G.symbol``), which the
    dynamic matcher's per-binding selector discovery cannot see.
    """
    chains: Dict[str, Tuple[str, ...]] = {root: ()}
    for _ in range(max_depth):
        progressed = False
        for atom in body:
            if (isinstance(atom, EqAtom)
                    and isinstance(atom.left, Var)
                    and isinstance(atom.right, Proj)
                    and isinstance(atom.right.subject, Var)):
                subject = atom.right.subject.name
                defined = atom.left.name
                step: Optional[str] = atom.right.attr
            elif (isinstance(atom, InAtom)
                    and isinstance(atom.element, Var)
                    and isinstance(atom.collection, Var)):
                subject = atom.collection.name
                defined = atom.element.name
                step = ELEMENT_STEP
            else:
                continue
            if subject not in chains or defined in chains:
                continue
            chains[defined] = chains[subject] + (step,)
            progressed = True
        if not progressed:
            break
    return chains


def is_body_satisfiable(clause: Clause,
                        key_paths: Optional[KeyPaths] = None) -> bool:
    """True unless the body is provably unsatisfiable."""
    try:
        congruence_of(clause.body, key_paths)
    except Unsatisfiable:
        return False
    return True


def clause_signature(clause: Clause) -> Tuple[str, str]:
    """A renaming-invariant signature used to deduplicate derived clauses.

    Greedy canonicalisation: repeatedly pick the atom whose rendering —
    with already-renamed variables substituted and the rest masked — is
    smallest, then allocate canonical names to its variables in term-walk
    order.  Two clauses differing only in variable names get the same
    signature (the SNF promise of the paper's Section 5).
    """
    from ..lang.ast import Var as _Var

    renaming: Dict[str, str] = {}

    def render(atom: Atom) -> str:
        mapping = {name: renaming.get(name, "?") for name in
                   atom.variables()}
        return str(atom.substitute(
            {name: _Var(target) if target != "?" else _Var("_mask_")
             for name, target in mapping.items()})).replace("_mask_", "?")

    def allocate(atom: Atom) -> None:
        for term in atom.terms():
            for node in term.walk():
                if isinstance(node, _Var) and node.name not in renaming:
                    renaming[node.name] = f"v{len(renaming)}"

    def canon(atoms: Sequence[Atom]) -> str:
        remaining = list(atoms)
        parts: List[str] = []
        while remaining:
            remaining.sort(key=render)
            atom = remaining.pop(0)
            allocate(atom)
            parts.append(str(atom.rename(renaming)))
        return " & ".join(parts)

    head = canon(clause.head)
    body = canon(clause.body)
    return head, body
